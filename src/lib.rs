//! Facade crate re-exporting the Elasticutor workspace.
pub use elasticutor_cluster as cluster;
pub use elasticutor_core as core;
pub use elasticutor_egress as egress;
pub use elasticutor_ingress as ingress;
pub use elasticutor_metrics as metrics;
pub use elasticutor_queueing as queueing;
pub use elasticutor_runtime as runtime;
pub use elasticutor_scheduler as scheduler;
pub use elasticutor_sim as sim;
pub use elasticutor_state as state;
pub use elasticutor_workload as workload;
