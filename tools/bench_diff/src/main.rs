//! `bench_diff COMMITTED.json FRESH.json [--fail-on PCT]` — the
//! cross-run comparison CI used to ask humans to do by hand: flattens
//! both bench artifacts to their numeric leaves and prints a delta
//! table.
//!
//! **Warn-only by default.** Without `--fail-on`, deltas never fail the
//! job; the exit code is non-zero only when an input cannot be read or
//! parsed (a harness bug, not a regression).
//!
//! **`--fail-on PCT`** turns the comparison into a gate: the exit code
//! is 1 when any *throughput* metric (a leaf whose path contains
//! `records_per_sec` or `mib_per_s`; counts and timings are shape-,
//! not speed-, sensitive and stay warn-only, and `baseline` arms are
//! exempt — they are the machine-class-sensitive foil, not the guarded
//! plane) regressed by more than `PCT` percent against the committed
//! artifact. Setting `ELASTICUTOR_BENCH_NOFAIL=1` downgrades the gate
//! back to a warning — the opt-out for known-noisy runners.
//!
//! The parser handles exactly the JSON this repo's harnesses emit
//! (objects, arrays, numbers, strings, booleans, null) — no external
//! dependencies, matching the registry-free workspace.

use std::fmt::Write as _;
use std::process::ExitCode;

/// A parsed JSON value (only what the flattener needs to walk).
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The harnesses never emit escapes beyond these.
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("bad escape"))?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Flattens numeric leaves to `path → value`. Array elements carrying a
/// distinguishing label (`mode`, `submitters`, `shard`, `state_bytes`)
/// use it in the path so rows still align if the artifact reorders.
fn flatten(prefix: &str, value: &Json, out: &mut Vec<(String, f64)>) {
    match value {
        Json::Num(n) => out.push((prefix.to_string(), *n)),
        Json::Bool(b) => out.push((prefix.to_string(), f64::from(u8::from(*b)))),
        Json::Obj(fields) => {
            for (key, v) in fields {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                flatten(&path, v, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = element_label(item).unwrap_or_else(|| i.to_string());
                flatten(&format!("{prefix}[{label}]"), item, out);
            }
        }
        Json::Null | Json::Str(_) => {}
    }
}

/// A stable identity for an array element, if its object carries one.
/// Label tiers are exclusive — `shard` alone identifies a migration row
/// (its `state_bytes` differ between quick and full runs, so folding
/// them into the label would misalign CI's quick rows against the
/// committed full-mode artifact).
fn element_label(value: &Json) -> Option<String> {
    let Json::Obj(fields) = value else {
        return None;
    };
    let field = |want: &str| {
        fields
            .iter()
            .find(|(k, _)| k == want)
            .map(|(_, v)| match v {
                Json::Str(s) => s.clone(),
                Json::Num(n) => format!("{want}={n}"),
                _ => String::new(),
            })
    };
    let mut parts: Vec<String> = ["mode", "submitters"]
        .iter()
        .filter_map(|w| field(w))
        .collect();
    if parts.is_empty() {
        parts.extend(field("shard"));
    }
    if parts.is_empty() {
        parts.extend(field("state_bytes"));
    }
    parts.retain(|p| !p.is_empty());
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(","))
    }
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut parser = Parser::new(&text);
    let value = parser
        .value()
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    let mut out = Vec::new();
    flatten("", &value, &mut out);
    Ok(out)
}

/// Whether a flattened path names a throughput metric the `--fail-on`
/// gate watches (rates compare across runs; raw counts and elapsed
/// times depend on quick-vs-full mode and stay warn-only). The
/// `baseline` arms are exempt: they exist as the contended-mutex
/// reference, and their rates are the most sensitive to machine-class
/// differences (a 1-core recording box vs a multi-core runner) — the
/// gate guards the optimized plane, not the foil.
fn is_throughput_metric(path: &str) -> bool {
    (path.contains("records_per_sec") || path.contains("mib_per_s")) && !path.contains("baseline")
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fail_on: Option<f64> = match args.iter().position(|a| a == "--fail-on") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("bench_diff: --fail-on needs a percentage");
                return ExitCode::from(2);
            }
            let pct = match args[i + 1].parse::<f64>() {
                Ok(p) if p > 0.0 => p,
                _ => {
                    eprintln!("bench_diff: --fail-on wants a positive percentage");
                    return ExitCode::from(2);
                }
            };
            args.drain(i..=i + 1);
            Some(pct)
        }
        None => None,
    };
    let (committed_path, fresh_path) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a.clone(), b.clone()),
        _ => {
            eprintln!("usage: bench_diff COMMITTED.json FRESH.json [--fail-on PCT]");
            return ExitCode::from(2);
        }
    };
    // A baseline that was never committed is a first run, not an
    // error: report and succeed so a brand-new benchmark's CI job can
    // record its artifact before anything exists to diff against.
    // (An existing-but-unparsable baseline stays fatal below.)
    if !std::path::Path::new(&committed_path).exists() {
        println!(
            "bench_diff: no committed baseline at {committed_path} — first run, nothing to diff"
        );
        return ExitCode::SUCCESS;
    }
    let (committed, fresh) = match (load(&committed_path), load(&fresh_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };
    // Artifacts must say what machine class recorded them: comparing a
    // 1-core recording against a 32-core runner produces deltas that
    // are pure noise. An artifact without a `hardware_threads` leaf is
    // malformed, same severity as unparsable JSON.
    for (path, leaves) in [(&committed_path, &committed), (&fresh_path, &fresh)] {
        if !leaves
            .iter()
            .any(|(p, _)| p == "hardware_threads" || p.ends_with(".hardware_threads"))
        {
            eprintln!("bench_diff: {path} has no hardware_threads leaf — refusing to compare unlabelled artifacts");
            return ExitCode::from(2);
        }
    }

    let gate_label = match fail_on {
        Some(pct) => format!("fail on >{pct}% throughput regression"),
        None => "warn-only".to_string(),
    };
    println!("bench_diff ({gate_label}): {committed_path} → {fresh_path}");
    let width = fresh
        .iter()
        .chain(&committed)
        .map(|(p, _)| p.len())
        .max()
        .unwrap_or(6);
    println!(
        "{:width$}  {:>14}  {:>14}  {:>8}",
        "metric", "committed", "fresh", "delta"
    );
    let fmt = |v: f64| {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{v:.0}")
        } else {
            format!("{v:.3}")
        }
    };
    let mut regressions: Vec<(String, f64)> = Vec::new();
    for (path, new) in &fresh {
        let old = committed.iter().find(|(p, _)| p == path).map(|(_, v)| *v);
        let mut line = String::new();
        let _ = write!(line, "{path:width$}  ");
        match old {
            Some(old) => {
                let delta = if old == 0.0 {
                    "n/a".to_string()
                } else {
                    format!("{:+.1}%", (new - old) / old * 100.0)
                };
                if let Some(pct) = fail_on {
                    if old > 0.0 && is_throughput_metric(path) {
                        let drop_pct = (old - new) / old * 100.0;
                        if drop_pct > pct {
                            regressions.push((path.clone(), drop_pct));
                        }
                    }
                }
                let _ = write!(line, "{:>14}  {:>14}  {delta:>8}", fmt(old), fmt(*new));
            }
            None => {
                let _ = write!(line, "{:>14}  {:>14}  {:>8}", "-", fmt(*new), "new");
            }
        }
        println!("{line}");
    }
    for (path, _) in &committed {
        if !fresh.iter().any(|(p, _)| p == path) {
            println!("{path:width$}  (present in committed only)");
        }
    }
    match fail_on {
        None => {
            println!("\n(warn-only: deltas never fail the job; compare across runs for trends)");
        }
        Some(pct) if regressions.is_empty() => {
            println!("\n(gate: no throughput metric regressed more than {pct}%)");
        }
        Some(pct) => {
            println!("\nthroughput regressions beyond the {pct}% gate:");
            for (path, drop_pct) in &regressions {
                println!("  {path}: -{drop_pct:.1}%");
            }
            if std::env::var("ELASTICUTOR_BENCH_NOFAIL").is_ok_and(|v| v == "1") {
                println!("ELASTICUTOR_BENCH_NOFAIL=1: downgraded to a warning (noisy runner)");
            } else {
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
