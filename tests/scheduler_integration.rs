//! Cross-crate integration: queueing model → scheduler → assignment on
//! cluster specs, without the simulation in the loop.

use elasticutor::core::ids::NodeId;
use elasticutor::queueing::jackson::{ExecutorLoad, JacksonNetwork};
use elasticutor::queueing::{allocate, AllocationRequest};
use elasticutor::scheduler::assignment::{Assignment, ClusterSpec};
use elasticutor::scheduler::scheduler::{DynamicScheduler, ExecutorMeasurement, SchedulerConfig};
use elasticutor::scheduler::SchedulerPolicy;

fn measurements(lambdas: &[f64]) -> Vec<ExecutorMeasurement> {
    lambdas
        .iter()
        .enumerate()
        .map(|(j, &lambda)| ExecutorMeasurement {
            lambda,
            mu: 1_000.0,
            state_bytes: 1.0e6,
            data_rate: 1_000.0,
            local_node: NodeId((j % 4) as u32),
        })
        .collect()
}

#[test]
fn scheduler_respects_node_capacities() {
    let spec = ClusterSpec::uniform(4, 4);
    let mut assignment = Assignment::empty(3, 4);
    for j in 0..3 {
        assignment.grant(j, NodeId(j as u32), &spec);
    }
    let sched = DynamicScheduler::new(SchedulerConfig {
        latency_target: 0.01,
        policy: SchedulerPolicy::Optimized,
        ..SchedulerConfig::default()
    });
    let meas = measurements(&[3_000.0, 2_000.0, 500.0]);
    let decision = sched
        .schedule(&spec, &assignment, &meas, 5_500.0)
        .expect("feasible");
    let x = &decision.plan.assignment;
    for node in 0..4u32 {
        assert!(
            x.used_on_node(NodeId(node)) <= 4,
            "node {node} over capacity"
        );
    }
    // The hottest executor gets the most cores.
    let totals: Vec<u32> = (0..3).map(|j| x.total_of(j)).collect();
    assert!(
        totals[0] >= totals[1] && totals[1] >= totals[2],
        "{totals:?}"
    );
    // Stability: every executor can keep up with its arrival rate.
    for (j, m) in meas.iter().enumerate() {
        assert!(
            f64::from(totals[j]) * m.mu > m.lambda,
            "executor {j} under-provisioned: {} cores for lambda {}",
            totals[j],
            m.lambda
        );
    }
}

#[test]
fn optimized_policy_migrates_less_than_naive() {
    let spec = ClusterSpec::uniform(4, 8);
    // Existing assignment concentrates executor 0 on node 0.
    let mut existing = Assignment::empty(2, 4);
    for _ in 0..4 {
        existing.grant(0, NodeId(0), &spec);
    }
    existing.grant(1, NodeId(1), &spec);

    let meas = measurements(&[6_000.0, 2_000.0]);
    let run = |policy: SchedulerPolicy| {
        let sched = DynamicScheduler::new(SchedulerConfig {
            latency_target: 0.005,
            policy,
            ..SchedulerConfig::default()
        });
        sched
            .schedule(&spec, &existing, &meas, 8_000.0)
            .expect("feasible")
    };
    let optimized = run(SchedulerPolicy::Optimized);
    let naive = run(SchedulerPolicy::Naive);
    assert!(
        optimized.plan.migration_cost <= naive.plan.migration_cost,
        "optimized cost {} > naive cost {}",
        optimized.plan.migration_cost,
        naive.plan.migration_cost
    );
}

#[test]
fn greedy_allocation_is_monotone_in_target() {
    // Tightening the latency target can only add cores.
    let network = JacksonNetwork::new(
        2_000.0,
        vec![
            ExecutorLoad::new(2_000.0, 900.0),
            ExecutorLoad::new(1_500.0, 1_200.0),
        ],
    );
    let mut last_total = 0;
    for &target in &[0.1, 0.05, 0.01, 0.005, 0.002] {
        let outcome = allocate(&AllocationRequest {
            network: &network,
            latency_target: target,
            available_cores: 128,
        });
        let total = outcome.total_cores();
        assert!(
            total >= last_total,
            "target {target}: {total} cores < previous {last_total}"
        );
        assert!(outcome.expected_latency.is_finite());
        last_total = total;
    }
}

#[test]
fn infeasible_targets_fall_back_to_budget() {
    let network = JacksonNetwork::new(
        100_000.0,
        vec![ExecutorLoad::new(100_000.0, 1_000.0)], // needs >100 cores
    );
    let outcome = allocate(&AllocationRequest {
        network: &network,
        latency_target: 0.001,
        available_cores: 16,
    });
    assert!(outcome.saturated);
    assert_eq!(outcome.total_cores(), 16, "uses the whole budget");
}
