//! Cross-crate integration: the live multithreaded executor driven by
//! the workload generators, under online scaling and rebalancing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use elasticutor::core::ids::Key;
use elasticutor::runtime::Ingest;
use elasticutor::runtime::{ElasticExecutor, ExecutorConfig, FifoChecker, Operator, Record};
use elasticutor::state::StateHandle;
use elasticutor::workload::{MicroConfig, MicroWorkload, TupleSource};

struct OrderChecker {
    log: Arc<FifoChecker>,
    processed_value: Arc<AtomicU64>,
}

impl Operator for OrderChecker {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        self.log.observe(record.key, record.seq);
        // Also keep per-key counts in shared state so we can check
        // conservation across reassignments.
        state.update(record.key, |old| {
            let n = old.map_or(0u64, |v| {
                u64::from_le_bytes(v.as_ref().try_into().expect("8 bytes"))
            });
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        self.processed_value.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }
}

#[test]
fn per_key_order_survives_concurrent_scaling_and_rebalancing() {
    let log = Arc::new(FifoChecker::new());
    let processed = Arc::new(AtomicU64::new(0));
    let exec = ElasticExecutor::start(
        ExecutorConfig {
            num_shards: 64,
            initial_tasks: 2,
            ..ExecutorConfig::default()
        },
        OrderChecker {
            log: Arc::clone(&log),
            processed_value: Arc::clone(&processed),
        },
    );

    // A skewed keyed stream with per-key sequence numbers.
    let mut workload = MicroWorkload::new(
        MicroConfig {
            num_keys: 500,
            skew: 1.0,
            ..MicroConfig::default()
        },
        7,
    );
    workload.track_sequences();

    let total = 60_000u64;
    let mut now = 0u64;
    for i in 0..total {
        let (gap, t) = workload.next_tuple(now);
        now += gap;
        exec.ingest(Record::new(t.key, Bytes::new()).with_seq(t.seq));
        // Interleave aggressive elasticity operations with traffic.
        match i {
            10_000 => {
                exec.add_task().expect("grow");
                exec.add_task().expect("grow");
            }
            20_000 | 35_000 => {
                exec.rebalance();
            }
            45_000 => {
                let victim = exec.tasks()[0];
                exec.remove_task(victim).expect("shrink");
            }
            _ => {}
        }
    }
    exec.wait_for_processed(total);
    assert_eq!(
        log.violations(),
        Vec::<(u64, u64, u64)>::new(),
        "per-key FIFO order violated"
    );

    // Conservation: per-key counters sum to the total record count even
    // though shards changed owners mid-stream.
    let store = exec.state().clone();
    let mut sum = 0u64;
    for shard in store.shards() {
        for key in 0..500u64 {
            if let Some(v) = store.get(shard, Key(key)) {
                sum += u64::from_le_bytes(v.as_ref().try_into().expect("8 bytes"));
            }
        }
    }
    assert_eq!(sum, total, "state lost or duplicated during reassignments");
    exec.shutdown();
}

#[test]
fn reassignments_complete_and_log_sync_times() {
    let exec = ElasticExecutor::start(
        ExecutorConfig {
            num_shards: 32,
            initial_tasks: 4,
            ..ExecutorConfig::default()
        },
        |_r: &Record, _s: &StateHandle| Vec::new(),
    );
    for i in 0..20_000u64 {
        exec.ingest(Record::new(Key(i % 100), Bytes::new()));
        if i % 5_000 == 4_999 {
            exec.rebalance();
        }
    }
    exec.wait_for_processed(20_000);
    let stats = exec.shutdown();
    for &(sync_ns, total_ns) in &stats.reassignments {
        assert!(total_ns >= sync_ns, "total includes sync");
        // Sanity: a labeling tuple through a local queue is fast.
        assert!(sync_ns < 5_000_000_000, "sync {sync_ns} ns is implausible");
    }
}

#[test]
fn outputs_flow_downstream() {
    // An operator that echoes every record with a doubled key.
    let exec = ElasticExecutor::start(
        ExecutorConfig {
            num_shards: 8,
            initial_tasks: 2,
            ..ExecutorConfig::default()
        },
        |r: &Record, _s: &StateHandle| vec![Record::new(Key(r.key.value() * 2), r.payload.clone())],
    );
    let n = 1_000u64;
    for i in 0..n {
        exec.ingest(Record::new(Key(i), Bytes::from_static(b"p")));
    }
    exec.wait_for_processed(n);
    let mut outputs = Vec::new();
    while let Ok(batch) = exec.outputs().try_recv() {
        outputs.extend(batch);
    }
    assert_eq!(outputs.len() as u64, n);
    assert!(outputs.iter().all(|r| r.key.value() % 2 == 0));
    exec.shutdown();
}
