//! End-to-end ordering across a live multi-operator pipeline: the §2.1
//! per-key FIFO requirement must hold through *two* chained elastic
//! executors while both are concurrently scaling up, scaling down, and
//! reassigning shards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use elasticutor::core::ids::Key;
use elasticutor::runtime::Ingest;
use elasticutor::runtime::{ExecutorConfig, FifoChecker, Operator, Pipeline, Record};
use elasticutor::state::StateHandle;
use elasticutor::workload::{MicroConfig, MicroWorkload, TupleSource};

/// Stage 1: stateful enrichment — counts per key in shard state and
/// forwards the record unchanged (key and seq preserved).
struct Enrich;

impl Operator for Enrich {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        state.update(record.key, |old| {
            let n = old.map_or(0u64, |v| {
                u64::from_le_bytes(v.as_ref().try_into().expect("8 bytes"))
            });
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        vec![record.clone()]
    }
}

/// Stage 2: order-checking sink — also counts per key, so conservation
/// can be verified against stage 1.
struct CheckedSink {
    log: Arc<FifoChecker>,
    processed: Arc<AtomicU64>,
}

impl Operator for CheckedSink {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        self.log.observe(record.key, record.seq);
        state.update(record.key, |old| {
            let n = old.map_or(0u64, |v| {
                u64::from_le_bytes(v.as_ref().try_into().expect("8 bytes"))
            });
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        self.processed.fetch_add(1, Ordering::Relaxed);
        vec![record.clone()]
    }
}

#[test]
fn per_key_fifo_holds_across_two_operators_under_concurrent_elasticity() {
    let log = Arc::new(FifoChecker::new());
    let processed = Arc::new(AtomicU64::new(0));
    let pipe = Pipeline::builder()
        .stage(
            "enrich",
            ExecutorConfig {
                num_shards: 64,
                initial_tasks: 2,
                ..ExecutorConfig::default()
            },
            Enrich,
        )
        .stage(
            "sink",
            ExecutorConfig {
                num_shards: 64,
                initial_tasks: 1,
                ..ExecutorConfig::default()
            },
            CheckedSink {
                log: Arc::clone(&log),
                processed: Arc::clone(&processed),
            },
        )
        .capacity(1024)
        .build();

    // A skewed keyed stream with per-key sequence numbers.
    let mut workload = MicroWorkload::new(
        MicroConfig {
            num_keys: 500,
            skew: 1.0,
            ..MicroConfig::default()
        },
        11,
    );
    workload.track_sequences();

    let total = 60_000u64;
    let mut now = 0u64;
    for i in 0..total {
        let (gap, t) = workload.next_tuple(now);
        now += gap;
        pipe.ingest(Record::new(t.key, Bytes::new()).with_seq(t.seq));
        // Aggressive concurrent elasticity on BOTH stages while the
        // stream flows: grow, rebalance (shard reassignments), shrink.
        match i {
            5_000 => {
                pipe.executor(0).add_task().expect("grow enrich");
                pipe.executor(1).add_task().expect("grow sink");
                pipe.executor(1).add_task().expect("grow sink");
            }
            15_000 | 30_000 | 45_000 => {
                pipe.executor(0).rebalance();
                pipe.executor(1).rebalance();
            }
            25_000 => {
                let victim = pipe.executor(0).tasks()[0];
                pipe.executor(0).remove_task(victim).expect("shrink enrich");
            }
            40_000 => {
                let victim = pipe.executor(1).tasks()[0];
                pipe.executor(1).remove_task(victim).expect("shrink sink");
            }
            _ => {}
        }
    }
    pipe.drain();

    // 1. No per-key order violation observed inside the second operator.
    assert_eq!(
        log.violations(),
        Vec::<(u64, u64, u64)>::new(),
        "per-key FIFO violated across the pipeline"
    );
    // 2. Nothing lost or duplicated between the stages.
    assert_eq!(processed.load(Ordering::Relaxed), total);

    // 3. The sink's *output channel* preserves per-key order too (the
    //    order an external consumer observes).
    let channel_order = FifoChecker::new();
    let mut outputs = 0u64;
    for r in pipe.outputs().try_iter().flatten() {
        channel_order.observe(r.key, r.seq);
        outputs += 1;
    }
    assert_eq!(
        channel_order.violations(),
        Vec::<(u64, u64, u64)>::new(),
        "sink channel order violated"
    );
    assert_eq!(outputs, total);

    // 4. Conservation in both stages' state stores: per-key counters in
    //    each stage sum to the total despite shard moves. With
    //    multi-instance groups (ELASTICUTOR_TEST_PARALLELISM) the
    //    shard space is split across instances, so sum over all of
    //    them — each shard's state lives at exactly one owner.
    for stage in 0..2 {
        let group = pipe.group(stage);
        let mut sum = 0u64;
        for id in 0..group.num_slots() as u32 {
            let store = group.instance(id).state().clone();
            for shard in store.shards() {
                for key in 0..500u64 {
                    if let Some(v) = store.get(shard, Key(key)) {
                        sum += u64::from_le_bytes(v.as_ref().try_into().expect("8 bytes"));
                    }
                }
            }
        }
        assert_eq!(sum, total, "stage {stage} lost or duplicated state");
    }

    // 5. Reassignments actually happened (the test exercised the §3.3
    //    protocol, not a quiet pipeline).
    let stats = pipe.shutdown();
    let moves: usize = stats.iter().map(|s| s.stats.reassignments.len()).sum();
    assert!(moves > 0, "expected at least one completed shard move");
}
