//! Cross-crate integration: the SSE application (§5.4) end-to-end on the
//! simulated cluster.

use elasticutor::cluster::config::{ClusterConfig, EngineMode, ExperimentConfig};
use elasticutor::cluster::{ClusterEngine, RunReport};
use elasticutor::workload::SseConfig;

const SEC: u64 = 1_000_000_000;

fn run(mode: EngineMode) -> RunReport {
    let sse = SseConfig {
        base_rate: 4_000.0,
        transactor_cost_ns: 800_000,
        analytics_cost_ns: 120_000,
        // 12 transform operators on a 32-core cluster: one pinned core
        // each at start, 20 cores of elastic headroom.
        executors_per_operator: 1,
        shards_per_executor: 64,
        hot_rotation_period_ns: 5 * SEC,
        regime_period_ns: 10 * SEC,
        ..SseConfig::default()
    };
    let mut cfg = ExperimentConfig::sse(mode, sse);
    cfg.cluster = ClusterConfig::small(4, 8);
    cfg.duration_ns = 25 * SEC;
    cfg.warmup_ns = 10 * SEC;
    ClusterEngine::new(cfg).run()
}

#[test]
fn sse_topology_processes_through_all_operators() {
    let r = run(EngineMode::Elastic);
    // Each order fans out to 11 analytics sinks, so sink completions
    // should far exceed the per-second order rate.
    assert!(
        r.sink_completions > 50_000,
        "only {} sink completions",
        r.sink_completions
    );
    assert!(r.latency.count() > 0);
    assert!(r.scheduler_rounds > 0, "scheduler never ran");
}

#[test]
fn executor_centric_beats_static_on_sse() {
    let stat = run(EngineMode::Static);
    let ec = run(EngineMode::Elastic);
    assert!(
        ec.throughput > stat.throughput,
        "elastic {} <= static {}",
        ec.throughput,
        stat.throughput
    );
    assert!(
        ec.latency.mean_ns() < stat.latency.mean_ns(),
        "elastic latency {} >= static {}",
        ec.latency.mean_ns(),
        stat.latency.mean_ns()
    );
}

#[test]
fn optimized_scheduler_transfers_less_than_naive() {
    // Table 2's effect: cost/locality awareness reduces state migration
    // and remote-task traffic. This needs local headroom for the
    // optimization to exploit, so it runs on a wider cluster than the
    // other tests (8 nodes, 2 executors per operator). Overheads are
    // normalized per processed tuple: the two runs admit different
    // amounts of traffic.
    let run_wide = |mode: EngineMode| {
        let sse = SseConfig {
            base_rate: 19_000.0,
            transactor_cost_ns: 1_000_000,
            analytics_cost_ns: 150_000,
            executors_per_operator: 2,
            shards_per_executor: 64,
            hot_rotation_period_ns: 8 * SEC,
            regime_period_ns: 15 * SEC,
            ..SseConfig::default()
        };
        let mut cfg = ExperimentConfig::sse(mode, sse);
        cfg.cluster = ClusterConfig::small(8, 8);
        cfg.duration_ns = 25 * SEC;
        cfg.warmup_ns = 10 * SEC;
        ClusterEngine::new(cfg).run()
    };
    let naive = run_wide(EngineMode::NaiveElastic);
    let opt = run_wide(EngineMode::Elastic);
    let per_tuple = |r: &RunReport| {
        (r.state_migration_bytes + r.remote_task_bytes) as f64 / r.sink_completions as f64
    };
    assert!(
        per_tuple(&opt) < per_tuple(&naive),
        "optimized overhead {:.1} B/tuple >= naive {:.1} B/tuple",
        per_tuple(&opt),
        per_tuple(&naive)
    );
    // The gap is carried by remote-task transfer (the dominant term by
    // an order of magnitude); the migration sub-metric alone is noise at
    // this reduced scale — see Table 2 (`table2_naive_ec`) for the
    // full-scale rates, where remote transfer splits 146 vs 20 MB/s.
}

#[test]
fn scheduling_wall_time_is_milliseconds() {
    // Table 3's claim: the scheduler itself runs in single-digit
    // milliseconds even with 13 operators × 8 executors.
    let r = run(EngineMode::Elastic);
    assert!(r.scheduler_rounds >= 10);
    assert!(
        r.mean_scheduling_ms() < 50.0,
        "scheduling took {} ms on average",
        r.mean_scheduling_ms()
    );
}
