//! Cross-crate integration: the micro-benchmark (§5.1) end-to-end on the
//! simulated cluster, all four execution paradigms.

use elasticutor::cluster::config::{ClusterConfig, EngineMode, ExperimentConfig};
use elasticutor::cluster::{ClusterEngine, RunReport};
use elasticutor::workload::MicroConfig;

const SEC: u64 = 1_000_000_000;

fn run(mode: EngineMode, omega: f64, rate: f64) -> RunReport {
    run_keys(mode, omega, rate, 10_000, 0.5)
}

fn run_keys(mode: EngineMode, omega: f64, rate: f64, num_keys: usize, skew: f64) -> RunReport {
    let micro = MicroConfig {
        rate,
        omega,
        num_keys,
        skew,
        calculator_executors: 8,
        shards_per_executor: 64,
        ..MicroConfig::default()
    };
    let mut cfg = ExperimentConfig::micro(mode, micro);
    cfg.cluster = ClusterConfig::small(4, 4);
    cfg.duration_ns = 20 * SEC;
    cfg.warmup_ns = 8 * SEC;
    ClusterEngine::new(cfg).run()
}

#[test]
fn all_modes_process_tuples() {
    for mode in [
        EngineMode::Static,
        EngineMode::ResourceCentric,
        EngineMode::Elastic,
        EngineMode::NaiveElastic,
    ] {
        let r = run(mode, 2.0, 8_000.0);
        assert!(
            r.sink_completions > 1_000,
            "{}: completed only {}",
            r.mode,
            r.sink_completions
        );
        assert!(r.throughput > 0.0, "{}: zero throughput", r.mode);
        assert!(r.latency.count() > 0, "{}: no latency samples", r.mode);
        assert!(
            r.latency.mean_ns() > 0.0 && r.latency.p99_ns() >= r.latency.mean_ns() * 0.5,
            "{}: implausible latency stats",
            r.mode
        );
        assert!(
            r.events_processed > r.sink_completions,
            "{}: event accounting",
            r.mode
        );
    }
}

#[test]
fn elastic_beats_static_under_skewed_dynamic_load() {
    // 1 000 keys at Zipf(0.8): the hottest key draws ~5% of the stream,
    // so the static hash bucket holding it needs ~1.3 cores — a
    // single-core static executor saturates (and global backpressure
    // drags the whole pipeline down), while the elastic executor spreads
    // its shards over extra cores. The hottest key alone still fits in
    // one core, so per-key ordering does not cap either system.
    let stat = run_keys(EngineMode::Static, 4.0, 13_000.0, 1_000, 0.8);
    let elastic = run_keys(EngineMode::Elastic, 4.0, 13_000.0, 1_000, 0.8);
    assert!(
        elastic.throughput > stat.throughput * 1.05,
        "elastic {} vs static {}",
        elastic.throughput,
        stat.throughput
    );
    assert!(
        elastic.latency.mean_ns() < stat.latency.mean_ns(),
        "elastic latency {} vs static {}",
        elastic.latency.mean_ns(),
        stat.latency.mean_ns()
    );
}

#[test]
fn elastic_sync_is_orders_faster_than_rc() {
    // Figure 8's headline: RC's per-shard synchronization includes a
    // global pause + drain; Elasticutor's is a labeling tuple through one
    // queue.
    let rc = run(EngineMode::ResourceCentric, 8.0, 8_000.0);
    let ec = run(EngineMode::Elastic, 8.0, 8_000.0);
    let rc_sync = rc.reassignment_breakdown(None).mean_sync_ms;
    let ec_sync = ec.reassignment_breakdown(None).mean_sync_ms;
    assert!(rc_sync > 0.0, "RC performed no repartitions");
    assert!(ec_sync > 0.0, "Elasticutor performed no reassignments");
    assert!(
        rc_sync > ec_sync * 10.0,
        "RC sync {rc_sync} ms should dwarf Elasticutor's {ec_sync} ms"
    );
}

#[test]
fn static_mode_never_migrates_state() {
    let r = run(EngineMode::Static, 8.0, 8_000.0);
    assert_eq!(r.reassignments.len(), 0);
    assert_eq!(r.state_migration_bytes, 0);
    assert_eq!(r.scheduler_rounds, 0);
}

#[test]
fn deterministic_given_seed() {
    let a = run(EngineMode::Elastic, 2.0, 8_000.0);
    let b = run(EngineMode::Elastic, 2.0, 8_000.0);
    assert_eq!(a.sink_completions, b.sink_completions);
    assert_eq!(a.source_emissions, b.source_emissions);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.state_migration_bytes, b.state_migration_bytes);
}

#[test]
fn backpressure_bounds_admission_when_overloaded() {
    // Offered 3x ideal capacity: sources must throttle so the in-system
    // tuple count stays bounded; the sink keeps running at capacity.
    // (Latency is measured from *external arrival*, so under sustained
    // overload it legitimately grows with the source-side backlog — the
    // paper's Figures 6/16 latency gaps rely on exactly this.)
    let r = run(EngineMode::Elastic, 0.0, 50_000.0);
    let measured_s = 12.0;
    assert!(
        (r.source_emissions as f64) < 20_000.0 * measured_s,
        "admitted {} over {measured_s}s exceeds capacity — sources were not throttled",
        r.source_emissions
    );
    // Everything admitted is completed (no unbounded internal queues).
    assert!(
        r.sink_completions + 20_000 > r.source_emissions,
        "admitted {} vs completed {}: internal queues grew unboundedly",
        r.source_emissions,
        r.sink_completions
    );
    // Throughput pinned at (near) capacity.
    assert!(
        r.throughput > 12_000.0,
        "throughput {} below capacity under overload",
        r.throughput
    );
    // And the arrival-time latency indeed reflects the growing backlog.
    assert!(
        r.latency.p99_ns() > 1e9,
        "p99 {} ns should include source-side waiting under overload",
        r.latency.p99_ns()
    );
}
