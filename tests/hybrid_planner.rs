//! Cross-crate integration: the §4.2 hybrid split/merge planner driven
//! by measurements shaped like the cluster engine's executor loads.

use elasticutor::cluster::{HybridAction, HybridConfig, HybridPlanner, LoadSample};
use elasticutor::workload::{SseConfig, SseWorkload};

/// Builds one window of per-executor demand samples for an operator with
/// `y` executors, given per-stock rates from the SSE generator: executor
/// j's demand is the summed rate of the stocks hashing to it times the
/// per-order cost.
fn window(w: &SseWorkload, y: u32, cost_s: f64) -> Vec<LoadSample> {
    let stocks = w.config().num_stocks;
    let mut demand = vec![0.0f64; y as usize];
    for stock in 0..stocks {
        let exec = elasticutor::core::hash::key_to_shard(stock as u64, y) as usize;
        demand[exec] += w.stock_rate(stock) * cost_s;
    }
    demand
        .into_iter()
        .enumerate()
        .map(|(j, d)| LoadSample {
            operator: 0,
            executor: j as u32,
            demand_cores: d,
        })
        .collect()
}

#[test]
fn skewed_sse_load_eventually_requests_a_split() {
    // Few executors + heavy per-order cost: the executor bucket holding
    // the hottest stocks carries far more than `split_cores` of demand.
    let sse = SseConfig {
        base_rate: 400_000.0,
        ..SseConfig::default()
    };
    let workload = SseWorkload::new(sse, 11);
    let mut planner = HybridPlanner::new(HybridConfig {
        split_cores: 16.0,
        sustain_windows: 5,
        ..HybridConfig::default()
    });
    let samples = window(&workload, 4, 0.5e-3);
    assert!(
        samples.iter().any(|s| s.demand_cores > 16.0),
        "premise: some executor is persistently overloaded"
    );
    let mut actions = Vec::new();
    for _ in 0..5 {
        actions = planner.observe(&samples);
    }
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, HybridAction::Split { .. })),
        "sustained overload must request a split, got {actions:?}"
    );
}

#[test]
fn balanced_load_requests_nothing() {
    let sse = SseConfig::default(); // 2 222 orders/s: everything is cold
    let workload = SseWorkload::new(sse, 12);
    let mut planner = HybridPlanner::new(HybridConfig {
        split_cores: 16.0,
        merge_cores: 0.0, // disable merges: only testing split quiescence
        sustain_windows: 3,
        ..HybridConfig::default()
    });
    let samples = window(&workload, 32, 0.5e-3);
    for _ in 0..20 {
        assert!(
            planner.observe(&samples).is_empty(),
            "no sustained overload, no action"
        );
    }
}

#[test]
fn idle_executors_are_merged_but_parallelism_floor_holds() {
    let sse = SseConfig {
        base_rate: 100.0, // trickle: every executor is nearly idle
        ..SseConfig::default()
    };
    let workload = SseWorkload::new(sse, 13);
    let mut planner = HybridPlanner::new(HybridConfig {
        merge_cores: 0.5,
        sustain_windows: 2,
        min_executors_per_operator: 2,
        ..HybridConfig::default()
    });
    let samples = window(&workload, 8, 0.5e-3);
    let mut merges = Vec::new();
    for _ in 0..4 {
        merges.extend(planner.observe(&samples));
    }
    assert!(
        merges
            .iter()
            .any(|a| matches!(a, HybridAction::Merge { .. })),
        "idle executors should merge"
    );

    // With only two executors left, the floor blocks further merging.
    let two = window(&workload, 2, 0.5e-3);
    let mut floor_planner = HybridPlanner::new(HybridConfig {
        merge_cores: 0.5,
        sustain_windows: 1,
        min_executors_per_operator: 2,
        ..HybridConfig::default()
    });
    for _ in 0..5 {
        assert!(floor_planner.observe(&two).is_empty());
    }
}
