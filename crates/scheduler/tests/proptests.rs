//! Property-based tests for the scheduler.

use elasticutor_core::ids::NodeId;
use elasticutor_scheduler::algorithm::{assign_cores, ExecutorProfile};
use elasticutor_scheduler::assignment::{Assignment, ClusterSpec};
use elasticutor_scheduler::cost::transition_cost;
use proptest::prelude::*;

/// Generates a random valid assignment over the cluster.
fn random_assignment(executors: usize, nodes: usize, cores_per_node: u32, seed: u64) -> Assignment {
    let cluster = ClusterSpec::uniform(nodes as u32, cores_per_node);
    let mut x = Assignment::empty(executors, nodes);
    let mut s = seed;
    // Give every executor one core somewhere (if room), then sprinkle.
    for j in 0..executors {
        s = elasticutor_core::hash::splitmix64(s);
        for off in 0..nodes {
            let node = NodeId::from_index(((s as usize) + off) % nodes);
            if x.free_on_node(node, &cluster) > 0 {
                x.grant(j, node, &cluster);
                break;
            }
        }
    }
    x
}

proptest! {
    /// Whenever Algorithm 1 succeeds, the result satisfies every
    /// constraint of the optimization problem (Equation 2): capacity,
    /// allocation, and locality for data-intensive executors.
    #[test]
    fn successful_assignment_satisfies_constraints(
        executors in 1usize..10,
        nodes in 1usize..6,
        cores in 2u32..6,
        seed in any::<u64>(),
        targets_raw in prop::collection::vec(0u32..5, 1..10),
        intensity_mask in any::<u16>(),
    ) {
        let cluster = ClusterSpec::uniform(nodes as u32, cores);
        let current = random_assignment(executors, nodes, cores, seed);
        let mut targets: Vec<u32> = (0..executors)
            .map(|j| targets_raw[j % targets_raw.len()].max(1))
            .collect();
        // Shrink the request toward capacity. Targets floor at 1, so when
        // there are more executors than cores the request stays over
        // capacity — assign_cores then returns CapacityExceeded, which the
        // `if let Ok` below treats as a (legitimate) non-case.
        let cap = cluster.total_cores();
        let mut sum: u32 = targets.iter().sum();
        while sum > cap {
            match targets.iter_mut().find(|t| **t > 1) {
                Some(t) => {
                    *t -= 1;
                    sum -= 1;
                }
                None => break,
            }
        }
        let phi = 1000.0;
        let profiles: Vec<ExecutorProfile> = (0..executors)
            .map(|j| ExecutorProfile {
                local_node: NodeId::from_index(j % nodes),
                state_bytes: 1024.0 * (j as f64 + 1.0),
                data_intensity: if intensity_mask & (1 << (j % 16)) != 0 {
                    2000.0
                } else {
                    10.0
                },
            })
            .collect();

        if let Ok(plan) = assign_cores(&cluster, &current, &targets, &profiles, phi) {
            let x = &plan.assignment;
            // (a) capacity
            prop_assert!(x.respects_capacity(&cluster));
            // (b) allocation
            for (j, &target) in targets.iter().enumerate() {
                prop_assert!(
                    x.total_of(j) >= target,
                    "executor {j}: {} < {}",
                    x.total_of(j),
                    target
                );
            }
            // (c) locality for intensive executors that were *changed*:
            // any core the algorithm GRANTED to an intensive executor is
            // local. (Pre-existing remote cores are not repatriated by
            // Algorithm 1.)
            for (j, profile) in profiles.iter().enumerate() {
                if profile.data_intensity > phi {
                    for i in 0..nodes {
                        let node = NodeId::from_index(i);
                        if node != profile.local_node {
                            prop_assert!(
                                x.on_node(j, node) <= current.on_node(j, node),
                                "intensive executor {j} gained a remote core"
                            );
                        }
                    }
                }
            }
            // Migration-cost estimate is non-negative and finite.
            prop_assert!(plan.migration_cost.is_finite() && plan.migration_cost >= -1e-9);
            // Nobody stranded at zero cores (if they had one before).
            for j in 0..executors {
                if current.total_of(j) > 0 {
                    prop_assert!(x.total_of(j) > 0, "executor {j} stranded");
                }
            }
        }
    }

    /// The transition cost is zero iff nothing moved, and symmetric
    /// under swapping arguments for pure permutations of equal state.
    #[test]
    fn transition_cost_properties(
        seed in any::<u64>(),
        executors in 1usize..6,
        nodes in 1usize..5,
    ) {
        let a = random_assignment(executors, nodes, 4, seed);
        let state: Vec<f64> = (0..executors).map(|j| 1000.0 * (j as f64 + 1.0)).collect();
        prop_assert_eq!(transition_cost(&a, &a, &state), 0.0);
        let b = random_assignment(executors, nodes, 4, seed.wrapping_add(1));
        let c_ab = transition_cost(&a, &b, &state);
        prop_assert!(c_ab >= 0.0);
    }
}
