//! The full dynamic-scheduler control loop (paper §4).
//!
//! Every scheduling interval the engine hands the scheduler fresh
//! per-executor measurements; the scheduler:
//!
//! 1. builds the Jackson model and runs the greedy **allocation** (how
//!    many cores each executor should have — `elasticutor-queueing`);
//! 2. derives per-core **data intensities** (`total data rate / k_j`) and
//!    the data-intensive set `E(φ)`;
//! 3. runs **Algorithm 1** to produce the new CPU-to-executor assignment,
//!    doubling `φ` and retrying on infeasibility (§4.2: "we run the
//!    algorithm using a low default value φ̃; if no feasible solution is
//!    found, we double φ and re-run");
//! 4. emits the ordered list of per-node core deltas for the engine to
//!    apply (revocations before grants so capacity is never exceeded).
//!
//! The [`SchedulerPolicy::Naive`] variant reproduces the paper's
//! *naive-EC* baseline (§5.4): identical queueing model, but core
//! placement ignores both migration cost and computation locality.

use elasticutor_core::ids::NodeId;
use elasticutor_queueing::jackson::{ExecutorLoad, JacksonNetwork};
use elasticutor_queueing::{allocate, AllocationRequest};

use crate::algorithm::{assign_cores, AssignError, AssignmentPlan, ExecutorProfile};
use crate::assignment::{Assignment, ClusterSpec, CoreDelta};

/// A fresh measurement of one executor, taken over the metrics window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutorMeasurement {
    /// Arrival rate λ_j, tuples/s.
    pub lambda: f64,
    /// Per-core service rate μ_j, tuples/s.
    pub mu: f64,
    /// Aggregate state size s_j, bytes.
    pub state_bytes: f64,
    /// Total input + output data rate, bytes/s (numerator of the
    /// data-intensity measure).
    pub data_rate: f64,
    /// The node hosting the executor's main process, `I(j)`.
    pub local_node: NodeId,
}

/// Core-placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// The paper's full scheduler: migration-cost-minimizing Algorithm 1
    /// with locality constraints.
    Optimized,
    /// The *naive-EC* ablation: same allocation, but first-fit placement
    /// that ignores migration cost and locality.
    Naive,
}

/// Scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Latency target `T_max` in seconds.
    pub latency_target: f64,
    /// Base data-intensity threshold φ̃ in bytes/s (paper: 512 KB/s).
    pub phi_base: f64,
    /// Maximum number of φ doublings before giving up (safety bound; 64
    /// doublings exceed any finite data rate).
    pub max_phi_doublings: u32,
    /// Placement policy.
    pub policy: SchedulerPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            latency_target: 0.05,
            phi_base: 512.0 * 1024.0,
            max_phi_doublings: 64,
            policy: SchedulerPolicy::Optimized,
        }
    }
}

/// The scheduler's output for one round.
#[derive(Clone, Debug)]
pub struct SchedulerDecision {
    /// Target cores per executor (`k`).
    pub targets: Vec<u32>,
    /// The new assignment and its migration cost.
    pub plan: AssignmentPlan,
    /// Ordered core deltas (revocations first) to transition from the
    /// previous assignment.
    pub deltas: Vec<CoreDelta>,
    /// The φ value that produced a feasible assignment.
    pub phi_used: f64,
    /// Modeled `E[T]` under `targets`, seconds.
    pub expected_latency: f64,
    /// Whether the latency target is met by the model.
    pub meets_target: bool,
    /// Whether the cluster could not even afford stability (overload).
    pub saturated: bool,
}

/// The dynamic scheduler. Stateless between rounds except for its
/// configuration; the engine owns the current assignment.
#[derive(Clone, Debug, Default)]
pub struct DynamicScheduler {
    /// Configuration (target latency, φ̃, policy).
    pub config: SchedulerConfig,
}

impl DynamicScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        Self { config }
    }

    /// Runs one scheduling round. `lambda0` is the external arrival rate
    /// (tuples/s); `current` is the live assignment.
    ///
    /// Returns an error only if Algorithm 1 stays infeasible after all φ
    /// doublings (which implies a capacity problem that allocation-side
    /// saturation handling should normally have absorbed).
    pub fn schedule(
        &self,
        cluster: &ClusterSpec,
        current: &Assignment,
        measurements: &[ExecutorMeasurement],
        lambda0: f64,
    ) -> Result<SchedulerDecision, AssignError> {
        assert_eq!(
            current.num_executors(),
            measurements.len(),
            "one measurement per executor"
        );

        // Step 1: how many cores each executor needs.
        let network = JacksonNetwork::new(
            lambda0.max(f64::MIN_POSITIVE),
            measurements
                .iter()
                .map(|m| ExecutorLoad::new(m.lambda, m.mu))
                .collect(),
        );
        let allocation = allocate(&AllocationRequest {
            network: &network,
            latency_target: self.config.latency_target,
            available_cores: cluster.total_cores(),
        });

        // Step 1b: damp single-core claims. Measured λ fluctuates a few
        // per-cent between windows, so raw targets oscillate by ±1 core;
        // honouring those claims steals a core (draining its shards) one
        // round and hands it back the next. A +1 claim is ignored *as
        // long as the current allocation is still stable* (k ≥ ⌊λ/μ⌋+1);
        // an unstable executor's claim always fires, however small.
        let mut targets = allocation.cores.clone();
        for (j, t) in targets.iter_mut().enumerate() {
            let cur = current.total_of(j);
            let stable = cur
                >= elasticutor_queueing::mmk::min_stable_servers(
                    measurements[j].lambda,
                    measurements[j].mu,
                );
            if *t == cur + 1 && stable {
                *t = cur;
            }
        }

        // Step 2: per-core data intensity under the *new* allocation.
        let profiles: Vec<ExecutorProfile> = measurements
            .iter()
            .zip(&targets)
            .map(|(m, &k)| ExecutorProfile {
                local_node: m.local_node,
                state_bytes: m.state_bytes,
                data_intensity: m.data_rate / f64::from(k.max(1)),
            })
            .collect();

        // Step 3: placement.
        let plan = match self.config.policy {
            SchedulerPolicy::Optimized => {
                self.assign_with_phi_doubling(cluster, current, &targets, &profiles)?
            }
            SchedulerPolicy::Naive => naive_assign(cluster, current, &targets, &profiles)?,
        };

        let deltas = current.diff(&plan.assignment);
        Ok(SchedulerDecision {
            targets,
            phi_used: match self.config.policy {
                SchedulerPolicy::Optimized => self.config.phi_base,
                SchedulerPolicy::Naive => f64::INFINITY,
            },
            expected_latency: allocation.expected_latency,
            meets_target: allocation.meets_target,
            saturated: allocation.saturated,
            plan,
            deltas,
        })
    }

    fn assign_with_phi_doubling(
        &self,
        cluster: &ClusterSpec,
        current: &Assignment,
        targets: &[u32],
        profiles: &[ExecutorProfile],
    ) -> Result<AssignmentPlan, AssignError> {
        let mut phi = self.config.phi_base;
        let mut last_err = None;
        for _ in 0..=self.config.max_phi_doublings {
            match assign_cores(cluster, current, targets, profiles, phi) {
                Ok(plan) => return Ok(plan),
                Err(e @ AssignError::CapacityExceeded { .. }) => return Err(e),
                Err(e @ AssignError::Infeasible { .. }) => {
                    last_err = Some(e);
                    phi *= 2.0;
                }
            }
        }
        Err(last_err.expect("at least one attempt"))
    }
}

/// First-fit placement ignoring migration cost and locality: the paper's
/// naive-EC. Under-provisioned executors are served in index order, taking
/// free cores from the lowest-numbered node first, then stealing from
/// over-provisioned executors in index order. Over-provisioned executors
/// are trimmed to their targets first so the naive scheduler churns cores
/// eagerly (no "keep the extras" hysteresis).
fn naive_assign(
    cluster: &ClusterSpec,
    current: &Assignment,
    targets: &[u32],
    profiles: &[ExecutorProfile],
) -> Result<AssignmentPlan, AssignError> {
    let m = targets.len();
    let requested: u64 = targets.iter().map(|&k| u64::from(k)).sum();
    if requested > u64::from(cluster.total_cores()) {
        return Err(AssignError::CapacityExceeded {
            requested,
            available: u64::from(cluster.total_cores()),
        });
    }

    let mut x = current.clone();
    let mut migration_cost = 0.0;
    let mut reassignments = 0usize;

    // Trim everyone to target, releasing cores from the highest node index
    // downward (arbitrary, cost-blind).
    for j in 0..m {
        while x.total_of(j) > targets[j].max(1) {
            let node = *x.nodes_of(j).last().expect("has cores");
            migration_cost += crate::cost::deallocation_cost(&x, j, node, profiles[j].state_bytes);
            x.revoke(j, node);
            reassignments += 1;
        }
    }

    // First-fit grants.
    for j in 0..m {
        'need: while x.total_of(j) < targets[j] {
            for i in 0..cluster.num_nodes() {
                let node = NodeId::from_index(i);
                if x.free_on_node(node, cluster) > 0 {
                    migration_cost +=
                        crate::cost::allocation_cost(&x, j, node, profiles[j].state_bytes);
                    x.grant(j, node, cluster);
                    reassignments += 1;
                    continue 'need;
                }
            }
            // No free core anywhere: steal from any over-provisioned
            // executor (index order, node order).
            for v in 0..m {
                if v == j || x.total_of(v) <= targets[v] || x.total_of(v) <= 1 {
                    continue;
                }
                let node = x.nodes_of(v)[0];
                migration_cost +=
                    crate::cost::deallocation_cost(&x, v, node, profiles[v].state_bytes);
                x.revoke(v, node);
                migration_cost +=
                    crate::cost::allocation_cost(&x, j, node, profiles[j].state_bytes);
                x.grant(j, node, cluster);
                reassignments += 1;
                continue 'need;
            }
            return Err(AssignError::Infeasible {
                phi: f64::INFINITY,
                executor: j,
            });
        }
    }

    Ok(AssignmentPlan {
        assignment: x,
        migration_cost,
        reassignments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1024.0 * 1024.0;

    fn measurements(specs: &[(f64, f64, u32)]) -> Vec<ExecutorMeasurement> {
        specs
            .iter()
            .map(|&(lambda, mu, node)| ExecutorMeasurement {
                lambda,
                mu,
                state_bytes: 8.0 * MB,
                data_rate: 100.0 * 1024.0,
                local_node: NodeId(node),
            })
            .collect()
    }

    #[test]
    fn end_to_end_round_provisions_hot_executor() {
        let cluster = ClusterSpec::uniform(4, 8);
        // Two executors each holding 1 core; executor 0 is hot (needs ~8
        // cores at μ = 100/s, λ = 750/s).
        let current = Assignment::from_matrix(vec![vec![1, 0, 0, 0], vec![0, 1, 0, 0]]);
        let sched = DynamicScheduler::default();
        let dec = sched
            .schedule(
                &cluster,
                &current,
                &measurements(&[(750.0, 100.0, 0), (10.0, 100.0, 1)]),
                760.0,
            )
            .unwrap();
        assert!(dec.targets[0] >= 8, "hot executor needs ≥ λ/μ cores");
        assert_eq!(dec.plan.assignment.total_of(0) as u32, {
            // plan satisfies the target
            assert!(dec.plan.assignment.total_of(0) >= dec.targets[0]);
            dec.plan.assignment.total_of(0)
        });
        assert!(dec.meets_target);
        assert!(!dec.saturated);
        // Deltas replay the transition: revokes sum + grants sum match.
        let net: i64 = dec.deltas.iter().map(|d| d.delta).sum();
        let before: i64 = current.totals().iter().map(|&c| i64::from(c)).sum();
        let after: i64 = dec
            .plan
            .assignment
            .totals()
            .iter()
            .map(|&c| i64::from(c))
            .sum();
        assert_eq!(net, after - before);
    }

    #[test]
    fn optimized_prefers_local_expansion() {
        let cluster = ClusterSpec::uniform(2, 8);
        let current = Assignment::from_matrix(vec![vec![1, 0], vec![0, 1]]);
        let sched = DynamicScheduler::default();
        let dec = sched
            .schedule(
                &cluster,
                &current,
                &measurements(&[(500.0, 100.0, 0), (10.0, 100.0, 1)]),
                510.0,
            )
            .unwrap();
        // Executor 0 should grow on its own node 0 (free cores, zero
        // migration) before spilling to node 1.
        assert!(dec.plan.assignment.on_node(0, NodeId(0)) >= 6);
        assert!(dec.plan.migration_cost < 1e-9);
    }

    #[test]
    fn naive_policy_is_cost_blind() {
        let cluster = ClusterSpec::uniform(2, 8);
        // Executor 0 lives on node 1 with all its state; naive will grab
        // node-0 cores first anyway.
        let current = Assignment::from_matrix(vec![vec![0, 1], vec![1, 0]]);
        let cfg = SchedulerConfig {
            policy: SchedulerPolicy::Naive,
            ..Default::default()
        };
        let sched = DynamicScheduler::new(cfg);
        let dec = sched
            .schedule(
                &cluster,
                &current,
                &measurements(&[(500.0, 100.0, 1), (10.0, 100.0, 0)]),
                510.0,
            )
            .unwrap();
        assert!(dec.plan.assignment.total_of(0) >= 6);
        // It scattered cores on the remote node 0 even though node 1 had
        // room: nonzero modeled migration cost.
        assert!(dec.plan.assignment.on_node(0, NodeId(0)) > 0);
        assert!(dec.plan.migration_cost > 0.0);
    }

    #[test]
    fn optimized_beats_naive_on_migration_cost() {
        let cluster = ClusterSpec::uniform(4, 8);
        let current =
            Assignment::from_matrix(vec![vec![4, 0, 0, 0], vec![0, 4, 0, 0], vec![0, 0, 4, 0]]);
        let meas = measurements(&[(700.0, 100.0, 0), (100.0, 100.0, 1), (100.0, 100.0, 2)]);
        let opt = DynamicScheduler::default()
            .schedule(&cluster, &current, &meas, 900.0)
            .unwrap();
        let naive = DynamicScheduler::new(SchedulerConfig {
            policy: SchedulerPolicy::Naive,
            ..Default::default()
        })
        .schedule(&cluster, &current, &meas, 900.0)
        .unwrap();
        assert!(
            opt.plan.migration_cost <= naive.plan.migration_cost,
            "optimized {} vs naive {}",
            opt.plan.migration_cost,
            naive.plan.migration_cost
        );
    }

    #[test]
    fn phi_doubles_until_feasible() {
        // Tiny cluster where locality is impossible: every executor is
        // data-intensive at φ̃ but must accept remote cores.
        let cluster = ClusterSpec::uniform(2, 2);
        let current = Assignment::from_matrix(vec![vec![1, 0], vec![1, 0], vec![0, 1]]);
        let mut meas = measurements(&[(150.0, 100.0, 0), (150.0, 100.0, 0), (10.0, 100.0, 0)]);
        for m in &mut meas {
            m.data_rate = 100.0 * MB; // far above φ̃ per core
        }
        let sched = DynamicScheduler::default();
        let dec = sched.schedule(&cluster, &current, &meas, 310.0).unwrap();
        // Feasible despite the locality pressure: φ was doubled away.
        for (j, &k) in dec.targets.iter().enumerate() {
            assert!(dec.plan.assignment.total_of(j) >= k);
        }
    }

    #[test]
    fn saturated_cluster_still_produces_assignment() {
        let cluster = ClusterSpec::uniform(1, 4);
        let current = Assignment::from_matrix(vec![vec![1], vec![1]]);
        // Demand far beyond 4 cores.
        let dec = DynamicScheduler::default()
            .schedule(
                &cluster,
                &current,
                &measurements(&[(1000.0, 100.0, 0), (1000.0, 100.0, 0)]),
                2000.0,
            )
            .unwrap();
        assert!(dec.saturated);
        assert!(!dec.meets_target);
        let total: u32 = dec.plan.assignment.totals().iter().sum();
        assert!(total <= 4);
        assert!(dec.plan.assignment.totals().iter().all(|&c| c >= 1));
    }

    #[test]
    fn deltas_apply_cleanly() {
        let cluster = ClusterSpec::uniform(2, 4);
        let current = Assignment::from_matrix(vec![vec![3, 0], vec![1, 2]]);
        let dec = DynamicScheduler::default()
            .schedule(
                &cluster,
                &current,
                &measurements(&[(50.0, 100.0, 0), (350.0, 100.0, 1)]),
                400.0,
            )
            .unwrap();
        // Replaying deltas onto `current` reproduces the plan.
        let mut replay = current.clone();
        for d in &dec.deltas {
            for _ in 0..d.delta.abs() {
                if d.delta < 0 {
                    replay.revoke(d.executor, d.node);
                } else {
                    replay.grant(d.executor, d.node, &cluster);
                }
            }
        }
        assert_eq!(replay, dec.plan.assignment);
    }
}
