//! The state-migration cost model (paper §4.2).
//!
//! The overhead of a core reassignment is dominated by state migration,
//! proportional to the bytes moved across the network. Assuming an
//! executor's shards spread evenly over its cores, each core of executor
//! `j` carries `s_j / X_j` bytes of state, giving the transition cost
//!
//! ```text
//! C(X | X̃) = Σ_j Σ_i max(0, s_j·x̃_ij/X̃_j − s_j·x_ij/X_j)
//! ```
//!
//! (each term is the state executor `j` must move *out of* node `i`), and
//! the per-core marginal costs used by Algorithm 1:
//!
//! ```text
//! C⁺_ij(X) = s_j (X_j − x_ij) / (X_j (X_j + 1))   — allocate on node i
//! C⁻_ij(X) = s_j (X_j − x_ij) / (X_j (X_j − 1))   — deallocate on node i
//! ```
//!
//! Intuition for `C⁺`: after adding a core on node `i`, that core must own
//! `s_j/(X_j+1)` state, of which the fraction already on node `i` is free;
//! the rest arrives over the network. `C⁻` mirrors this for removal: the
//! departing core's state must go to the other nodes' cores.

use crate::assignment::Assignment;
use elasticutor_core::ids::NodeId;

/// Per-executor inputs to the cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StateSize {
    /// `s_j` — aggregate state bytes of the executor.
    pub bytes: f64,
}

/// `C⁺_ij(X)` — the state-migration cost of granting executor `j` one
/// core on node `i`, given current assignment `X`.
///
/// When `X_j = 0` (fresh executor) the cost is zero: there is no state
/// spread yet, wherever the first core lands is "local".
pub fn allocation_cost(x: &Assignment, executor: usize, node: NodeId, state_bytes: f64) -> f64 {
    let total = f64::from(x.total_of(executor));
    if total == 0.0 {
        return 0.0;
    }
    let on_node = f64::from(x.on_node(executor, node));
    state_bytes * (total - on_node) / (total * (total + 1.0))
}

/// `C⁻_ij(X)` — the state-migration cost of revoking one core of node `i`
/// from executor `j`.
///
/// Undefined (returns `f64::INFINITY`) when `X_j ≤ 1`: an executor can
/// never drop to zero cores, so such a deallocation must never be chosen.
pub fn deallocation_cost(x: &Assignment, executor: usize, node: NodeId, state_bytes: f64) -> f64 {
    let total = f64::from(x.total_of(executor));
    if total <= 1.0 {
        return f64::INFINITY;
    }
    let on_node = f64::from(x.on_node(executor, node));
    state_bytes * (total - on_node) / (total * (total - 1.0))
}

/// Full transition cost `C(X | X̃)` in state bytes crossing the network.
///
/// Panics if the two assignments have different shapes or if
/// `state_bytes.len()` does not match the executor count.
pub fn transition_cost(before: &Assignment, after: &Assignment, state_bytes: &[f64]) -> f64 {
    assert_eq!(before.num_executors(), after.num_executors());
    assert_eq!(before.num_nodes(), after.num_nodes());
    assert_eq!(before.num_executors(), state_bytes.len());
    let mut cost = 0.0;
    for (j, &bytes) in state_bytes.iter().enumerate() {
        let xj_before = f64::from(before.total_of(j));
        let xj_after = f64::from(after.total_of(j));
        if xj_before == 0.0 || xj_after == 0.0 {
            continue; // an executor with no cores holds no placed state
        }
        for i in 0..before.num_nodes() {
            let node = NodeId::from_index(i);
            let share_before = bytes * f64::from(before.on_node(j, node)) / xj_before;
            let share_after = bytes * f64::from(after.on_node(j, node)) / xj_after;
            cost += (share_before - share_after).max(0.0);
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: f64 = 1024.0; // 1 KiB of state

    #[test]
    fn allocation_on_sole_node_is_free() {
        // Executor entirely on node 0; adding another node-0 core moves
        // nothing (intra-process state sharing).
        let x = Assignment::from_matrix(vec![vec![4, 0]]);
        assert_eq!(allocation_cost(&x, 0, NodeId(0), S), 0.0);
    }

    #[test]
    fn allocation_remote_costs_a_share() {
        // 4 cores on node 0; adding a core on node 1 must pull 1/5 of the
        // state across: s·(X_j − x_ij)/(X_j(X_j+1)) = s·4/(4·5) = s/5.
        let x = Assignment::from_matrix(vec![vec![4, 0]]);
        let c = allocation_cost(&x, 0, NodeId(1), S);
        assert!((c - S / 5.0).abs() < 1e-9);
    }

    #[test]
    fn first_core_is_free() {
        let x = Assignment::from_matrix(vec![vec![0, 0]]);
        assert_eq!(allocation_cost(&x, 0, NodeId(1), S), 0.0);
    }

    #[test]
    fn deallocation_local_vs_remote() {
        // 3 cores on node 0, 1 on node 1 (X_j = 4).
        let x = Assignment::from_matrix(vec![vec![3, 1]]);
        // Removing the node-1 core sends its s/4 state to node 0:
        // C⁻ = s(4−1)/(4·3) = s/4.
        let remote = deallocation_cost(&x, 0, NodeId(1), S);
        assert!((remote - S / 4.0).abs() < 1e-9);
        // Removing a node-0 core spreads its state over the 3 survivors,
        // 1/3 of which sit on node 1: C⁻ = s(4−3)/(4·3) = s/12.
        let local = deallocation_cost(&x, 0, NodeId(0), S);
        assert!((local - S / 12.0).abs() < 1e-9);
        assert!(local < remote);
    }

    #[test]
    fn deallocating_last_core_is_forbidden() {
        let x = Assignment::from_matrix(vec![vec![1, 0]]);
        assert!(deallocation_cost(&x, 0, NodeId(0), S).is_infinite());
    }

    #[test]
    fn transition_cost_zero_for_identity() {
        let x = Assignment::from_matrix(vec![vec![2, 2], vec![0, 4]]);
        assert_eq!(transition_cost(&x, &x, &[S, S]), 0.0);
    }

    #[test]
    fn transition_cost_counts_outbound_only() {
        // Executor 0 moves from all-node-0 to half-and-half: half the
        // state leaves node 0.
        let before = Assignment::from_matrix(vec![vec![4, 0]]);
        let after = Assignment::from_matrix(vec![vec![2, 2]]);
        let c = transition_cost(&before, &after, &[S]);
        assert!((c - S / 2.0).abs() < 1e-9);
        // The reverse move costs the same (symmetric here).
        let back = transition_cost(&after, &before, &[S]);
        assert!((back - S / 2.0).abs() < 1e-9);
    }

    #[test]
    fn transition_cost_scale_out_keeps_share() {
        // Doubling cores on the same node moves nothing.
        let before = Assignment::from_matrix(vec![vec![2, 0]]);
        let after = Assignment::from_matrix(vec![vec![4, 0]]);
        assert_eq!(transition_cost(&before, &after, &[S]), 0.0);
    }

    #[test]
    fn transition_cost_multiple_executors_sum() {
        let before = Assignment::from_matrix(vec![vec![2, 0], vec![0, 2]]);
        let after = Assignment::from_matrix(vec![vec![0, 2], vec![0, 2]]);
        // Executor 0 moves everything off node 0 (cost S); executor 1
        // unchanged.
        let c = transition_cost(&before, &after, &[S, S]);
        assert!((c - S).abs() < 1e-9);
    }

    #[test]
    fn marginal_costs_compose_into_transition() {
        // Applying a grant then checking C(X'|X) equals... the marginal
        // C⁺ approximates the exact transition cost of the single grant.
        let before = Assignment::from_matrix(vec![vec![4, 0]]);
        let mut after = before.clone();
        let cluster = crate::assignment::ClusterSpec::uniform(2, 8);
        after.grant(0, NodeId(1), &cluster);
        let marginal = allocation_cost(&before, 0, NodeId(1), S);
        let exact = transition_cost(&before, &after, &[S]);
        assert!((marginal - exact).abs() < 1e-9, "{marginal} vs {exact}");
    }
}
