//! Algorithm 1 — greedy dynamic CPU-to-executor assignment (paper §4.2).
//!
//! Given a target allocation `k` (from the queueing model), the existing
//! assignment `X̃`, cluster capacities `c`, and the data-intensity
//! threshold `φ`, find a new assignment `X` with `X_j ≥ k_j` that
//! (heuristically) minimizes migration cost while keeping data-intensive
//! executors (`E(φ)`) on their local nodes.
//!
//! Faithful to the paper's pseudocode with three engineering refinements,
//! each noted inline:
//!
//! 1. **Free cores** are considered as zero-deallocation-cost donors.
//!    (The paper's pseudocode only steals from over-provisioned executors
//!    because its allocator hands out every core; a real cluster can have
//!    unassigned cores, and using one is always at least as cheap.)
//! 2. When a data-intensive executor finds no donor in `E⁻` on its local
//!    node, the paper's donor set `E \ E⁺Δ` permits stealing from an
//!    executor that is exactly at its target; we do the same but re-queue
//!    the victim so it is re-provisioned within the same run when
//!    possible (the paper would leave it under-provisioned until the next
//!    scheduling round).
//! 3. An iteration budget guards against pathological steal chains; if
//!    exceeded the run fails like an ordinary infeasibility, prompting the
//!    φ-doubling retry.

use std::collections::VecDeque;

use elasticutor_core::ids::NodeId;

use crate::assignment::{Assignment, ClusterSpec};
use crate::cost::{allocation_cost, deallocation_cost};

/// Per-executor inputs to Algorithm 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutorProfile {
    /// `I(j)` — the node hosting the executor's main process.
    pub local_node: NodeId,
    /// `s_j` — aggregate state size in bytes.
    pub state_bytes: f64,
    /// Measured per-core data intensity in bytes/s (total input + output
    /// data rate divided by the executor's current core count).
    pub data_intensity: f64,
}

/// Why the assignment failed.
#[derive(Clone, Debug, PartialEq)]
pub enum AssignError {
    /// No feasible assignment at this `φ`; the caller should double `φ`
    /// and retry (paper §4.2).
    Infeasible {
        /// The threshold that failed.
        phi: f64,
        /// Executor that could not be provisioned.
        executor: usize,
    },
    /// The target allocation exceeds total cluster capacity — no `φ` can
    /// fix this.
    CapacityExceeded {
        /// Total cores requested (`Σ k_j`).
        requested: u64,
        /// Cluster capacity.
        available: u64,
    },
}

impl std::fmt::Display for AssignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignError::Infeasible { phi, executor } => {
                write!(f, "infeasible at phi = {phi} (executor {executor})")
            }
            AssignError::CapacityExceeded {
                requested,
                available,
            } => write!(f, "requested {requested} cores > capacity {available}"),
        }
    }
}

impl std::error::Error for AssignError {}

/// A successful assignment plan.
#[derive(Clone, Debug)]
pub struct AssignmentPlan {
    /// The new assignment `X`.
    pub assignment: Assignment,
    /// Estimated migration cost of the transition, in state bytes moved
    /// across the network (sum of the marginal `C⁺`/`C⁻` of each applied
    /// reassignment).
    pub migration_cost: f64,
    /// Number of single-core reassignments applied.
    pub reassignments: usize,
}

/// Runs Algorithm 1. See the module docs for semantics.
///
/// `targets[j]` is `k_j`; `profiles[j]` carries `I(j)`, `s_j` and the
/// measured data intensity. `phi` is the current locality threshold.
pub fn assign_cores(
    cluster: &ClusterSpec,
    current: &Assignment,
    targets: &[u32],
    profiles: &[ExecutorProfile],
    phi: f64,
) -> Result<AssignmentPlan, AssignError> {
    let m = targets.len();
    assert_eq!(current.num_executors(), m, "one target per executor");
    assert_eq!(profiles.len(), m, "one profile per executor");
    assert_eq!(
        current.num_nodes(),
        cluster.num_nodes(),
        "assignment and cluster node counts must match"
    );

    let requested: u64 = targets.iter().map(|&k| u64::from(k)).sum();
    if requested > u64::from(cluster.total_cores()) {
        return Err(AssignError::CapacityExceeded {
            requested,
            available: u64::from(cluster.total_cores()),
        });
    }
    // A live caller's `current` mirrors real threads, which can drift
    // above the budget when a revocation was refused (e.g. an executor
    // already at its minimum). Refuse to plan from an infeasible start
    // instead of producing an over-capacity assignment.
    if !current.respects_capacity(cluster) {
        return Err(AssignError::CapacityExceeded {
            requested: (0..m).map(|j| u64::from(current.total_of(j))).sum(),
            available: u64::from(cluster.total_cores()),
        });
    }

    let mut x = current.clone();
    let mut migration_cost = 0.0;
    let mut reassignments = 0usize;

    let is_intensive = |j: usize| profiles[j].data_intensity > phi;

    // E⁺ sorted by data-intensity descending: the most constrained
    // executors pick first (prose of §4.2).
    let mut queue: VecDeque<usize> = {
        let mut under: Vec<usize> = (0..m).filter(|&j| x.total_of(j) < targets[j]).collect();
        under.sort_by(|&a, &b| {
            profiles[b]
                .data_intensity
                .partial_cmp(&profiles[a].data_intensity)
                .unwrap()
        });
        under.into()
    };

    // Iteration budget (refinement 3).
    let mut budget = (cluster.total_cores() as usize) * 4 + 64;

    while let Some(j) = queue.pop_front() {
        while x.total_of(j) < targets[j] {
            if budget == 0 {
                return Err(AssignError::Infeasible { phi, executor: j });
            }
            budget -= 1;

            let grant = if is_intensive(j) {
                // Data-intensive: only the local node I(j) is acceptable.
                let i = profiles[j].local_node;
                find_donor_on_node(&x, cluster, targets, profiles, phi, j, i)
            } else {
                // Any node: minimize C⁻ (donor) + C⁺ (recipient).
                find_donor_anywhere(&x, cluster, targets, profiles, j)
            };

            match grant {
                Some(donation) => {
                    if let Some(victim) = donation.victim {
                        migration_cost += deallocation_cost(
                            &x,
                            victim,
                            donation.node,
                            profiles[victim].state_bytes,
                        );
                        x.revoke(victim, donation.node);
                        // Refinement 2: an at-target victim becomes
                        // under-provisioned; re-queue it once.
                        if x.total_of(victim) < targets[victim] && !queue.contains(&victim) {
                            queue.push_back(victim);
                        }
                    }
                    migration_cost +=
                        allocation_cost(&x, j, donation.node, profiles[j].state_bytes);
                    x.grant(j, donation.node, cluster);
                    reassignments += 1;
                }
                None => return Err(AssignError::Infeasible { phi, executor: j }),
            }
        }
    }

    debug_assert!(x.respects_capacity(cluster));
    Ok(AssignmentPlan {
        assignment: x,
        migration_cost,
        reassignments,
    })
}

/// A core made available on `node`, either free (`victim == None`) or
/// revoked from `victim`.
struct Donation {
    node: NodeId,
    victim: Option<usize>,
    cost: f64,
}

/// Finds the cheapest core on a specific node for executor `j`
/// (data-intensive path, line 7 of Algorithm 1).
fn find_donor_on_node(
    x: &Assignment,
    cluster: &ClusterSpec,
    targets: &[u32],
    profiles: &[ExecutorProfile],
    phi: f64,
    j: usize,
    node: NodeId,
) -> Option<Donation> {
    // A free core costs nothing to deallocate (refinement 1).
    if x.free_on_node(node, cluster) > 0 {
        return Some(Donation {
            node,
            victim: None,
            cost: allocation_cost(x, j, node, profiles[j].state_bytes),
        });
    }
    // Donor set E \ E⁺Δ: anyone holding a core on `node` except
    // under-provisioned data-intensive executors (and j itself).
    let mut best: Option<Donation> = None;
    for v in 0..targets.len() {
        if v == j || x.on_node(v, node) == 0 {
            continue;
        }
        let v_under = x.total_of(v) < targets[v];
        let v_intensive = profiles[v].data_intensity > phi;
        if v_under && v_intensive {
            continue; // E⁺Δ is protected
        }
        // Prefer donors that keep their target satisfied: stealing from an
        // over-provisioned executor is always better than creating a new
        // deficit, so penalize at-target donors lexicographically.
        let over = x.total_of(v) > targets[v];
        let c = deallocation_cost(x, v, node, profiles[v].state_bytes);
        if !c.is_finite() {
            continue; // would strand the donor with zero cores
        }
        let effective = if over { c } else { c + f64::MAX / 4.0 };
        let candidate = Donation {
            node,
            victim: Some(v),
            cost: effective,
        };
        match &best {
            None => best = Some(candidate),
            Some(b) if effective < b.cost => best = Some(candidate),
            _ => {}
        }
    }
    best
}

/// Finds the cheapest `(node, donor)` pair anywhere in the cluster for a
/// non-data-intensive executor `j` (line 9 of Algorithm 1).
fn find_donor_anywhere(
    x: &Assignment,
    cluster: &ClusterSpec,
    targets: &[u32],
    profiles: &[ExecutorProfile],
    j: usize,
) -> Option<Donation> {
    let mut best: Option<Donation> = None;
    for i in 0..cluster.num_nodes() {
        let node = NodeId::from_index(i);
        // Free core: cost is C⁺ only.
        if x.free_on_node(node, cluster) > 0 {
            let c = allocation_cost(x, j, node, profiles[j].state_bytes);
            if best.as_ref().is_none_or(|b| c < b.cost) {
                best = Some(Donation {
                    node,
                    victim: None,
                    cost: c,
                });
            }
        }
        // Over-provisioned donors on this node: cost is C⁻ + C⁺.
        for v in 0..targets.len() {
            if v == j || x.on_node(v, node) == 0 {
                continue;
            }
            if x.total_of(v) <= targets[v] {
                continue; // line 9 searches E⁻ only
            }
            let c_minus = deallocation_cost(x, v, node, profiles[v].state_bytes);
            if !c_minus.is_finite() {
                continue;
            }
            let c = c_minus + allocation_cost(x, j, node, profiles[j].state_bytes);
            if best.as_ref().is_none_or(|b| c < b.cost) {
                best = Some(Donation {
                    node,
                    victim: Some(v),
                    cost: c,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles(specs: &[(u32, f64, f64)]) -> Vec<ExecutorProfile> {
        specs
            .iter()
            .map(|&(node, state, intensity)| ExecutorProfile {
                local_node: NodeId(node),
                state_bytes: state,
                data_intensity: intensity,
            })
            .collect()
    }

    const MB: f64 = 1024.0 * 1024.0;

    #[test]
    fn fills_from_free_cores_first() {
        let cluster = ClusterSpec::uniform(2, 4);
        let current = Assignment::from_matrix(vec![vec![1, 0], vec![0, 1]]);
        let prof = profiles(&[(0, MB, 0.0), (1, MB, 0.0)]);
        let plan = assign_cores(&cluster, &current, &[3, 1], &prof, f64::MAX).unwrap();
        assert_eq!(plan.assignment.total_of(0), 3);
        assert_eq!(plan.assignment.total_of(1), 1);
        // Free local cores preferred: no migration cost at all, since the
        // two extra cores land on node 0 where the state already lives.
        assert_eq!(plan.assignment.on_node(0, NodeId(0)), 3);
        assert!(plan.migration_cost < 1e-9);
        assert_eq!(plan.reassignments, 2);
    }

    #[test]
    fn steals_from_over_provisioned() {
        // Node capacity saturated; executor 1 is over-provisioned by 2.
        let cluster = ClusterSpec::uniform(1, 4);
        let current = Assignment::from_matrix(vec![vec![1], vec![3]]);
        let prof = profiles(&[(0, MB, 0.0), (0, MB, 0.0)]);
        let plan = assign_cores(&cluster, &current, &[3, 1], &prof, f64::MAX).unwrap();
        assert_eq!(plan.assignment.total_of(0), 3);
        assert_eq!(plan.assignment.total_of(1), 1);
        assert_eq!(plan.reassignments, 2);
    }

    #[test]
    fn data_intensive_insists_on_local_node() {
        let cluster = ClusterSpec::uniform(2, 3);
        // Executor 0 (intensive, local node 0) needs 2 but holds 1; node 0
        // is full: executor 1 (non-intensive, over-provisioned, k=1) holds
        // 2 cores there. Node 1 is entirely free — but the intensive
        // executor must take the *local* core from executor 1 rather than
        // a free remote one.
        let current = Assignment::from_matrix(vec![vec![1, 0], vec![2, 0]]);
        let prof = profiles(&[(0, MB, 1e9), (1, MB, 0.0)]);
        let plan = assign_cores(&cluster, &current, &[2, 1], &prof, 512.0 * 1024.0).unwrap();
        assert_eq!(plan.assignment.on_node(0, NodeId(0)), 2);
        assert_eq!(plan.assignment.on_node(0, NodeId(1)), 0, "stay local");
        assert_eq!(plan.assignment.total_of(1), 1);
    }

    #[test]
    fn at_target_victim_is_requeued_and_reprovisioned() {
        let cluster = ClusterSpec::uniform(2, 2);
        // Node 0: executor 0 (intensive, needs 2, holds 1) + executor 1
        // (non-intensive, at target k=2... no: holds 1 of k... let's give
        // executor 1 two cores at target). Layout: ex0 holds 1 on node 0;
        // ex1 holds 1 on node 0 and 1 on node 1, k_1 = 2 (at target).
        // E⁻ is empty, so the only local donor is at-target executor 1;
        // the algorithm must steal node-0's core from it and re-provision
        // it from node 1's free core.
        let current = Assignment::from_matrix(vec![vec![1, 0], vec![1, 1]]);
        let prof = profiles(&[(0, MB, 1e9), (1, MB, 0.0)]);
        let plan = assign_cores(&cluster, &current, &[2, 2], &prof, 512.0 * 1024.0).unwrap();
        assert_eq!(plan.assignment.on_node(0, NodeId(0)), 2);
        assert_eq!(plan.assignment.total_of(1), 2, "victim re-provisioned");
        assert_eq!(plan.assignment.on_node(1, NodeId(1)), 2);
    }

    #[test]
    fn non_intensive_takes_cheapest_anywhere() {
        let cluster = ClusterSpec::uniform(2, 4);
        // Executor 0 has 3 cores on node 0 and wants 4. A free core exists
        // on both nodes; node 0 is free of migration cost, node 1 costs
        // s·3/(3·4). Must choose node 0.
        let current = Assignment::from_matrix(vec![vec![3, 0]]);
        let prof = profiles(&[(0, 8.0 * MB, 0.0)]);
        let plan = assign_cores(&cluster, &current, &[4], &prof, f64::MAX).unwrap();
        assert_eq!(plan.assignment.on_node(0, NodeId(0)), 4);
        assert!(plan.migration_cost < 1e-9);
    }

    #[test]
    fn prefers_low_state_donor() {
        // One node, saturated. Two over-provisioned donors: executor 1
        // carries 100 MB state, executor 2 carries 1 MB. Stealing from 2
        // is cheaper.
        let cluster = ClusterSpec::uniform(1, 6);
        let current = Assignment::from_matrix(vec![vec![1], vec![2], vec![3]]);
        let prof = profiles(&[(0, MB, 0.0), (0, 100.0 * MB, 0.0), (0, MB, 0.0)]);
        let plan = assign_cores(&cluster, &current, &[2, 2, 2], &prof, f64::MAX).unwrap();
        assert_eq!(plan.assignment.total_of(0), 2);
        assert_eq!(plan.assignment.total_of(1), 2);
        assert_eq!(plan.assignment.total_of(2), 2);
        // Note: same-node deallocation is actually free of *network*
        // migration (intra-process sharing), which the C⁻ formula still
        // charges; the paper's model is node-granular and so is ours.
    }

    #[test]
    fn infeasible_when_local_node_locked_by_intensive_peers() {
        // Node 0 is full: executor 0 (intensive, under-provisioned,
        // local node 0) wants a second local core, but the only other
        // node-0 core belongs to a single-core executor that cannot be
        // stranded. Free cores on node 1 do not help an intensive
        // executor → Infeasible (at this φ).
        let cluster = ClusterSpec::uniform(2, 2);
        let current = Assignment::from_matrix(vec![vec![1, 0], vec![1, 0]]);
        let prof = profiles(&[(0, MB, 1e9), (0, MB, 0.0)]);
        let err = assign_cores(&cluster, &current, &[2, 1], &prof, 1.0).unwrap_err();
        match err {
            AssignError::Infeasible { executor, .. } => assert_eq!(executor, 0),
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn same_request_higher_phi_feasible() {
        // The φ-doubling escape hatch: with φ high enough nobody is
        // "data-intensive" and remote cores unlock the deadlock above.
        let cluster = ClusterSpec::uniform(2, 2);
        let current = Assignment::from_matrix(vec![vec![1, 0], vec![1, 0], vec![0, 1]]);
        let prof = profiles(&[(0, MB, 1e9), (0, MB, 1e9), (0, MB, 1e9)]);
        let plan = assign_cores(&cluster, &current, &[2, 1, 1], &prof, 1e12).unwrap();
        assert_eq!(plan.assignment.total_of(0), 2);
    }

    #[test]
    fn capacity_exceeded_detected_up_front() {
        let cluster = ClusterSpec::uniform(1, 2);
        let current = Assignment::empty(2, 1);
        let prof = profiles(&[(0, MB, 0.0), (0, MB, 0.0)]);
        let err = assign_cores(&cluster, &current, &[2, 2], &prof, f64::MAX).unwrap_err();
        assert_eq!(
            err,
            AssignError::CapacityExceeded {
                requested: 4,
                available: 2
            }
        );
    }

    #[test]
    fn over_provisioned_executors_keep_extras() {
        // Constraint (b) is X_j >= k_j: nobody forces giving cores back
        // when there is no claimant.
        let cluster = ClusterSpec::uniform(1, 4);
        let current = Assignment::from_matrix(vec![vec![3], vec![1]]);
        let prof = profiles(&[(0, MB, 0.0), (0, MB, 0.0)]);
        let plan = assign_cores(&cluster, &current, &[1, 1], &prof, f64::MAX).unwrap();
        assert_eq!(plan.assignment.total_of(0), 3, "no claimant, no revocation");
        assert_eq!(plan.reassignments, 0);
        assert!(plan.migration_cost < 1e-9);
    }

    #[test]
    fn never_strands_an_executor_at_zero_cores() {
        // Donor with exactly 1 core must never be robbed — even when its
        // target is 0, so it is formally over-provisioned.
        let cluster = ClusterSpec::uniform(1, 2);
        let current = Assignment::from_matrix(vec![vec![1], vec![1]]);
        let prof = profiles(&[(0, MB, 0.0), (0, MB, 0.0)]);
        let err = assign_cores(&cluster, &current, &[2, 0], &prof, f64::MAX).unwrap_err();
        assert!(matches!(err, AssignError::Infeasible { .. }));
    }

    #[test]
    fn empty_start_spreads_by_demand() {
        // Cold start: X̃ = 0. Everything comes from free cores at zero
        // migration cost.
        let cluster = ClusterSpec::uniform(4, 8);
        let current = Assignment::empty(3, 4);
        let prof = profiles(&[(0, MB, 0.0), (1, MB, 0.0), (2, MB, 0.0)]);
        let plan = assign_cores(&cluster, &current, &[8, 8, 8], &prof, f64::MAX).unwrap();
        assert!(plan.migration_cost < 1e-9);
        assert_eq!(plan.assignment.totals(), vec![8, 8, 8]);
        assert!(plan.assignment.respects_capacity(&cluster));
    }
}
