//! The CPU-to-executor assignment matrix `X`.
//!
//! `X` is an `m × n` matrix (executors × nodes): `x_ij` counts the cores
//! of node `i` assigned to executor `j`. Constraints (paper Equation 2):
//!
//! * (a) capacity: `Σ_j x_ij ≤ c_i` for every node `i`;
//! * (b) allocation: `X_j = Σ_i x_ij ≥ k_j` for every executor `j`;
//! * (c) locality: data-intensive executors only hold cores on their
//!   local node.

use elasticutor_core::ids::NodeId;

/// Static description of the cluster's compute resources.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    /// `c_i` — cores per node.
    cores_per_node: Vec<u32>,
}

impl ClusterSpec {
    /// A cluster of `nodes` machines with `cores` CPU cores each (the
    /// paper's testbed is 32 × 8).
    pub fn uniform(nodes: u32, cores: u32) -> Self {
        assert!(nodes > 0 && cores > 0, "cluster must be non-empty");
        Self {
            cores_per_node: vec![cores; nodes as usize],
        }
    }

    /// A heterogeneous cluster.
    pub fn new(cores_per_node: Vec<u32>) -> Self {
        assert!(!cores_per_node.is_empty(), "cluster must be non-empty");
        assert!(
            cores_per_node.iter().all(|&c| c > 0),
            "every node needs at least one core"
        );
        Self { cores_per_node }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.cores_per_node.len()
    }

    /// Cores on node `i`.
    pub fn cores_of(&self, node: NodeId) -> u32 {
        self.cores_per_node[node.index()]
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> u32 {
        self.cores_per_node.iter().sum()
    }
}

/// One entry of an assignment diff: executor `executor` gains (`delta >
/// 0`) or loses (`delta < 0`) `|delta|` cores on node `node`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreDelta {
    /// Affected executor (dense index, same order as the measurement
    /// vector handed to the scheduler).
    pub executor: usize,
    /// Node on which cores are gained or lost.
    pub node: NodeId,
    /// Signed core-count change.
    pub delta: i64,
}

/// The assignment matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// `x[j][i]` — cores of node `i` held by executor `j`.
    x: Vec<Vec<u32>>,
    /// Cached per-node usage `Σ_j x_ij`.
    node_used: Vec<u32>,
}

impl Assignment {
    /// An empty assignment for `executors` executors over `nodes` nodes.
    pub fn empty(executors: usize, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self {
            x: vec![vec![0; nodes]; executors],
            node_used: vec![0; nodes],
        }
    }

    /// Builds an assignment from an explicit matrix (`x[j][i]`).
    pub fn from_matrix(x: Vec<Vec<u32>>) -> Self {
        assert!(!x.is_empty(), "need at least one executor");
        let nodes = x[0].len();
        assert!(x.iter().all(|row| row.len() == nodes), "ragged matrix");
        let mut node_used = vec![0u32; nodes];
        for row in &x {
            for (i, &c) in row.iter().enumerate() {
                node_used[i] += c;
            }
        }
        Self { x, node_used }
    }

    /// Number of executors (`m`).
    pub fn num_executors(&self) -> usize {
        self.x.len()
    }

    /// Number of nodes (`n`).
    pub fn num_nodes(&self) -> usize {
        self.node_used.len()
    }

    /// `x_ij` — cores of node `i` held by executor `j`.
    #[inline]
    pub fn on_node(&self, executor: usize, node: NodeId) -> u32 {
        self.x[executor][node.index()]
    }

    /// `X_j` — total cores held by executor `j`.
    #[inline]
    pub fn total_of(&self, executor: usize) -> u32 {
        self.x[executor].iter().sum()
    }

    /// Cores of node `i` currently in use across all executors.
    pub fn used_on_node(&self, node: NodeId) -> u32 {
        self.node_used[node.index()]
    }

    /// Free cores on node `i` given the cluster spec.
    pub fn free_on_node(&self, node: NodeId, cluster: &ClusterSpec) -> u32 {
        cluster
            .cores_of(node)
            .saturating_sub(self.used_on_node(node))
    }

    /// Grants one core of `node` to `executor`. Panics if the node has no
    /// free core under `cluster`.
    pub fn grant(&mut self, executor: usize, node: NodeId, cluster: &ClusterSpec) {
        assert!(
            self.free_on_node(node, cluster) > 0,
            "no free core on {node}"
        );
        self.x[executor][node.index()] += 1;
        self.node_used[node.index()] += 1;
    }

    /// Revokes one core of `node` from `executor`. Panics if it holds none
    /// there.
    pub fn revoke(&mut self, executor: usize, node: NodeId) {
        assert!(
            self.x[executor][node.index()] > 0,
            "executor {executor} holds no core on {node}"
        );
        self.x[executor][node.index()] -= 1;
        self.node_used[node.index()] -= 1;
    }

    /// Validates capacity constraints against `cluster`.
    pub fn respects_capacity(&self, cluster: &ClusterSpec) -> bool {
        self.node_used.len() == cluster.num_nodes()
            && self
                .node_used
                .iter()
                .enumerate()
                .all(|(i, &used)| used <= cluster.cores_of(NodeId::from_index(i)))
    }

    /// The per-executor totals `X_j`.
    pub fn totals(&self) -> Vec<u32> {
        (0..self.num_executors())
            .map(|j| self.total_of(j))
            .collect()
    }

    /// The nodes on which `executor` holds at least one core.
    pub fn nodes_of(&self, executor: usize) -> Vec<NodeId> {
        self.x[executor]
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Computes the per-(executor, node) deltas needed to go from `self`
    /// to `target`. Deltas are ordered: revocations first, then grants, so
    /// applying them in order never exceeds node capacity.
    pub fn diff(&self, target: &Assignment) -> Vec<CoreDelta> {
        assert_eq!(self.num_executors(), target.num_executors());
        assert_eq!(self.num_nodes(), target.num_nodes());
        let mut revokes = Vec::new();
        let mut grants = Vec::new();
        for j in 0..self.num_executors() {
            for i in 0..self.num_nodes() {
                let node = NodeId::from_index(i);
                let before = i64::from(self.x[j][i]);
                let after = i64::from(target.x[j][i]);
                match after - before {
                    0 => {}
                    d if d < 0 => revokes.push(CoreDelta {
                        executor: j,
                        node,
                        delta: d,
                    }),
                    d => grants.push(CoreDelta {
                        executor: j,
                        node,
                        delta: d,
                    }),
                }
            }
        }
        revokes.extend(grants);
        revokes
    }

    /// The underlying matrix (`[executor][node]`).
    pub fn matrix(&self) -> &[Vec<u32>] {
        &self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cluster() {
        let c = ClusterSpec::uniform(32, 8);
        assert_eq!(c.num_nodes(), 32);
        assert_eq!(c.total_cores(), 256);
        assert_eq!(c.cores_of(NodeId(5)), 8);
    }

    #[test]
    fn grant_revoke_tracks_usage() {
        let cluster = ClusterSpec::uniform(2, 2);
        let mut a = Assignment::empty(2, 2);
        a.grant(0, NodeId(0), &cluster);
        a.grant(0, NodeId(0), &cluster);
        a.grant(1, NodeId(1), &cluster);
        assert_eq!(a.total_of(0), 2);
        assert_eq!(a.total_of(1), 1);
        assert_eq!(a.used_on_node(NodeId(0)), 2);
        assert_eq!(a.free_on_node(NodeId(0), &cluster), 0);
        assert!(a.respects_capacity(&cluster));
        a.revoke(0, NodeId(0));
        assert_eq!(a.free_on_node(NodeId(0), &cluster), 1);
    }

    #[test]
    #[should_panic(expected = "no free core")]
    fn grant_over_capacity_panics() {
        let cluster = ClusterSpec::uniform(1, 1);
        let mut a = Assignment::empty(1, 1);
        a.grant(0, NodeId(0), &cluster);
        a.grant(0, NodeId(0), &cluster);
    }

    #[test]
    #[should_panic(expected = "holds no core")]
    fn revoke_absent_panics() {
        let mut a = Assignment::empty(1, 1);
        a.revoke(0, NodeId(0));
    }

    #[test]
    fn from_matrix_and_accessors() {
        let a = Assignment::from_matrix(vec![vec![2, 0], vec![1, 3]]);
        assert_eq!(a.total_of(0), 2);
        assert_eq!(a.total_of(1), 4);
        assert_eq!(a.on_node(1, NodeId(1)), 3);
        assert_eq!(a.used_on_node(NodeId(0)), 3);
        assert_eq!(a.nodes_of(0), vec![NodeId(0)]);
        assert_eq!(a.nodes_of(1), vec![NodeId(0), NodeId(1)]);
        assert_eq!(a.totals(), vec![2, 4]);
    }

    #[test]
    fn diff_orders_revocations_first() {
        let before = Assignment::from_matrix(vec![vec![2, 0], vec![0, 2]]);
        let after = Assignment::from_matrix(vec![vec![1, 1], vec![1, 1]]);
        let deltas = before.diff(&after);
        // Two revokes then two grants.
        assert_eq!(deltas.len(), 4);
        assert!(deltas[0].delta < 0 && deltas[1].delta < 0);
        assert!(deltas[2].delta > 0 && deltas[3].delta > 0);
        let net: i64 = deltas.iter().map(|d| d.delta).sum();
        assert_eq!(net, 0);
    }

    #[test]
    fn diff_of_identical_is_empty() {
        let a = Assignment::from_matrix(vec![vec![1, 2]]);
        assert!(a.diff(&a.clone()).is_empty());
    }
}
