//! # elasticutor-scheduler
//!
//! The model-based dynamic scheduler of Elasticutor (paper §4).
//!
//! Once the queueing model ([`elasticutor_queueing`]) decides *how many*
//! cores each elastic executor needs, the scheduler decides *which
//! physical cores*: it transitions the cluster-wide CPU-to-executor
//! assignment `X` (a node × executor matrix) to satisfy the new allocation
//! `k` while
//!
//! * minimizing the **state-migration cost** of the transition
//!   (`C(X | X̃)`, proportional to state bytes crossing the network), and
//! * constraining **computation locality**: executors whose per-core data
//!   rate exceeds a threshold `φ` only accept cores on their local node,
//!   bounding future remote-data-transfer cost.
//!
//! The underlying optimization is NP-hard (reduction from multiprocessor
//! scheduling), so the paper's Algorithm 1 greedily reassigns one core at
//! a time; on infeasibility the caller doubles `φ` and retries — both
//! implemented here.
//!
//! Modules:
//! * [`assignment`] — the `X` matrix with capacity accounting and diffs.
//! * [`cost`] — the migration-cost model: `C(X|X̃)`, `C⁺_ij`, `C⁻_ij`.
//! * [`algorithm`] — Algorithm 1 (greedy dynamic allocation).
//! * [`scheduler`] — the full control loop: measurements → queueing model
//!   → allocation → assignment (with φ doubling), plus the *naive-EC*
//!   policy used as an ablation baseline in the paper's §5.4.

#![warn(missing_docs)]

pub mod algorithm;
pub mod assignment;
pub mod cost;
pub mod scheduler;

pub use algorithm::{assign_cores, AssignError, AssignmentPlan};
pub use assignment::{Assignment, ClusterSpec, CoreDelta};
pub use cost::{allocation_cost, deallocation_cost, transition_cost};
pub use scheduler::{DynamicScheduler, ExecutorMeasurement, SchedulerDecision, SchedulerPolicy};
