//! Greedy model-based core allocation (paper §4.1).
//!
//! Given the Jackson model, a latency target `T_max`, and a core budget,
//! find an allocation `k` such that `E[T](k) ≤ T_max` while minimizing
//! `Σ k_j`:
//!
//! 1. initialize every `k_j = ⌊λ_j/μ_j⌋ + 1` (the minimum for stability);
//! 2. repeatedly grant one more core to the executor whose increment
//!    decreases `E[T]` the most;
//! 3. stop when `E[T] ≤ T_max` or the budget is exhausted.
//!
//! Because each station's `E[T_j](k_j)` is convex and decreasing in `k_j`,
//! this greedy procedure is optimal (Fu et al., *DRS: Dynamic Resource
//! Scheduling for Real-Time Analytics over Fast Streams*, ICDCS 2015 —
//! reference \[15\] of the paper).

use crate::jackson::JacksonNetwork;

/// Inputs to the allocator.
#[derive(Clone, Debug)]
pub struct AllocationRequest<'a> {
    /// The performance model built from current measurements.
    pub network: &'a JacksonNetwork,
    /// Latency target `T_max` in seconds.
    pub latency_target: f64,
    /// Total cores available in the cluster.
    pub available_cores: u32,
}

/// Result of an allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct AllocationOutcome {
    /// Cores granted to each executor (same order as the network's loads).
    pub cores: Vec<u32>,
    /// Modeled `E[T]` under `cores`, in seconds.
    pub expected_latency: f64,
    /// Whether `expected_latency ≤ latency_target`.
    pub meets_target: bool,
    /// Whether even stability (`k_j ≥ ⌊λ_j/μ_j⌋+1` for all j) could not be
    /// afforded within the budget. When true, `cores` holds a best-effort
    /// proportional allocation and `expected_latency` is infinite.
    pub saturated: bool,
}

impl AllocationOutcome {
    /// Total cores granted.
    pub fn total_cores(&self) -> u32 {
        self.cores.iter().sum()
    }
}

/// Runs the greedy allocation.
pub fn allocate(req: &AllocationRequest<'_>) -> AllocationOutcome {
    let net = req.network;
    let m = net.len();
    assert!(
        req.available_cores as usize >= m || m == 0 || req.available_cores > 0,
        "need at least one core"
    );
    assert!(req.latency_target > 0.0, "latency target must be positive");

    // Step 1: stability minimum.
    let mut cores: Vec<u32> = net.loads().iter().map(|l| l.min_cores()).collect();
    let mut total: u64 = cores.iter().map(|&c| u64::from(c)).sum();

    if total > u64::from(req.available_cores) {
        // The workload exceeds cluster capacity: no stable allocation
        // exists. Distribute the budget proportionally to demand as a
        // best effort (every executor still gets ≥ 1 core).
        let budget = req.available_cores.max(m as u32);
        let cores = proportional_fallback(net, budget);
        return AllocationOutcome {
            expected_latency: f64::INFINITY,
            meets_target: false,
            saturated: true,
            cores,
        };
    }

    // Step 2: greedy refinement.
    let mut latency = net.expected_latency(&cores);
    while latency > req.latency_target && total < u64::from(req.available_cores) {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..m {
            let gain = net.marginal_gain(&cores, j);
            match best {
                None => best = Some((j, gain)),
                Some((_, g)) if gain > g => best = Some((j, gain)),
                _ => {}
            }
        }
        let Some((j, gain)) = best else { break };
        if gain <= 0.0 {
            break; // no core placement helps (latency floor reached)
        }
        cores[j] += 1;
        total += 1;
        latency = net.expected_latency(&cores);
    }

    AllocationOutcome {
        meets_target: latency <= req.latency_target,
        expected_latency: latency,
        saturated: false,
        cores,
    }
}

/// Proportional best-effort split used when stability is unaffordable:
/// every executor gets one core, and the remainder goes to executors in
/// proportion to their offered load `λ_j/μ_j` (largest remainders first).
fn proportional_fallback(net: &JacksonNetwork, budget: u32) -> Vec<u32> {
    let m = net.len();
    let mut cores = vec![1u32; m];
    let mut remaining = budget.saturating_sub(m as u32);
    if remaining == 0 {
        return cores;
    }
    let demand: Vec<f64> = net.loads().iter().map(|l| l.lambda / l.mu).collect();
    let total_demand: f64 = demand.iter().sum();
    if total_demand <= 0.0 {
        return cores;
    }
    // Integer shares by largest remainder.
    let shares: Vec<f64> = demand
        .iter()
        .map(|d| d / total_demand * f64::from(remaining))
        .collect();
    let mut order: Vec<usize> = (0..m).collect();
    for (j, share) in shares.iter().enumerate() {
        let whole = share.floor() as u32;
        let grant = whole.min(remaining);
        cores[j] += grant;
        remaining -= grant;
    }
    order.sort_by(|&a, &b| {
        let fa = shares[a] - shares[a].floor();
        let fb = shares[b] - shares[b].floor();
        fb.partial_cmp(&fa).unwrap()
    });
    let mut idx = 0;
    while remaining > 0 {
        cores[order[idx % m]] += 1;
        remaining -= 1;
        idx += 1;
    }
    cores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jackson::ExecutorLoad;

    fn net(loads: &[(f64, f64)], lambda0: f64) -> JacksonNetwork {
        JacksonNetwork::new(
            lambda0,
            loads
                .iter()
                .map(|&(l, m)| ExecutorLoad::new(l, m))
                .collect(),
        )
    }

    #[test]
    fn grants_stability_minimum_first() {
        let n = net(&[(10.0, 3.0), (1.0, 3.0)], 10.0);
        let out = allocate(&AllocationRequest {
            network: &n,
            latency_target: 1e9, // trivially met
            available_cores: 64,
        });
        assert_eq!(out.cores, vec![4, 1]);
        assert!(out.meets_target);
        assert!(!out.saturated);
    }

    #[test]
    fn adds_cores_until_target() {
        let n = net(&[(95.0, 100.0)], 95.0);
        // One core: M/M/1 at ρ=0.95 → E[T] = 1/(100-95) = 0.2 s. Target
        // 15 ms needs more cores.
        let out = allocate(&AllocationRequest {
            network: &n,
            latency_target: 0.015,
            available_cores: 16,
        });
        assert!(out.meets_target, "latency {}", out.expected_latency);
        assert!(out.cores[0] >= 2);
        assert!(out.expected_latency <= 0.015);
        // Minimality: one fewer core must violate the target.
        let mut fewer = out.cores.clone();
        fewer[0] -= 1;
        if fewer[0] >= 1 {
            assert!(n.expected_latency(&fewer) > 0.015);
        }
    }

    #[test]
    fn greedy_matches_exhaustive_small() {
        // Two stations, small budget: compare against brute force.
        let n = net(&[(9.0, 2.0), (4.0, 2.0)], 9.0);
        let budget = 12u32;
        let target = 0.9;
        let out = allocate(&AllocationRequest {
            network: &n,
            latency_target: target,
            available_cores: budget,
        });
        // Brute force: the minimum total cores achieving E[T] <= target.
        let mut best_total = u32::MAX;
        for k1 in 1..=budget {
            for k2 in 1..=budget.saturating_sub(k1) {
                if n.expected_latency(&[k1, k2]) <= target {
                    best_total = best_total.min(k1 + k2);
                }
            }
        }
        assert!(out.meets_target);
        assert_eq!(out.total_cores(), best_total, "greedy must be optimal");
    }

    #[test]
    fn budget_exhaustion_reports_miss() {
        let n = net(&[(99.0, 100.0)], 99.0);
        let out = allocate(&AllocationRequest {
            network: &n,
            latency_target: 1e-6, // unreachable
            available_cores: 4,
        });
        assert!(!out.meets_target);
        assert_eq!(out.total_cores(), 4);
        assert!(out.expected_latency.is_finite());
    }

    #[test]
    fn saturation_fallback_is_proportional() {
        // Demands 10 and 30 cores; only 8 available.
        let n = net(&[(10.0, 1.0), (30.0, 1.0)], 10.0);
        let out = allocate(&AllocationRequest {
            network: &n,
            latency_target: 1.0,
            available_cores: 8,
        });
        assert!(out.saturated);
        assert!(!out.meets_target);
        assert_eq!(out.total_cores(), 8);
        assert!(out.cores[1] > out.cores[0], "bigger demand gets more cores");
        assert!(out.cores.iter().all(|&c| c >= 1));
    }

    #[test]
    fn latency_floor_stops_early() {
        // Target below the service-time floor 1/μ: the allocator must stop
        // once marginal gains vanish, not burn the whole budget.
        let n = net(&[(1.0, 10.0)], 1.0);
        let out = allocate(&AllocationRequest {
            network: &n,
            latency_target: 0.01, // < 1/μ = 0.1
            available_cores: 1000,
        });
        assert!(!out.meets_target);
        assert!(
            out.total_cores() < 100,
            "should stop near the floor, used {}",
            out.total_cores()
        );
    }

    #[test]
    fn idle_executors_get_one_core() {
        let n = net(&[(0.0, 10.0), (5.0, 10.0)], 5.0);
        let out = allocate(&AllocationRequest {
            network: &n,
            latency_target: 1.0,
            available_cores: 8,
        });
        assert_eq!(out.cores[0], 1);
    }

    #[test]
    fn more_budget_never_hurts() {
        let n = net(&[(50.0, 10.0), (20.0, 10.0)], 50.0);
        let tight = allocate(&AllocationRequest {
            network: &n,
            latency_target: 0.11,
            available_cores: 9,
        });
        let loose = allocate(&AllocationRequest {
            network: &n,
            latency_target: 0.11,
            available_cores: 32,
        });
        assert!(loose.expected_latency <= tight.expected_latency + 1e-12);
    }
}
