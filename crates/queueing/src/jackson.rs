//! The Jackson-network latency model (paper Equation 1).
//!
//! Each elastic executor `j` is an M/M/k_j station. Given measured
//! per-executor arrival rates `λ_j`, per-core service rates `μ_j`, and the
//! external input rate `λ0`, the expected end-to-end latency under a core
//! allocation `k` is
//!
//! ```text
//! E[T](k) = (1/λ0) Σ_j λ_j E[T_j](k_j).
//! ```
//!
//! The weights `λ_j/λ0` are the expected number of visits a logical input
//! makes to station `j` (visit ratios), so the sum is the expected total
//! time an input spends across stations — Jackson's theorem makes each
//! station's sojourn computable in isolation.

use elasticutor_core::topology::Topology;

use crate::mmk;

/// Measured load of one executor, the model's per-station input.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutorLoad {
    /// Arrival rate into this executor, tuples per second.
    pub lambda: f64,
    /// Per-core service rate, tuples per second (1 / mean CPU cost).
    pub mu: f64,
}

impl ExecutorLoad {
    /// Creates a load observation.
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        assert!(mu > 0.0, "mu must be positive");
        Self { lambda, mu }
    }

    /// Minimum cores for stability at this load.
    pub fn min_cores(&self) -> u32 {
        mmk::min_stable_servers(self.lambda, self.mu)
    }
}

/// The Jackson network over a set of executors.
#[derive(Clone, Debug)]
pub struct JacksonNetwork {
    /// External arrival rate λ0 (tuples/s into the topology's sources).
    lambda0: f64,
    /// Per-executor measured loads.
    loads: Vec<ExecutorLoad>,
}

impl JacksonNetwork {
    /// Builds the model from the external input rate and per-executor
    /// measurements.
    pub fn new(lambda0: f64, loads: Vec<ExecutorLoad>) -> Self {
        assert!(lambda0 > 0.0, "lambda0 must be positive");
        assert!(!loads.is_empty(), "need at least one executor");
        Self { lambda0, loads }
    }

    /// Number of stations (executors).
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether the network has no stations.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Per-executor loads.
    pub fn loads(&self) -> &[ExecutorLoad] {
        &self.loads
    }

    /// External arrival rate λ0.
    pub fn lambda0(&self) -> f64 {
        self.lambda0
    }

    /// The expected end-to-end latency `E[T](k)` in seconds, or infinity
    /// if any station is unstable under `k`.
    ///
    /// Panics if `k.len() != self.len()` or any `k_j == 0`.
    pub fn expected_latency(&self, k: &[u32]) -> f64 {
        assert_eq!(k.len(), self.loads.len(), "one core count per executor");
        let mut total = 0.0;
        for (load, &kj) in self.loads.iter().zip(k) {
            if load.lambda == 0.0 {
                continue; // an idle station contributes nothing
            }
            let tj = mmk::expected_sojourn(load.lambda, load.mu, kj);
            if tj.is_infinite() {
                return f64::INFINITY;
            }
            total += load.lambda * tj;
        }
        total / self.lambda0
    }

    /// The marginal latency improvement of adding one core to station `j`:
    /// `E[T](k) − E[T](k + e_j)` (non-negative for stable inputs).
    pub fn marginal_gain(&self, k: &[u32], j: usize) -> f64 {
        let load = &self.loads[j];
        if load.lambda == 0.0 {
            return 0.0;
        }
        let before = mmk::expected_sojourn(load.lambda, load.mu, k[j]);
        let after = mmk::expected_sojourn(load.lambda, load.mu, k[j] + 1);
        if before.is_infinite() {
            return f64::INFINITY;
        }
        load.lambda * (before - after) / self.lambda0
    }

    /// Minimum total cores for stability: `Σ_j (⌊λ_j/μ_j⌋ + 1)`.
    pub fn min_total_cores(&self) -> u64 {
        self.loads.iter().map(|l| u64::from(l.min_cores())).sum()
    }
}

/// Propagates source rates through a topology to per-operator arrival
/// rates using operator selectivities: `rate(op) = Σ_upstream rate(u) ·
/// selectivity(u)`, sources seeded from `source_rates` (tuples/s).
///
/// Returns one rate per operator, indexed by `OperatorId`. This is how
/// engines seed the model before per-executor measurements exist, and how
/// tests validate measured rates.
pub fn propagate_rates(topology: &Topology, source_rates: &[(usize, f64)]) -> Vec<f64> {
    let n = topology.operators().len();
    let mut rates = vec![0.0; n];
    for &(op, rate) in source_rates {
        assert!(op < n, "unknown source operator index {op}");
        rates[op] = rate;
    }
    for &op in topology.topo_order() {
        let out = rates[op.index()] * topology.operator(op).unwrap().selectivity;
        for &down in topology.downstream(op) {
            rates[down.index()] += out;
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticutor_core::topology::TopologyBuilder;

    #[test]
    fn single_station_reduces_to_mmk() {
        let net = JacksonNetwork::new(10.0, vec![ExecutorLoad::new(10.0, 4.0)]);
        let t = net.expected_latency(&[4]);
        let expect = mmk::expected_sojourn(10.0, 4.0, 4);
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn visit_ratios_weight_stations() {
        // λ0 = 10; station A sees all tuples, station B sees double
        // (selectivity 2 upstream) → B's sojourn counts twice per input.
        let a = ExecutorLoad::new(10.0, 100.0);
        let b = ExecutorLoad::new(20.0, 100.0);
        let net = JacksonNetwork::new(10.0, vec![a, b]);
        let t = net.expected_latency(&[1, 1]);
        let ta = mmk::expected_sojourn(10.0, 100.0, 1);
        let tb = mmk::expected_sojourn(20.0, 100.0, 1);
        assert!((t - (ta + 2.0 * tb)).abs() < 1e-12);
    }

    #[test]
    fn unstable_station_dominates() {
        let net = JacksonNetwork::new(
            10.0,
            vec![ExecutorLoad::new(10.0, 100.0), ExecutorLoad::new(10.0, 1.0)],
        );
        assert!(net.expected_latency(&[1, 1]).is_infinite());
        assert!(net.expected_latency(&[1, 11]).is_finite());
    }

    #[test]
    fn idle_station_contributes_nothing() {
        let net = JacksonNetwork::new(
            5.0,
            vec![ExecutorLoad::new(5.0, 10.0), ExecutorLoad::new(0.0, 10.0)],
        );
        let with_idle = net.expected_latency(&[1, 1]);
        let solo =
            JacksonNetwork::new(5.0, vec![ExecutorLoad::new(5.0, 10.0)]).expected_latency(&[1]);
        assert!((with_idle - solo).abs() < 1e-12);
    }

    #[test]
    fn marginal_gain_positive_and_diminishing() {
        let net = JacksonNetwork::new(10.0, vec![ExecutorLoad::new(10.0, 3.0)]);
        let k0 = net.loads()[0].min_cores();
        let g1 = net.marginal_gain(&[k0], 0);
        let g2 = net.marginal_gain(&[k0 + 1], 0);
        assert!(g1 > 0.0);
        assert!(g2 > 0.0);
        assert!(g2 < g1, "marginal gains must diminish: {g1} then {g2}");
    }

    #[test]
    fn marginal_gain_of_unstable_is_infinite() {
        let net = JacksonNetwork::new(10.0, vec![ExecutorLoad::new(10.0, 1.0)]);
        assert!(net.marginal_gain(&[1], 0).is_infinite());
    }

    #[test]
    fn min_total_cores_sums_stations() {
        let net = JacksonNetwork::new(
            10.0,
            vec![ExecutorLoad::new(10.0, 3.0), ExecutorLoad::new(2.0, 3.0)],
        );
        assert_eq!(net.min_total_cores(), 4 + 1);
    }

    #[test]
    fn rate_propagation_through_fanout() {
        let mut b = TopologyBuilder::new();
        let src = b.source("src", 1);
        let tx = b.transform("tx", 4, 8);
        b.key_edge(src, tx);
        b.with_selectivity(tx, 11.0);
        let s1 = b.transform("s1", 2, 8);
        let s2 = b.transform("s2", 2, 8);
        b.key_edge(tx, s1);
        b.key_edge(tx, s2);
        let t = b.build().unwrap();
        let rates = propagate_rates(&t, &[(src.index(), 1000.0)]);
        assert!((rates[src.index()] - 1000.0).abs() < 1e-9);
        assert!((rates[tx.index()] - 1000.0).abs() < 1e-9);
        assert!((rates[s1.index()] - 11_000.0).abs() < 1e-9);
        assert!((rates[s2.index()] - 11_000.0).abs() < 1e-9);
    }

    #[test]
    fn rate_propagation_diamond_sums() {
        let mut b = TopologyBuilder::new();
        let src = b.source("src", 1);
        let l = b.transform("l", 1, 1);
        let r = b.transform("r", 1, 1);
        let sink = b.transform("sink", 1, 1);
        b.key_edge(src, l);
        b.key_edge(src, r);
        b.key_edge(l, sink);
        b.key_edge(r, sink);
        let t = b.build().unwrap();
        let rates = propagate_rates(&t, &[(src.index(), 100.0)]);
        assert!((rates[sink.index()] - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one core count per executor")]
    fn mismatched_allocation_panics() {
        let net = JacksonNetwork::new(1.0, vec![ExecutorLoad::new(1.0, 2.0)]);
        net.expected_latency(&[1, 1]);
    }
}
