//! M/M/k queue formulas with numerically stable evaluation.
//!
//! For an M/M/k queue with arrival rate `λ`, per-server service rate `μ`,
//! and `k` servers, the offered load is `a = λ/μ` and the utilization is
//! `ρ = a/k`. The queue is stable iff `ρ < 1`.
//!
//! The probability an arriving job waits (Erlang-C):
//!
//! ```text
//! C(k, a) = (a^k / k!) / ((1-ρ) Σ_{i<k} a^i/i! + a^k/k!)
//! ```
//!
//! computed iteratively to avoid overflowing factorials, and the expected
//! waiting and sojourn times:
//!
//! ```text
//! E[W] = C(k, a) / (kμ - λ),      E[T] = E[W] + 1/μ.
//! ```

/// Server utilization `ρ = λ / (kμ)`.
///
/// Panics if `k == 0` or `μ <= 0`.
#[inline]
pub fn utilization(lambda: f64, mu: f64, k: u32) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(mu > 0.0, "mu must be positive");
    assert!(lambda >= 0.0, "lambda must be non-negative");
    lambda / (mu * f64::from(k))
}

/// The minimum number of servers for stability: `⌊λ/μ⌋ + 1`.
///
/// This is the initialization of the paper's greedy allocation. Always at
/// least 1 (an idle executor still occupies one core).
#[inline]
pub fn min_stable_servers(lambda: f64, mu: f64) -> u32 {
    assert!(mu > 0.0, "mu must be positive");
    assert!(lambda >= 0.0, "lambda must be non-negative");
    let floor = (lambda / mu).floor();
    // Guard absurd inputs rather than overflowing the cast.
    let clamped = floor.min(u32::MAX as f64 - 1.0);
    clamped as u32 + 1
}

/// Erlang-C: the probability that an arriving job must wait.
///
/// Returns 1.0 for unstable queues (`ρ >= 1`): every job waits and the
/// wait diverges. Numerically stable for large `k` via the recurrence
/// `term_i = term_{i-1} · a / i` evaluated in scaled form.
pub fn erlang_c(lambda: f64, mu: f64, k: u32) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(mu > 0.0, "mu must be positive");
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return 0.0;
    }
    let a = lambda / mu;
    let rho = a / f64::from(k);
    if rho >= 1.0 {
        return 1.0;
    }
    // Compute S = Σ_{i=0}^{k-1} a^i/i! and top = a^k/k! via the ratio
    // trick: maintain term = a^i/i! relative to term_0 = 1. For large a
    // the terms grow huge before shrinking, so work with the ratio
    // B = top / (top + (1-ρ)·S) rewritten via the inverse Erlang-B
    // recurrence, which is stable for all k:
    //   invB_0 = 1;  invB_i = 1 + (i / a) · invB_{i-1}
    // where B_k = a^k/k! / Σ_{i<=k} a^i/i! is Erlang-B. Then
    //   C = B_k / (1 - ρ (1 - B_k)).
    let mut inv_b = 1.0_f64;
    for i in 1..=k {
        inv_b = 1.0 + f64::from(i) / a * inv_b;
        if !inv_b.is_finite() {
            // a is tiny relative to k: blocking probability underflows.
            return 0.0;
        }
    }
    let b = 1.0 / inv_b;
    let c = b / (1.0 - rho * (1.0 - b));
    c.clamp(0.0, 1.0)
}

/// Expected waiting time in queue, `E[W]`, in the same time unit as
/// `1/λ`. Returns `f64::INFINITY` for unstable queues.
pub fn expected_wait(lambda: f64, mu: f64, k: u32) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(mu > 0.0, "mu must be positive");
    if lambda <= 0.0 {
        return 0.0;
    }
    let capacity = mu * f64::from(k);
    if lambda >= capacity {
        return f64::INFINITY;
    }
    erlang_c(lambda, mu, k) / (capacity - lambda)
}

/// Expected sojourn (processing) time `E[T] = E[W] + 1/μ`. Returns
/// `f64::INFINITY` for unstable queues.
pub fn expected_sojourn(lambda: f64, mu: f64, k: u32) -> f64 {
    let w = expected_wait(lambda, mu, k);
    if w.is_infinite() {
        return f64::INFINITY;
    }
    w + 1.0 / mu
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn mm1_matches_closed_form() {
        // For k = 1: C = ρ, E[W] = ρ / (μ - λ), E[T] = 1 / (μ - λ).
        let (lambda, mu) = (0.7, 1.0);
        assert!((erlang_c(lambda, mu, 1) - 0.7).abs() < EPS);
        assert!((expected_wait(lambda, mu, 1) - 0.7 / 0.3).abs() < 1e-6);
        assert!((expected_sojourn(lambda, mu, 1) - 1.0 / 0.3).abs() < 1e-6);
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic table value: a = 2 Erlangs, k = 3 servers → C ≈ 0.4444.
        let c = erlang_c(2.0, 1.0, 3);
        assert!((c - 4.0 / 9.0).abs() < 1e-6, "C = {c}");
    }

    #[test]
    fn erlang_c_bounds() {
        for &(l, m, k) in &[
            (0.5, 1.0, 1u32),
            (3.0, 1.0, 4),
            (10.0, 2.0, 6),
            (0.1, 5.0, 2),
        ] {
            let c = erlang_c(l, m, k);
            assert!((0.0..=1.0).contains(&c), "C({l},{m},{k}) = {c}");
        }
    }

    #[test]
    fn unstable_queue_diverges() {
        assert_eq!(erlang_c(2.0, 1.0, 2), 1.0);
        assert!(expected_wait(2.0, 1.0, 2).is_infinite());
        assert!(expected_sojourn(3.0, 1.0, 2).is_infinite());
    }

    #[test]
    fn zero_arrivals_zero_wait() {
        assert_eq!(erlang_c(0.0, 1.0, 4), 0.0);
        assert_eq!(expected_wait(0.0, 1.0, 4), 0.0);
        assert!((expected_sojourn(0.0, 1.0, 4) - 1.0).abs() < EPS);
    }

    #[test]
    fn wait_decreases_with_servers() {
        let (lambda, mu) = (7.3, 1.0);
        let mut prev = f64::INFINITY;
        for k in min_stable_servers(lambda, mu)..40 {
            let w = expected_wait(lambda, mu, k);
            assert!(w <= prev + EPS, "E[W] must be non-increasing in k");
            prev = w;
        }
        // And converges to zero.
        assert!(prev < 1e-6);
    }

    #[test]
    fn sojourn_approaches_service_time() {
        let (lambda, mu) = (10.0, 2.0);
        let t = expected_sojourn(lambda, mu, 64);
        assert!((t - 0.5).abs() < 1e-9, "E[T] → 1/μ as k → ∞, got {t}");
    }

    #[test]
    fn min_stable_servers_boundary() {
        assert_eq!(min_stable_servers(0.0, 1.0), 1);
        assert_eq!(min_stable_servers(0.9, 1.0), 1);
        assert_eq!(min_stable_servers(1.0, 1.0), 2);
        assert_eq!(min_stable_servers(7.99, 2.0), 4);
        assert_eq!(min_stable_servers(8.0, 2.0), 5);
        // Stability really holds at the returned k.
        for &(l, m) in &[(0.5, 1.0), (99.9, 1.0), (1234.5, 3.2)] {
            let k = min_stable_servers(l, m);
            assert!(utilization(l, m, k) < 1.0);
            if k > 1 {
                assert!(utilization(l, m, k - 1) >= 1.0);
            }
        }
    }

    #[test]
    fn large_k_is_stable_numerically() {
        // 256 servers at 80% utilization: must not overflow or NaN.
        let mu = 1000.0; // 1 ms service time
        let k = 256u32;
        let lambda = 0.8 * mu * f64::from(k);
        let c = erlang_c(lambda, mu, k);
        assert!(c.is_finite() && (0.0..=1.0).contains(&c));
        let w = expected_wait(lambda, mu, k);
        assert!(w.is_finite() && w >= 0.0);
    }

    #[test]
    fn tiny_load_many_servers_underflow_safe() {
        let c = erlang_c(1e-6, 1.0, 200);
        assert!((0.0..1e-12).contains(&c));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_servers_panics() {
        erlang_c(1.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "mu must be positive")]
    fn zero_mu_panics() {
        erlang_c(1.0, 0.0, 1);
    }
}
