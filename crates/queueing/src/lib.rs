//! # elasticutor-queueing
//!
//! The queueing-theoretic performance model behind Elasticutor's dynamic
//! scheduler (paper §4.1).
//!
//! The topology of `m` elastic executors is modeled as a **Jackson
//! network** in which executor `j` with `k_j` allocated cores is an
//! M/M/k_j queue. The expected end-to-end processing latency of the input
//! stream is
//!
//! ```text
//! E[T](k) = (1/λ0) · Σ_j λ_j · E[T_j](k_j)
//! ```
//!
//! where `λ0` is the external arrival rate, `λ_j` the arrival rate into
//! executor `j`, and `E[T_j](k_j)` the M/M/k sojourn time with per-core
//! service rate `μ_j`.
//!
//! Modules:
//! * [`mmk`] — numerically stable Erlang-C and M/M/k waiting/sojourn
//!   times.
//! * [`jackson`] — the network model: per-executor measurements, rate
//!   propagation through a topology, and `E[T](k)` evaluation.
//! * [`mod@allocate`] — the greedy core-allocation algorithm (minimize Σk_j
//!   subject to `E[T] ≤ T_max`), shown optimal in the DRS work the paper
//!   builds on.

#![warn(missing_docs)]

pub mod allocate;
pub mod jackson;
pub mod mmk;

pub use allocate::{allocate, AllocationOutcome, AllocationRequest};
pub use jackson::{propagate_rates, ExecutorLoad, JacksonNetwork};
pub use mmk::{erlang_c, expected_sojourn, expected_wait, min_stable_servers, utilization};
