//! Property-based tests for the queueing model.

use elasticutor_queueing::jackson::{ExecutorLoad, JacksonNetwork};
use elasticutor_queueing::{
    allocate, erlang_c, expected_sojourn, expected_wait, min_stable_servers, AllocationRequest,
};
use proptest::prelude::*;

proptest! {
    /// Erlang-C is a probability, monotonically non-increasing in k.
    #[test]
    fn erlang_c_probability_monotone(
        lambda in 0.01f64..500.0,
        mu in 0.01f64..100.0,
    ) {
        let k0 = min_stable_servers(lambda, mu);
        let mut prev = 1.0f64;
        for k in k0..k0 + 20 {
            let c = erlang_c(lambda, mu, k);
            prop_assert!((0.0..=1.0).contains(&c), "C = {c}");
            prop_assert!(c <= prev + 1e-9, "C must not increase in k");
            prev = c;
        }
    }

    /// E[W] is finite and non-increasing in k above the stability point;
    /// E[T] is bounded below by the service time 1/μ.
    #[test]
    fn waits_behave(
        lambda in 0.01f64..500.0,
        mu in 0.01f64..100.0,
    ) {
        let k0 = min_stable_servers(lambda, mu);
        let mut prev = f64::INFINITY;
        for k in k0..k0 + 20 {
            let w = expected_wait(lambda, mu, k);
            prop_assert!(w.is_finite() && w >= 0.0);
            prop_assert!(w <= prev + 1e-9);
            let t = expected_sojourn(lambda, mu, k);
            prop_assert!(t >= 1.0 / mu - 1e-12);
            prev = w;
        }
    }

    /// The allocator always returns at least the stability minimum when
    /// affordable, never exceeds the budget, and its reported latency
    /// matches re-evaluating the model.
    #[test]
    fn allocation_sound(
        loads in prop::collection::vec((0.0f64..50.0, 0.5f64..20.0), 1..8),
        target_ms in 1.0f64..1000.0,
        budget in 1u32..256,
    ) {
        let lambda0 = loads.iter().map(|l| l.0).sum::<f64>().max(0.1);
        let net = JacksonNetwork::new(
            lambda0,
            loads.iter().map(|&(l, m)| ExecutorLoad::new(l, m)).collect(),
        );
        let out = allocate(&AllocationRequest {
            network: &net,
            latency_target: target_ms / 1000.0,
            available_cores: budget,
        });
        prop_assert!(out.cores.iter().all(|&c| c >= 1));
        if !out.saturated {
            prop_assert!(u64::from(out.total_cores()) <= u64::from(budget));
            for (j, l) in net.loads().iter().enumerate() {
                prop_assert!(out.cores[j] >= l.min_cores());
            }
            let recheck = net.expected_latency(&out.cores);
            prop_assert!((recheck - out.expected_latency).abs() < 1e-9
                || (recheck.is_infinite() && out.expected_latency.is_infinite()));
            prop_assert_eq!(out.meets_target, out.expected_latency <= target_ms / 1000.0);
        }
    }
}
