//! # elasticutor-bench
//!
//! The experiment harness reproducing every table and figure of the
//! paper's evaluation (§5). Each `src/bin/figN_*.rs` /
//! `src/bin/tableN_*.rs` binary regenerates one result: it configures the
//! simulated cluster, runs every engine variant the figure compares,
//! and prints the same rows/series the paper reports.
//!
//! Conventions:
//! * experiments are deterministic (fixed seeds) — identical output on
//!   every run;
//! * `ELASTICUTOR_QUICK=1` shrinks durations/sweeps for smoke testing;
//! * passing `--csv` emits machine-readable CSV after the table.

#![warn(missing_docs)]

pub mod scaling;
pub mod sse_exp;

use std::fmt::Write as _;

/// Returns true when quick (smoke-test) mode is requested.
pub fn quick_mode() -> bool {
    std::env::var("ELASTICUTOR_QUICK").is_ok_and(|v| v == "1")
}

/// Returns true when `--csv` was passed.
pub fn csv_mode() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Hardware threads on this machine, for labelling bench artifacts —
/// `bench_diff` refuses to compare results that do not carry this so
/// numbers from different machine classes are never diffed blindly.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:>width$}", cell, width = widths[i]);
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table (and CSV when `--csv` was passed).
    pub fn print(&self) {
        print!("{}", self.render());
        if csv_mode() {
            println!("\n--- csv ---");
            print!("{}", self.to_csv());
        }
    }
}

/// Formats a tuples/s figure compactly (e.g. `196.8k`).
pub fn fmt_rate(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1_000.0 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Formats nanoseconds as adaptive ms/s text.
pub fn fmt_latency_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Formats a byte count (KB/MB).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1024 * 1024 * 1024 {
        format!("{:.2}GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1024 * 1024 {
        format!("{:.1}MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1024 {
        format!("{:.1}KB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// One second in simulated nanoseconds.
pub const SEC: u64 = 1_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["mode", "tput"]);
        t.row(vec!["static".into(), "121.6k".into()]);
        t.row(vec!["Elasticutor".into(), "196.8k".into()]);
        let s = t.render();
        assert!(s.contains("mode"));
        assert!(s.contains("Elasticutor"));
        let csv = t.to_csv();
        assert!(csv.starts_with("mode,tput\n"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_rate(1_500_000.0), "1.50M");
        assert_eq!(fmt_rate(42_000.0), "42.0k");
        assert_eq!(fmt_rate(12.0), "12");
        assert_eq!(fmt_latency_ns(2.5e9), "2.50s");
        assert_eq!(fmt_latency_ns(3.2e6), "3.2ms");
        assert_eq!(fmt_latency_ns(1_500.0), "1.5us");
        assert_eq!(fmt_latency_ns(999.0), "999ns");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
        assert_eq!(fmt_bytes(12), "12B");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
