use elasticutor_cluster::config::{ClusterConfig, EngineMode, ExperimentConfig};
use elasticutor_cluster::ClusterEngine;
use elasticutor_workload::MicroConfig;

fn main() {
    let sec = 1_000_000_000u64;
    // 8 nodes x 4 cores = 32 cores; ideal capacity at 1 ms/tuple = 32k/s.
    // Offered 27k/s (84%): EC sustains, static saturates its hottest
    // executor, RC sustains until repartition stalls eat its capacity.
    for mode in [
        EngineMode::Static,
        EngineMode::ResourceCentric,
        EngineMode::Elastic,
    ] {
        for omega in [0.0, 2.0, 16.0] {
            let micro = MicroConfig {
                rate: 24_000.0,
                omega,
                num_keys: 10_000,
                calculator_executors: 8,
                shards_per_executor: 64,
                generator_parallelism: 4,
                ..MicroConfig::default()
            };
            let mut cfg = ExperimentConfig::micro(mode, micro);
            cfg.cluster = ClusterConfig::small(8, 4);
            cfg.duration_ns = 40 * sec;
            cfg.warmup_ns = 10 * sec;
            let t0 = std::time::Instant::now();
            let r = ClusterEngine::new(cfg).run();
            println!(
                "{:12} omega={:5} tput={:8.0}/s lat_avg={:9.2}ms p99={:9.2}ms reassigns={:4} mig={:6}KB remote={:6}KB wall={:.1}s",
                r.mode, omega, r.throughput, r.latency.mean_ns()/1e6, r.latency.p99_ns()/1e6,
                r.reassignments.len(), r.state_migration_bytes/1024, r.remote_task_bytes/1024, t0.elapsed().as_secs_f64()
            );
        }
    }
}
