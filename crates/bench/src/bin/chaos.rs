//! Chaos suite for the crash-safe migration plane: kills a process at
//! every journal durability point mid-handshake and proves recovery,
//! then stresses the live plane with flash crowds, consumer stalls,
//! and Zipf skew under rescaling.
//!
//! **Kill matrix (two-process).** The parent spawns this same binary as
//! a child (`--child ADDR`), wires a migration link with recovery
//! journals on both sides, and arms exactly one fail point in the child
//! via `ELASTICUTOR_FAILPOINTS=<point>=kill`. The child is the victim
//! in every scenario — as migration *sender* it dies at each of the
//! four sender journal points (`migrate.snd.{offer,state,commit,ack}`),
//! as *receiver* at each of the four receiver points
//! (`migrate.rcv.{offer,commit,durable,ack}`) — plus one clean run.
//! After the abort the parent respawns the child with the same journal,
//! both sides run `recover()`, and the harness asserts the contested
//! shard is owned by **exactly one** process with its preloaded state
//! digest intact, then pushes a live burst through it gated on per-key
//! FIFO order and exact record conservation.
//!
//! **Live scenarios (single-process).** A 100× flash-crowd spike, a
//! periodically stalling bounded consumer, Zipf-skewed load across
//! scale-out/scale-in, and a multi-point probabilistic composition —
//! several `@<prob>` fail points armed at once (seeded, reproducible)
//! while a shard ping-pongs between two in-process endpoints — each
//! gated on FIFO + conservation, with p99/p999 latency recorded.
//!
//! Results go to `BENCH_chaos.json` (override with `--out`).
//! `ELASTICUTOR_QUICK=1` shrinks state sizes and record counts for CI.

use std::fmt::Write as _;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_bench::{fmt_latency_ns, hardware_threads, quick_mode, Table};
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_core::wire::{self, ByteReader, Checksum};
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{
    ElasticExecutor, ExecutorConfig, FifoChecker, LinkEvent, LiveDag, MigrationConfig,
    MigrationEndpoint, Operator, Record,
};
use elasticutor_sim::SimRng;
use elasticutor_state::{ShardSnapshot, StateHandle};
use elasticutor_workload::{SpikeProfile, StallSchedule, ZipfSampler};

/// Shards per executor; ownership starts split down the middle
/// (parent `0..32`, child `32..64`).
const Z: u32 = 64;
/// The contested shard when the child is the migration sender.
const SENDER_SHARD: u32 = 40;
/// The contested shard when the child is the migration receiver.
const RECEIVER_SHARD: u32 = 8;
/// Burst keys per contested shard (they hash to it).
const KEYS_PER_SHARD: usize = 4;
/// Preload keys live far above anything `keys_for_shard` scans to.
const PRELOAD_BASE: u64 = 1 << 40;

/// The large stratum of the payload mixture (shrunk in quick mode so
/// CI still streams multi-chunk STATE frames without the wall-clock).
fn large_value_len() -> usize {
    if quick_mode() {
        16 * 1024
    } else {
        256 * 1024
    }
}

/// Payload-size mixture for the kill matrix: mostly 16 B, a 4 KiB band,
/// and a 256 KiB spike every 16th — so every crash point is exercised
/// against snapshots and bursts whose frames span three orders of
/// magnitude.
fn preload_value_len(i: u64) -> usize {
    match i % 16 {
        0 => large_value_len(),
        1..=3 => 4 * 1024,
        _ => 16,
    }
}

/// The live burst carries the same mixture (sparser on the large
/// stratum: it rides inside record frames, not snapshot chunks).
fn burst_payload(round: u64) -> Bytes {
    let len = if round.is_multiple_of(128) {
        large_value_len()
    } else if round.is_multiple_of(16) {
        4 * 1024
    } else {
        16
    };
    Bytes::from(vec![0xE1; len])
}

fn preload_entries_count() -> usize {
    if quick_mode() {
        64
    } else {
        512
    }
}

fn burst_rounds() -> u64 {
    if quick_mode() {
        200
    } else {
        1_000
    }
}

/// Deterministic keys hashing to `shard` — identical in both processes.
fn keys_for_shard(shard: u32) -> Vec<Key> {
    (0u64..)
        .filter(|k| elasticutor_core::hash::key_to_shard(*k, Z) == shard)
        .take(KEYS_PER_SHARD)
        .map(Key)
        .collect()
}

fn counting_op(fifo: Arc<FifoChecker>) -> impl Operator {
    move |r: &Record, s: &StateHandle| {
        fifo.observe(r.key, r.seq);
        s.update(r.key, |old| {
            let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        Vec::new()
    }
}

fn executor(fifo: Arc<FifoChecker>) -> Arc<ElasticExecutor<impl Operator>> {
    Arc::new(ElasticExecutor::start(
        ExecutorConfig {
            num_shards: Z,
            initial_tasks: 2,
            ..ExecutorConfig::default()
        },
        counting_op(fifo),
    ))
}

fn link_config(journal: &Path) -> MigrationConfig {
    MigrationConfig::default()
        .with_offer_deadline(Duration::from_secs(10))
        .with_state_deadline(Duration::from_secs(30))
        .with_journal(journal)
}

fn preload(exec: &ElasticExecutor<impl Operator>, shard: u32) {
    for i in 0..preload_entries_count() as u64 {
        exec.state().put(
            ShardId(shard),
            Key(PRELOAD_BASE + i),
            Bytes::from(vec![0xC7; preload_value_len(i)]),
        );
    }
}

/// The contested shard's expected final state: the preload plus every
/// burst key counted `burst_rounds()` times.
fn expected_final(shard: u32) -> ShardSnapshot {
    let mut entries: Vec<(Key, Bytes)> = (0..preload_entries_count() as u64)
        .map(|i| {
            (
                Key(PRELOAD_BASE + i),
                Bytes::from(vec![0xC7; preload_value_len(i)]),
            )
        })
        .collect();
    entries.extend(
        keys_for_shard(shard)
            .into_iter()
            .map(|k| (k, Bytes::copy_from_slice(&burst_rounds().to_le_bytes()))),
    );
    entries.sort_by_key(|(k, _)| *k);
    ShardSnapshot {
        shard: ShardId(shard),
        entries,
    }
}

fn digest_of(snap: &ShardSnapshot) -> u64 {
    let mut c = Checksum::new();
    snap.fold_checksum(&mut c);
    c.finish()
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

// ---------------------------------------------------------------------------
// Cross-process report (APP payload), as in the migrate bench.
// ---------------------------------------------------------------------------

struct Report {
    fifo_violations: u64,
    processed: u64,
    /// (shard, state digest) per non-empty shard.
    shards: Vec<(u32, u64)>,
}

fn encode_report<O: Operator>(exec: &ElasticExecutor<O>, fifo: &FifoChecker) -> Vec<u8> {
    let mut out = Vec::new();
    wire::put_u64(&mut out, fifo.violation_count() as u64);
    wire::put_u64(&mut out, exec.processed_count());
    let shards: Vec<ShardSnapshot> = exec
        .state()
        .shards()
        .into_iter()
        .filter_map(|s| exec.state().snapshot_shard(s))
        .filter(|snap| !snap.is_empty())
        .collect();
    wire::put_u32(&mut out, shards.len() as u32);
    for snap in &shards {
        wire::put_u32(&mut out, snap.shard.0);
        wire::put_u64(&mut out, digest_of(snap));
    }
    out
}

fn decode_report(payload: &[u8]) -> Report {
    let mut r = ByteReader::new(payload);
    let fifo_violations = r.u64().expect("report");
    let processed = r.u64().expect("report");
    let n = r.u32().expect("report");
    let shards = (0..n)
        .map(|_| (r.u32().expect("report"), r.u64().expect("report")))
        .collect();
    Report {
        fifo_violations,
        processed,
        shards,
    }
}

fn request_report<O: Operator>(endpoint: &MigrationEndpoint<O>) -> Report {
    endpoint
        .send_app(b"report".to_vec())
        .expect("request report");
    let payload = endpoint
        .app_messages()
        .recv_timeout(Duration::from_secs(120))
        .expect("child report");
    decode_report(&payload)
}

fn wait_app<O: Operator>(endpoint: &MigrationEndpoint<O>, expect: &[u8]) {
    let msg = endpoint
        .app_messages()
        .recv_timeout(Duration::from_secs(120))
        .expect("peer app message");
    assert_eq!(msg.as_slice(), expect, "unexpected peer message");
}

// ---------------------------------------------------------------------------
// Child process.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Sender,
    Receiver,
}

struct ChildArgs {
    addr: String,
    mode: Mode,
    shard: u32,
    journal: PathBuf,
    recovered: bool,
}

fn child_main(args: ChildArgs) {
    let fifo = Arc::new(FifoChecker::new());
    let exec = executor(fifo.clone());
    let endpoint = MigrationEndpoint::connect_with(
        Arc::clone(&exec),
        args.addr.as_str(),
        link_config(&args.journal),
    )
    .expect("child connects to parent");

    if args.recovered {
        // Resolve the journal first — an in-doubt shard of ours must
        // settle (restore, adopt, or query the parent over this link)
        // before we blanket-delegate the parent's half around it.
        let report = endpoint.recover().expect("child recovery");
        let kept: Vec<ShardId> = report
            .adopted
            .iter()
            .chain(report.restored.iter())
            .copied()
            .collect();
        let delegate: Vec<ShardId> = (0..Z / 2)
            .map(ShardId)
            .filter(|s| !kept.contains(s))
            .collect();
        endpoint
            .delegate_shards(&delegate)
            .expect("child delegates after recovery");
        endpoint
            .send_app(b"recovered".to_vec())
            .expect("announce recovery");
    } else {
        endpoint
            .delegate_shards(&(0..Z / 2).map(ShardId).collect::<Vec<_>>())
            .expect("child delegates the parent's half");
        if args.mode == Mode::Sender {
            preload(&exec, args.shard);
        }
        endpoint
            .send_app(b"ready".to_vec())
            .expect("announce ready");
        if args.mode == Mode::Sender {
            // With a kill armed we abort somewhere inside; without one
            // (the clean scenario) the migration must succeed.
            endpoint
                .migrate_out(ShardId(args.shard))
                .expect("clean child migration");
            endpoint
                .send_app(b"migrated".to_vec())
                .expect("announce migration");
        }
        // Receiver mode: the inbound migration (and the armed kill)
        // runs on the endpoint's reader thread while we serve below.
    }

    loop {
        let msg = endpoint
            .app_messages()
            .recv_timeout(Duration::from_secs(120))
            .expect("parent command");
        match msg.as_slice() {
            b"report" => endpoint
                .send_app(encode_report(&exec, &fifo))
                .expect("send report"),
            b"bye" => break,
            other => panic!("unknown command {other:?}"),
        }
    }
    endpoint.close();
}

// ---------------------------------------------------------------------------
// Parent: one kill-matrix scenario.
// ---------------------------------------------------------------------------

struct KillScenario {
    name: &'static str,
    mode: Mode,
    /// Fail point armed (as `kill`) in the child; `None` = clean run.
    point: Option<&'static str>,
}

const KILL_MATRIX: [KillScenario; 9] = [
    KillScenario {
        name: "clean",
        mode: Mode::Sender,
        point: None,
    },
    KillScenario {
        name: "snd.offer",
        mode: Mode::Sender,
        point: Some("migrate.snd.offer"),
    },
    KillScenario {
        name: "snd.state",
        mode: Mode::Sender,
        point: Some("migrate.snd.state"),
    },
    KillScenario {
        name: "snd.commit",
        mode: Mode::Sender,
        point: Some("migrate.snd.commit"),
    },
    KillScenario {
        name: "snd.ack",
        mode: Mode::Sender,
        point: Some("migrate.snd.ack"),
    },
    KillScenario {
        name: "rcv.offer",
        mode: Mode::Receiver,
        point: Some("migrate.rcv.offer"),
    },
    KillScenario {
        name: "rcv.commit",
        mode: Mode::Receiver,
        point: Some("migrate.rcv.commit"),
    },
    KillScenario {
        name: "rcv.durable",
        mode: Mode::Receiver,
        point: Some("migrate.rcv.durable"),
    },
    KillScenario {
        name: "rcv.ack",
        mode: Mode::Receiver,
        point: Some("migrate.rcv.ack"),
    },
];

struct KillResult {
    name: &'static str,
    mode: &'static str,
    owner: &'static str,
    recovery_ms: u64,
    burst_records: u64,
}

fn spawn_child(
    exe: &Path,
    addr: &str,
    mode: Mode,
    shard: u32,
    journal: &Path,
    point: Option<&str>,
    recovered: bool,
) -> std::process::Child {
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--child")
        .arg(addr)
        .arg("--mode")
        .arg(match mode {
            Mode::Sender => "sender",
            Mode::Receiver => "receiver",
        })
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--journal")
        .arg(journal);
    if recovered {
        cmd.arg("--recovered");
    }
    // The fail point reaches the child only; never inherit one.
    match point {
        Some(p) => cmd.env("ELASTICUTOR_FAILPOINTS", format!("{p}=kill")),
        None => cmd.env_remove("ELASTICUTOR_FAILPOINTS"),
    };
    cmd.spawn().expect("spawn child process")
}

fn run_kill_scenario(sc: &KillScenario, dir: &Path) -> KillResult {
    let shard = match sc.mode {
        Mode::Sender => SENDER_SHARD,
        Mode::Receiver => RECEIVER_SHARD,
    };
    let parent_journal = dir.join(format!("{}-parent.journal", sc.name));
    let child_journal = dir.join(format!("{}-child.journal", sc.name));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let exe = std::env::current_exe().expect("own path");

    let mut child = spawn_child(&exe, &addr, sc.mode, shard, &child_journal, sc.point, false);
    let fifo = Arc::new(FifoChecker::new());
    let exec = executor(fifo.clone());
    let mut endpoint =
        MigrationEndpoint::accept_with(Arc::clone(&exec), &listener, link_config(&parent_journal))
            .expect("accept child");
    endpoint
        .delegate_shards(&(Z / 2..Z).map(ShardId).collect::<Vec<_>>())
        .expect("parent delegates the child's half");
    wait_app(&endpoint, b"ready");

    if sc.mode == Mode::Receiver {
        preload(&exec, shard);
        let res = endpoint.migrate_out(ShardId(shard));
        match (&sc.point, res) {
            (None, res) => {
                res.expect("clean migration");
            }
            // The armed kill makes any outcome short of success legal:
            // pre-commit deaths surface as a typed error (the shard was
            // restored locally), post-commit ones as `InDoubt` (parked
            // for `recover()`) — and for `rcv.ack` the ACK may even
            // have reached us first, a plain success.
            (Some(_), res) => {
                if let Err(e) = res {
                    eprintln!("parent: migrate_out under {} -> {e}", sc.name);
                }
            }
        }
    }

    let recovery_ms = if sc.point.is_some() {
        // The victim is dead or dying: the sender-mode kill fires
        // inside the child's own migrate_out, the receiver-mode one
        // inside the inbound path we just drove.
        let status = child.wait().expect("child exits");
        assert!(!status.success(), "{}: child should have died", sc.name);
        // Satellite contract: a dying link surfaces a typed Dead event
        // on the endpoint's control channel.
        let dead_seen = wait_until(Duration::from_secs(10), || {
            endpoint
                .events()
                .try_iter()
                .any(|e| matches!(e, LinkEvent::Dead { .. }))
        });
        assert!(dead_seen, "{}: no LinkEvent::Dead after kill", sc.name);
        let t0 = Instant::now();
        endpoint.close();
        child = spawn_child(&exe, &addr, sc.mode, shard, &child_journal, None, true);
        endpoint = MigrationEndpoint::accept_with(
            Arc::clone(&exec),
            &listener,
            link_config(&parent_journal),
        )
        .expect("accept recovered child");
        // Rebind the child's half to the fresh link; the contested
        // shard is settled by recovery below, not blanket delegation.
        let redelegate: Vec<ShardId> = (Z / 2..Z).filter(|s| *s != shard).map(ShardId).collect();
        endpoint
            .delegate_shards(&redelegate)
            .expect("parent re-delegates");
        wait_app(&endpoint, b"recovered");
        let report = endpoint.recover().expect("parent recovery");
        eprintln!(
            "parent: {} recovered (restored {:?}, remote {:?}, adopted {:?})",
            sc.name, report.restored, report.remote, report.adopted
        );
        if !exec.owns_shard(ShardId(shard)) {
            // Neither journal resolution left it here: it lives on the
            // peer — make sure its forwarder rides the fresh link.
            endpoint
                .delegate_shards(&[ShardId(shard)])
                .expect("rebind contested shard");
        }
        t0.elapsed().as_millis() as u64
    } else {
        // Clean run: the child's migrate_out races our ownership check;
        // wait for its completion signal and the final DONE handoff.
        wait_app(&endpoint, b"migrated");
        assert!(
            wait_until(Duration::from_secs(30), || exec.owns_shard(ShardId(shard))),
            "clean: migrated shard never finished installing"
        );
        0
    };

    // Exactly-one-owner, then a live burst through the contested shard
    // gated on FIFO + exact conservation (the expected digest encodes
    // both the intact preload and exactly `burst_rounds()` counts).
    let parent_owns = exec.owns_shard(ShardId(shard));
    let keys = keys_for_shard(shard);
    for round in 1..=burst_rounds() {
        for &key in &keys {
            exec.ingest(Record::new(key, burst_payload(round)).with_seq(round));
        }
    }
    let burst_records = burst_rounds() * keys.len() as u64;
    let want = digest_of(&expected_final(shard));
    if parent_owns {
        let ok = wait_until(Duration::from_secs(60), || {
            exec.state()
                .snapshot_shard(ShardId(shard))
                .is_some_and(|s| digest_of(&s) == want)
        });
        assert!(ok, "{}: parent-side digest never settled", sc.name);
    } else {
        let ok = wait_until(Duration::from_secs(60), || {
            request_report(&endpoint)
                .shards
                .iter()
                .any(|&(s, d)| s == shard && d == want)
        });
        assert!(ok, "{}: child-side digest never settled", sc.name);
    }
    let report = request_report(&endpoint);
    assert_eq!(report.fifo_violations, 0, "{}: child FIFO", sc.name);
    assert!(fifo.is_clean(), "{}: parent FIFO", sc.name);
    if parent_owns {
        assert!(
            !report.shards.iter().any(|&(s, _)| s == shard),
            "{}: sh{shard} hosted on both sides",
            sc.name
        );
    } else {
        assert!(
            !exec.state().hosts(ShardId(shard)),
            "{}: sh{shard} hosted on both sides",
            sc.name
        );
    }
    assert_eq!(
        exec.processed_count() + report.processed,
        burst_records,
        "{}: burst records processed exactly once across processes",
        sc.name
    );

    endpoint.send_app(b"bye".to_vec()).expect("dismiss child");
    let status = child.wait().expect("child exits");
    assert!(status.success(), "{}: child failed: {status}", sc.name);
    endpoint.close();
    KillResult {
        name: sc.name,
        mode: match sc.mode {
            Mode::Sender => "sender",
            Mode::Receiver => "receiver",
        },
        owner: if parent_owns { "parent" } else { "child" },
        recovery_ms,
        burst_records,
    }
}

// ---------------------------------------------------------------------------
// Single-process live scenarios.
// ---------------------------------------------------------------------------

struct LiveResult {
    name: &'static str,
    records: u64,
    p99_ns: f64,
    p999_ns: f64,
}

/// A 100× flash-crowd spike over Zipf keys: the clock-driven profile
/// decides how many records are due; conservation and FIFO must hold
/// through the surge.
fn flash_crowd() -> LiveResult {
    let fifo = Arc::new(FifoChecker::new());
    let exec = executor(fifo.clone());
    let (base, run_ms) = if quick_mode() {
        (1_000.0, 700)
    } else {
        (2_000.0, 2_500)
    };
    let profile = SpikeProfile {
        base_rate: base,
        spike_factor: 100.0,
        spike_start: Duration::from_millis(run_ms / 4),
        spike_len: Duration::from_millis(run_ms / 4),
    };
    const KEYS: usize = 512;
    let zipf = ZipfSampler::new(KEYS, 0.5);
    let mut rng = SimRng::new(42);
    let mut seqs = vec![0u64; KEYS];
    let start = Instant::now();
    let mut sent = 0u64;
    loop {
        let t = start.elapsed();
        if t >= Duration::from_millis(run_ms) {
            break;
        }
        let due = profile.due_by(t.as_nanos() as u64);
        while sent < due {
            let k = zipf.sample(&mut rng);
            seqs[k] += 1;
            exec.ingest(Record::new(Key(k as u64), Bytes::new()).with_seq(seqs[k]));
            sent += 1;
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    let ok = wait_until(Duration::from_secs(60), || exec.processed_count() == sent);
    assert!(ok, "flash_crowd: records lost in the spike");
    assert!(fifo.is_clean(), "flash_crowd: FIFO violations");
    let stats = exec.stats();
    LiveResult {
        name: "flash_crowd",
        records: sent,
        p99_ns: stats.latency.quantile_ns(0.99),
        p999_ns: stats.latency.quantile_ns(0.999),
    }
}

/// A bounded consumer that periodically stops draining: backpressure
/// stalls the task threads, yet nothing may be lost or reordered.
fn slow_consumer() -> LiveResult {
    let fifo = Arc::new(FifoChecker::new());
    let total: u64 = if quick_mode() { 8_000 } else { 40_000 };
    let op = {
        let fifo = Arc::clone(&fifo);
        move |r: &Record, s: &StateHandle| {
            fifo.observe(r.key, r.seq);
            s.update(r.key, |old| {
                let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
                Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
            });
            vec![r.clone()]
        }
    };
    let exec = Arc::new(ElasticExecutor::start(
        ExecutorConfig {
            num_shards: Z,
            initial_tasks: 2,
            output_capacity: Some(64),
            ..ExecutorConfig::default()
        },
        op,
    ));
    let schedule = StallSchedule {
        first_stall: Duration::from_millis(50),
        period: Duration::from_millis(200),
        stall_len: Duration::from_millis(if quick_mode() { 60 } else { 100 }),
    };
    let consumer = {
        let exec = Arc::clone(&exec);
        std::thread::spawn(move || {
            let start = Instant::now();
            let mut drained = 0u64;
            while drained < total {
                while schedule.is_stalled(start.elapsed().as_nanos() as u64) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                match exec.outputs().recv_timeout(Duration::from_secs(30)) {
                    Ok(batch) => drained += batch.len() as u64,
                    Err(_) => panic!("slow_consumer: output went quiet"),
                }
            }
            drained
        })
    };
    const KEYS: u64 = 128;
    let mut seqs = vec![0u64; KEYS as usize];
    for i in 0..total {
        let key = (i * 13) % KEYS;
        seqs[key as usize] += 1;
        exec.ingest(Record::new(Key(key), Bytes::new()).with_seq(seqs[key as usize]));
    }
    let drained = consumer.join().expect("consumer thread");
    assert_eq!(drained, total, "slow_consumer: lost or duplicated records");
    assert!(fifo.is_clean(), "slow_consumer: FIFO violations");
    let stats = exec.stats();
    assert_eq!(stats.processed, total);
    LiveResult {
        name: "slow_consumer",
        records: total,
        p99_ns: stats.latency.quantile_ns(0.99),
        p999_ns: stats.latency.quantile_ns(0.999),
    }
}

/// Zipf-skewed load while the operator scales out twice and back in
/// once — shard migrations under skew, FIFO + conservation gated.
fn zipf_rescale() -> LiveResult {
    let fifo = Arc::new(FifoChecker::new());
    let total: u64 = if quick_mode() { 20_000 } else { 60_000 };
    let mut b = LiveDag::builder();
    let hot = b.source(
        "hot",
        ExecutorConfig {
            num_shards: Z,
            initial_tasks: 2,
            ..ExecutorConfig::default()
        },
        counting_op(Arc::clone(&fifo)),
    );
    b.parallelism(hot, 1);
    let dag = b.build().expect("single-operator topology");

    const KEYS: usize = 200;
    let zipf = ZipfSampler::new(KEYS, 0.8);
    let mut rng = SimRng::new(7);
    let mut seqs = vec![0u64; KEYS];
    for i in 0..total {
        let k = zipf.sample(&mut rng);
        seqs[k] += 1;
        dag.port(hot)
            .ingest(Record::new(Key(k as u64), Bytes::new()).with_seq(seqs[k]));
        if i == total / 4 || i == total / 2 {
            dag.scale_out(hot).expect("scale out under skew");
        } else if i == 3 * total / 4 {
            dag.scale_in(hot).expect("scale in under skew");
        }
    }
    dag.drain();
    assert!(fifo.is_clean(), "zipf_rescale: FIFO violations");
    let group = dag.group(hot);
    let stats = group.stats();
    assert_eq!(
        stats.processed, total,
        "zipf_rescale: lost or duplicated records"
    );
    assert_eq!(group.num_live(), 2);
    LiveResult {
        name: "zipf_rescale",
        records: total,
        p99_ns: stats.latency.quantile_ns(0.99),
        p999_ns: stats.latency.quantile_ns(0.999),
    }
}

/// Multi-point probabilistic fault composition: both halves of the
/// migration handshake carry seeded `@<prob>` errs while every link
/// frame may be delay-jittered — all armed at once, in one process (the
/// fail-point registry is process-global, so a single spec reaches the
/// sender path, the receiver path, and the writer threads of *both*
/// endpoints). A shard ping-pongs between two executors; some rounds
/// must fail (pre-commit errs restore the shard locally), some must
/// succeed, and after disarming, conservation + FIFO + exactly-one-owner
/// must hold as if nothing had happened.
fn probabilistic_faults() -> LiveResult {
    use elasticutor_core::fault;
    let spec = "migrate.snd.offer=err@0.35,migrate.snd.state=err@0.25,\
                migrate.rcv.offer=err@0.15,link.write=delay:200us@0.05";
    fault::configure(spec).expect("valid probabilistic spec");

    let fifo_a = Arc::new(FifoChecker::new());
    let fifo_b = Arc::new(FifoChecker::new());
    let exec_a = executor(fifo_a.clone());
    let exec_b = executor(fifo_b.clone());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let connector = {
        let exec_b = Arc::clone(&exec_b);
        std::thread::spawn(move || {
            MigrationEndpoint::connect_with(exec_b, addr.as_str(), MigrationConfig::default())
                .expect("connect b endpoint")
        })
    };
    let ep_a =
        MigrationEndpoint::accept_with(Arc::clone(&exec_a), &listener, MigrationConfig::default())
            .expect("accept a endpoint");
    let ep_b = connector.join().expect("connector thread");

    let shard = ShardId(SENDER_SHARD);
    preload(&exec_a, SENDER_SHARD);

    let rounds = if quick_mode() { 14 } else { 40 };
    let mut at_a = true;
    let mut successes = 0u64;
    let mut failures = 0u64;
    for _ in 0..rounds {
        let res = if at_a {
            ep_a.migrate_out(shard)
        } else {
            ep_b.migrate_out(shard)
        };
        match res {
            Ok(_) => {
                at_a = !at_a;
                successes += 1;
                // The receiver installs on its reader thread; wait for
                // ownership so the return trip starts from solid ground.
                let owner = if at_a { &exec_a } else { &exec_b };
                assert!(
                    wait_until(Duration::from_secs(30), || owner.owns_shard(shard)),
                    "probabilistic_faults: migrated shard never installed"
                );
            }
            Err(e) => {
                eprintln!("probabilistic_faults: injected round failed: {e}");
                failures += 1;
            }
        }
    }
    let err_hits = fault::hit_count("migrate.snd.offer") + fault::hit_count("migrate.snd.state");
    let jitter_hits = fault::hit_count("link.write");
    fault::clear();

    // The seeded draws must have produced a genuine mix: the composed
    // spec fired (partially — it's a probability, not a certainty) and
    // the protocol still made forward progress through it.
    assert!(
        successes > 0,
        "probabilistic_faults: no round ever succeeded"
    );
    assert!(
        failures > 0 && err_hits > 0,
        "probabilistic_faults: err@p points never fired (hits={err_hits})"
    );
    eprintln!(
        "probabilistic_faults: {successes} ok / {failures} injected-fail rounds, \
         {err_hits} err hits, {jitter_hits} delay hits"
    );

    // Exactly one owner, then the usual burst + digest conservation.
    let (owner_exec, loser_exec) = if at_a {
        (&exec_a, &exec_b)
    } else {
        (&exec_b, &exec_a)
    };
    assert!(owner_exec.owns_shard(shard), "settled owner lost the shard");
    assert!(
        !loser_exec.state().hosts(shard),
        "probabilistic_faults: sh{SENDER_SHARD} hosted on both sides"
    );
    let keys = keys_for_shard(SENDER_SHARD);
    for round in 1..=burst_rounds() {
        for &key in &keys {
            owner_exec.ingest(Record::new(key, burst_payload(round)).with_seq(round));
        }
    }
    let burst_records = burst_rounds() * keys.len() as u64;
    let want = digest_of(&expected_final(SENDER_SHARD));
    assert!(
        wait_until(Duration::from_secs(60), || {
            owner_exec
                .state()
                .snapshot_shard(shard)
                .is_some_and(|s| digest_of(&s) == want)
        }),
        "probabilistic_faults: burst digest never settled"
    );
    assert!(fifo_a.is_clean() && fifo_b.is_clean(), "FIFO violations");

    let stats = owner_exec.stats();
    ep_a.close();
    ep_b.close();
    LiveResult {
        name: "probabilistic_faults",
        records: burst_records,
        p99_ns: stats.latency.quantile_ns(0.99),
        p999_ns: stats.latency.quantile_ns(0.999),
    }
}

// ---------------------------------------------------------------------------
// Parent main.
// ---------------------------------------------------------------------------

fn parent_main() {
    let out_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());
    let dir = std::env::temp_dir().join(format!("elasticutor-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("journal dir");

    println!(
        "chaos suite: {} kill scenarios + 4 live scenarios{}",
        KILL_MATRIX.len(),
        if quick_mode() { " (quick mode)" } else { "" }
    );

    let mut kill_results = Vec::new();
    for sc in &KILL_MATRIX {
        let res = run_kill_scenario(sc, &dir);
        println!(
            "kill {:<12} mode={:<8} owner={:<6} recovery={}ms burst={} ok",
            res.name, res.mode, res.owner, res.recovery_ms, res.burst_records
        );
        kill_results.push(res);
    }
    let live_results = vec![
        flash_crowd(),
        slow_consumer(),
        zipf_rescale(),
        probabilistic_faults(),
    ];

    let mut table = Table::new(&["scenario", "records", "p99", "p999"]);
    for r in &live_results {
        table.row(vec![
            r.name.to_string(),
            r.records.to_string(),
            fmt_latency_ns(r.p99_ns),
            fmt_latency_ns(r.p999_ns),
        ]);
    }
    println!("\nlive chaos scenarios (FIFO + conservation gated)");
    table.print();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {},", quick_mode());
    let _ = writeln!(json, "  \"hardware_threads\": {},", hardware_threads());
    let _ = writeln!(
        json,
        "  \"payload_mixture\": {{\"small\": 16, \"medium\": 4096, \"large\": {}}},",
        large_value_len()
    );
    json.push_str("  \"kill_matrix\": [\n");
    for (i, r) in kill_results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"owner\": \"{}\", \"recovery_ms\": {}, \"burst_records\": {}}}",
            r.name, r.mode, r.owner, r.recovery_ms, r.burst_records
        );
        json.push_str(if i + 1 < kill_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"live\": [\n");
    for (i, r) in live_results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scenario\": \"{}\", \"records\": {}, \"p99_ns\": {:.0}, \"p999_ns\": {:.0}, \"fifo_violations\": 0}}",
            r.name, r.records, r.p99_ns, r.p999_ns
        );
        json.push_str(if i + 1 < live_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
    };
    match flag("--child") {
        Some(addr) => child_main(ChildArgs {
            addr,
            mode: match flag("--mode").expect("--mode").as_str() {
                "sender" => Mode::Sender,
                "receiver" => Mode::Receiver,
                other => panic!("unknown mode {other}"),
            },
            shard: flag("--shard").expect("--shard").parse().expect("shard id"),
            journal: PathBuf::from(flag("--journal").expect("--journal")),
            recovered: args.iter().any(|a| a == "--recovered"),
        }),
        None => parent_main(),
    }
}
