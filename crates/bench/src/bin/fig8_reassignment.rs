//! Figure 8 — breakdown of shard reassignment time into synchronization
//! and state-migration components, for intra-node and inter-node
//! reassignments, RC vs Elasticutor.
//!
//! Paper numbers (ms): RC sync ≈ 260 (intra) / 297 (inter); Elasticutor
//! sync ≈ 2.6 / 2.8. Migration: ≈ 0 intra-node (state sharing) for both;
//! a few ms inter-node. The claim to reproduce: Elasticutor's
//! synchronization is ~2 orders of magnitude cheaper because it needs no
//! global synchronization, while migration costs are comparable.

use elasticutor_bench::{quick_mode, Table, SEC};
use elasticutor_cluster::config::{ClusterConfig, EngineMode, ExperimentConfig};
use elasticutor_cluster::report::ReassignmentRecord;
use elasticutor_cluster::ClusterEngine;
use elasticutor_workload::MicroConfig;

/// Runs one engine under a shuffling workload and collects its
/// post-warmup reassignment records.
///
/// The cluster geometry keeps nodes small (2 cores) relative to the
/// per-executor demand (~3.5 cores), so elastic executors *must* run
/// remote tasks and some shard moves cross nodes; a single-node cluster
/// provides the intra-node rows.
fn collect(mode: EngineMode, nodes: u32, quick: bool) -> Vec<ReassignmentRecord> {
    let micro = MicroConfig {
        rate: 4_500.0, // ~56% of the 8-core capacity: queues stay shallow
        omega: 8.0,
        num_keys: 2_000,
        skew: 0.6, // enough spread that shuffles force reassignments
        calculator_executors: 2,
        shards_per_executor: 64,
        // The paper's default layout: 32 upstream executors — the source
        // of RC's ~260–300 ms synchronization bill.
        generator_parallelism: 32,
        ..MicroConfig::default()
    };
    let mut cfg = ExperimentConfig::micro(mode, micro);
    // Same 8 cores either as one node (every reassignment intra-node) or
    // as four 2-core nodes (per-executor demand ~2.6 cores ⇒ remote
    // tasks ⇒ inter-node reassignments).
    cfg.cluster = ClusterConfig::small(nodes, 8 / nodes.min(8));
    cfg.duration_ns = if quick { 40 * SEC } else { 120 * SEC };
    cfg.warmup_ns = if quick { 15 * SEC } else { 40 * SEC };
    ClusterEngine::new(cfg).run().reassignments
}

fn main() {
    let quick = quick_mode();
    println!("Figure 8: shard reassignment time breakdown (mean per shard)");
    println!("workload: 8k tuples/s, omega = 8, 32 KB shard state\n");

    let mut table = Table::new(&["approach", "locality", "sync (ms)", "migration (ms)", "n"]);
    for (mode, name) in [
        (EngineMode::ResourceCentric, "RC"),
        (EngineMode::Elastic, "Elasticutor"),
    ] {
        // Single-node cluster → every reassignment is intra-node;
        // multi-node cluster → inter-node moves occur.
        let single = collect(mode, 1, quick);
        let multi = collect(mode, 4, quick);
        let intra = elasticutor_cluster::report::breakdown(&single, Some(true));
        let inter = elasticutor_cluster::report::breakdown(&multi, Some(false));
        table.row(vec![
            name.into(),
            "intra-node".into(),
            format!("{:.2}", intra.mean_sync_ms),
            format!("{:.2}", intra.mean_migration_ms),
            format!("{}", intra.count),
        ]);
        table.row(vec![
            name.into(),
            "inter-node".into(),
            format!("{:.2}", inter.mean_sync_ms),
            format!("{:.2}", inter.mean_migration_ms),
            format!("{}", inter.count),
        ]);
    }
    table.print();
    println!("\npaper (Fig. 8): RC sync 260.4 / 297.3 ms vs Elasticutor sync 2.62 / 2.83 ms;");
    println!("migration: ~0 intra-node (state sharing), a few ms inter-node for both.");
}
