//! Ablation — the two tuning constants DESIGN.md calls out:
//!
//! * `θ` (imbalance threshold, §3.1): how uneven task loads may get
//!   before the intra-executor balancer moves shards. Tight θ balances
//!   better but churns more reassignments; loose θ tolerates hot tasks.
//!   The paper fixes θ = 1.2 ("allowing a maximum imbalance of 20%").
//! * `φ̃` (base data-intensity threshold, §4.2): executors whose
//!   per-core data rate exceeds φ only accept local cores. Low φ̃ pins
//!   everything local (may starve allocation); high φ̃ lets
//!   data-intensive executors sprawl onto remote nodes (remote-transfer
//!   cost). The paper fixes φ̃ = 512 KB/s.
//!
//! Not a paper figure: this regenerates the reasoning behind those two
//! defaults on the micro-benchmark.

use elasticutor_bench::{fmt_latency_ns, fmt_rate, quick_mode, Table, SEC};
use elasticutor_cluster::config::{ClusterConfig, EngineMode, ExperimentConfig};
use elasticutor_cluster::{ClusterEngine, RunReport};
use elasticutor_workload::MicroConfig;

fn run(theta: f64, phi: f64, tuple_bytes: u32, quick: bool) -> RunReport {
    // 4 executors at ~9 cores of demand each on 4-core nodes: executors
    // must take remote cores, so the locality threshold has something to
    // decide.
    let micro = MicroConfig {
        rate: 24_000.0,
        omega: 8.0,
        tuple_bytes,
        calculator_executors: 4,
        generator_parallelism: 16,
        ..MicroConfig::default()
    };
    let mut cfg = ExperimentConfig::micro(EngineMode::Elastic, micro);
    cfg.cluster = ClusterConfig::small(8, 4);
    cfg.imbalance_threshold = theta;
    cfg.phi_base = phi;
    cfg.duration_ns = if quick { 30 * SEC } else { 60 * SEC };
    cfg.warmup_ns = if quick { 12 * SEC } else { 25 * SEC };
    ClusterEngine::new(cfg).run()
}

fn main() {
    let quick = quick_mode();
    const PHI_DEFAULT: f64 = 512.0 * 1024.0;

    // ---- θ sweep at the default φ ----
    println!("Ablation (theta): imbalance threshold of the intra-executor balancer");
    println!("micro-benchmark, 8x4 cores, 24k tuples/s, 4 executors, omega = 8, 128 B tuples\n");
    let thetas: Vec<f64> = if quick {
        vec![1.05, 1.2, 2.0]
    } else {
        vec![1.02, 1.05, 1.1, 1.2, 1.5, 2.0, 4.0]
    };
    let mut t = Table::new(&[
        "theta",
        "throughput",
        "avg latency",
        "p99 latency",
        "reassigns",
    ]);
    for &theta in &thetas {
        let r = run(theta, PHI_DEFAULT, 128, quick);
        t.row(vec![
            format!("{theta}"),
            fmt_rate(r.throughput),
            fmt_latency_ns(r.latency.mean_ns()),
            fmt_latency_ns(r.latency.p99_ns()),
            format!("{}", r.reassignments.len()),
        ]);
    }
    t.print();
    println!("\nexpected: tight theta => more reassignments for little gain; loose theta");
    println!("=> hot tasks linger and the latency tail grows. 1.2 sits in the flat middle.\n");

    // ---- φ sweep under a data-intensive workload ----
    println!("Ablation (phi): locality threshold under 2 KB tuples");
    println!("micro-benchmark, 8x4 cores, 24k tuples/s, 4 executors, omega = 8, 2 KB tuples\n");
    let phis: Vec<(f64, &str)> = if quick {
        vec![
            (64.0 * 1024.0, "64KB/s"),
            (PHI_DEFAULT, "512KB/s"),
            (f64::MAX, "inf"),
        ]
    } else {
        vec![
            (16.0 * 1024.0, "16KB/s"),
            (64.0 * 1024.0, "64KB/s"),
            (PHI_DEFAULT, "512KB/s"),
            (4.0 * 1024.0 * 1024.0, "4MB/s"),
            (f64::MAX, "inf"),
        ]
    };
    let mut p = Table::new(&[
        "phi",
        "throughput",
        "avg latency",
        "remote MB/s",
        "migration MB/s",
    ]);
    for &(phi, label) in &phis {
        let r = run(1.2, phi, 2048, quick);
        p.row(vec![
            label.to_string(),
            fmt_rate(r.throughput),
            fmt_latency_ns(r.latency.mean_ns()),
            format!("{:.2}", r.remote_transfer_rate_mb_s()),
            format!("{:.2}", r.state_migration_rate_mb_s()),
        ]);
    }
    p.print();
    println!("\nexpected: phi = inf (locality off, naive-EC-like) lifts remote transfer;");
    println!("very low phi over-constrains placement. 512 KB/s keeps both costs low.");
}
