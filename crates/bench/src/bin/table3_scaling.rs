//! Table 3 — Elasticutor's throughput and scheduling time as the
//! cluster grows from 8 to 32 nodes, on the SSE workload.
//!
//! Paper claims to reproduce (§5.4, Table 3):
//! * "the throughput grows nearly linearly as the cluster grows"
//!   (66.6 k → 121.3 k → 218.6 k tuples/s at 8/16/32 nodes);
//! * "the scheduling cost is around several milliseconds and grows
//!   slightly with the number of nodes" (4.1 → 5.2 → 5.7 ms).
//!
//! Scheduling time is *real wall-clock time* inside our scheduler
//! implementation (model evaluation + Algorithm 1), not simulated time —
//! the same quantity the paper reports.

use elasticutor_bench::sse_exp::run_sse;
use elasticutor_bench::{fmt_rate, quick_mode, Table};
use elasticutor_cluster::config::EngineMode;

fn main() {
    let quick = quick_mode();
    let node_counts: Vec<u32> = if quick { vec![8, 16] } else { vec![8, 16, 32] };
    let (duration_s, warmup_s) = if quick { (30, 10) } else { (75, 25) };

    println!("Table 3: Elasticutor throughput and scheduling time vs cluster size");
    println!("SSE workload scaled to saturate each cluster\n");

    let mut t = Table::new(&[
        "nodes",
        "throughput (tuples/s)",
        "scheduling time (ms)",
        "scheduler rounds",
    ]);
    let mut tputs = Vec::new();
    for &nodes in &node_counts {
        let r = run_sse(EngineMode::Elastic, nodes, duration_s, warmup_s);
        tputs.push(r.throughput);
        t.row(vec![
            format!("{nodes}"),
            fmt_rate(r.throughput),
            format!("{:.2}", r.mean_scheduling_ms()),
            format!("{}", r.scheduler_rounds),
        ]);
    }
    t.print();
    if tputs.len() >= 2 {
        let ratio = tputs[tputs.len() - 1] / tputs[0];
        let scale = node_counts[node_counts.len() - 1] as f64 / node_counts[0] as f64;
        println!(
            "\nthroughput scaled {ratio:.2}x over a {scale:.0}x cluster growth (paper: near-linear)"
        );
    }
    println!("paper: 66.6k/121.3k/218.6k tuples/s; scheduling 4.1/5.2/5.7 ms");
}
