use elasticutor_cluster::config::{EngineMode, ExperimentConfig};
use elasticutor_cluster::ClusterEngine;
use elasticutor_workload::MicroConfig;

fn main() {
    let sec = 1_000_000_000u64;
    // Full paper scale: 32 nodes x 8 cores = 256 cores; capacity 256k/s.
    for (mode, omega) in [
        (EngineMode::Static, 0.0),
        (EngineMode::Elastic, 0.0),
        (EngineMode::Elastic, 16.0),
        (EngineMode::ResourceCentric, 2.0),
    ] {
        let micro = MicroConfig {
            rate: 200_000.0,
            omega,
            ..MicroConfig::default()
        };
        let mut cfg = ExperimentConfig::micro(mode, micro);
        cfg.duration_ns = 50 * sec;
        cfg.warmup_ns = 20 * sec;
        cfg.backpressure_high = 32_768;
        cfg.backpressure_low = 16_384;
        let t0 = std::time::Instant::now();
        let r = ClusterEngine::new(cfg).run();
        println!(
            "{:12} omega={:4} tput={:8.0}/s lat_avg={:9.2}ms p99={:9.2}ms reassigns={:5} mig={:7}KB remote={:7}KB wall={:.1}s",
            r.mode, omega, r.throughput, r.latency.mean_ns()/1e6, r.latency.p99_ns()/1e6,
            r.reassignments.len(), r.state_migration_bytes/1024, r.remote_task_bytes/1024, t0.elapsed().as_secs_f64()
        );
    }
}
