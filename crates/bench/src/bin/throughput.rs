//! Data-plane throughput harness: the lock-free fast path vs the
//! mutex baseline, reproducibly.
//!
//! Three measurements:
//!
//! * **submit-path** — N records pushed through one `ElasticExecutor`
//!   (drop operator) by 1, 2, and 4 concurrent submitters; throughput is
//!   records/second from first submit until the last record is
//!   processed. `baseline` routes every record through the global
//!   routing mutex and a global latency-histogram lock (the
//!   pre-optimization data plane, via
//!   `ExecutorConfig::baseline_locked_routing`); `optimized` uses the
//!   wait-free atomic shard table with 64-record submit batches; `spsc`
//!   (single submitter only) additionally enables the per-task SPSC
//!   rings — the pump→task edge every DAG pump runs on.
//! * **pipeline** — a two-stage pipeline (passthrough → drop sink) fed
//!   end to end, measuring sustained records/second through both hops
//!   including pump batching, rings, and backpressure. Swept over a
//!   task-thread matrix (1, 2, and 4 task threads per stage, labeled
//!   `-c1`/`-c2`/`-c4` so bench_diff keys a baseline per core count);
//!   each row also records p99/p999 submit→processed latency, the tail
//!   the parked pump (condvar wakeups instead of a 50 µs poll) governs.
//! * **fan-out** — a source fanning out to two consumers through the
//!   Arc-shared forwarder, one scenario per grouping (key, shuffle,
//!   broadcast), plus a large-payload broadcast arm: since replication
//!   is pointer bumps, `broadcast-4k` should track `broadcast` despite
//!   256× the payload bytes — the O(edges)-not-O(edges × bytes) check.
//! * **rescale** — a Zipf-skewed keyed stream (s = 1.2 over 1 Ki keys)
//!   into one hot operator, run once at a fixed single instance and
//!   once scaling 1 → 2 executor instances live mid-stream; the arm
//!   asserts zero lost, duplicated, or reordered records across the
//!   shard migration and reports how many shards moved.
//!
//! Output: an aligned table on stdout plus `BENCH_throughput.json`
//! (override with `--out PATH`); `--baseline` / `--optimized` restrict
//! the modes; `ELASTICUTOR_QUICK=1` shrinks record counts ~10× for CI
//! smoke runs.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use elasticutor_bench::{hardware_threads, quick_mode, Table};
use elasticutor_core::ids::Key;
use elasticutor_runtime::dag::LiveDag;
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{
    monotonic_ns, ElasticExecutor, ExecutorConfig, FifoChecker, Pipeline, Record,
};
use elasticutor_sim::SimRng;
use elasticutor_state::StateHandle;
use elasticutor_workload::ZipfSampler;

/// Records per submit batch in optimized mode (matches the pipeline's
/// default pump batch).
const SUBMIT_BATCH: usize = 64;
/// Submitter thread counts swept in the submit-path measurement.
const SUBMITTER_SWEEP: [usize; 3] = [1, 2, 4];
/// Task threads per stage swept in the pipeline matrix. The artifact
/// records `hardware_threads` next to these: on a 1-core recorder the
/// c2/c4 rows measure oversubscription, not parallel speedup.
const CORE_SWEEP: [u32; 3] = [1, 2, 4];

#[derive(Clone, Copy)]
struct RunResult {
    mode: &'static str,
    submitters: usize,
    records: u64,
    elapsed_ns: u64,
}

impl RunResult {
    fn records_per_sec(&self) -> f64 {
        self.records as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// Submit-path mode: which data plane the executor runs.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Global routing mutex + global histogram lock (pre-PR 2).
    Baseline,
    /// Wait-free shard table, MPMC task channels (PR 2).
    Optimized,
    /// Wait-free shard table + per-task SPSC rings (single submitter).
    Spsc,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Optimized => "optimized",
            Mode::Spsc => "spsc",
        }
    }
}

fn executor_config(baseline: bool) -> ExecutorConfig {
    ExecutorConfig {
        num_shards: 256,
        initial_tasks: 2,
        baseline_locked_routing: baseline,
        ..ExecutorConfig::default()
    }
}

/// Submit-path throughput: `submitters` threads push `total` records
/// into one executor with a drop operator; elapsed covers submit +
/// drain so the number is routed *and processed* throughput.
fn run_submit_path(mode: Mode, submitters: usize, total: u64) -> RunResult {
    assert!(
        mode != Mode::Spsc || submitters == 1,
        "the ring plane is a single-producer measurement"
    );
    let mut config = executor_config(mode == Mode::Baseline);
    config.single_producer = mode == Mode::Spsc;
    if mode == Mode::Spsc {
        // Mirror the DAG builder's sizing: large enough to amortize the
        // full edge, small enough to stay cache-resident.
        config.ring_capacity = Some(4096);
    }
    let exec = Arc::new(ElasticExecutor::start(
        config,
        |_r: &Record, _s: &StateHandle| Vec::new(),
    ));
    let per_thread = total / submitters as u64;
    let effective = per_thread * submitters as u64;
    let start = Instant::now();
    let threads: Vec<_> = (0..submitters as u64)
        .map(|t| {
            let exec = Arc::clone(&exec);
            std::thread::spawn(move || {
                if mode == Mode::Baseline {
                    for i in 0..per_thread {
                        let key = Key(i * submitters_stride(t) + t);
                        exec.ingest(Record::new(key, Bytes::new()));
                    }
                } else {
                    let mut batch = Vec::with_capacity(SUBMIT_BATCH);
                    for i in (0..per_thread).step_by(SUBMIT_BATCH) {
                        // One clock read stamps the whole batch.
                        let now = monotonic_ns();
                        let end = (i + SUBMIT_BATCH as u64).min(per_thread);
                        for j in i..end {
                            let key = Key(j * submitters_stride(t) + t);
                            batch.push(Record::new_at(key, Bytes::new(), now));
                        }
                        exec.ingest_batch(std::mem::take(&mut batch));
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("submitter exits");
    }
    exec.wait_for_processed(effective);
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let stats = Arc::try_unwrap(exec)
        .unwrap_or_else(|_| panic!("sole owner"))
        .shutdown();
    assert_eq!(stats.processed, effective, "records lost in flight");
    RunResult {
        mode: mode.label(),
        submitters,
        records: effective,
        elapsed_ns,
    }
}

/// Key stride per submitter: spreads each thread's keys across all
/// shards with a different step per thread. Threads may collide on
/// individual keys — irrelevant here, where only throughput is
/// measured; do not reuse where key disjointness matters.
fn submitters_stride(t: u64) -> u64 {
    7 + t % 3
}

/// One pipeline-matrix cell: mode × task-thread count, with the sink
/// stage's submit→processed tail latency (the pump-wakeup path).
struct PipelineResult {
    mode: String,
    cores: u32,
    records: u64,
    elapsed_ns: u64,
    p99_ns: f64,
    p999_ns: f64,
}

impl PipelineResult {
    fn records_per_sec(&self) -> f64 {
        self.records as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// End-to-end pipeline throughput: passthrough → drop sink, one driver,
/// `cores` task threads per stage. The mode label carries the core
/// count (`optimized-c4`) so bench_diff keeps a baseline per cell.
fn run_pipeline(baseline: bool, cores: u32, total: u64) -> PipelineResult {
    let stage_config = || ExecutorConfig {
        num_shards: 256,
        initial_tasks: cores,
        baseline_locked_routing: baseline,
        ..ExecutorConfig::default()
    };
    let pipe = Pipeline::builder()
        .stage("pass", stage_config(), |r: &Record, _s: &StateHandle| {
            vec![r.clone()]
        })
        .stage("sink", stage_config(), |_r: &Record, _s: &StateHandle| {
            Vec::new()
        })
        .capacity(16_384)
        .max_batch(SUBMIT_BATCH)
        .build();
    let start = Instant::now();
    if baseline {
        for i in 0..total {
            pipe.ingest(Record::new(Key(i % 4096), Bytes::new()));
        }
    } else {
        let mut i = 0u64;
        while i < total {
            let now = monotonic_ns();
            let end = (i + 4 * SUBMIT_BATCH as u64).min(total);
            let batch: Vec<Record> = (i..end)
                .map(|k| Record::new_at(Key(k % 4096), Bytes::new(), now))
                .collect();
            pipe.ingest_batch(batch);
            i = end;
        }
    }
    pipe.drain();
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let stats = pipe.shutdown();
    assert!(
        stats.iter().all(|s| s.stats.processed == total),
        "pipeline lost records"
    );
    let sink_latency = &stats.last().expect("two stages").stats.latency;
    PipelineResult {
        mode: format!(
            "{}-c{cores}",
            if baseline { "baseline" } else { "optimized" }
        ),
        cores,
        records: total,
        elapsed_ns,
        p99_ns: sink_latency.p99_ns(),
        p999_ns: sink_latency.quantile_ns(0.999),
    }
}

/// One rescale-arm outcome: a Zipf-hot operator, optionally growing
/// 1 → 2 executor instances live mid-stream.
struct RescaleResult {
    mode: &'static str,
    records: u64,
    elapsed_ns: u64,
    /// Live instances when the stream ended.
    instances_after: u32,
    /// Shards the consistent-hash map handed to the newcomer.
    shards_moved: u64,
    p99_ns: f64,
    p999_ns: f64,
}

impl RescaleResult {
    fn records_per_sec(&self) -> f64 {
        self.records as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// Zipf hot-key stream into one operator. With `scale_out` the group
/// grows to two instances at the quarter mark — while the skewed
/// stream keeps flowing — and the arm asserts the §3.3 handshake lost,
/// duplicated, and reordered exactly nothing.
fn run_zipf_rescale(scale_out: bool, total: u64) -> RescaleResult {
    const KEYS: usize = 1024;
    const SKEW: f64 = 1.2;
    let order = Arc::new(FifoChecker::new());
    let processed = Arc::new(AtomicU64::new(0));
    let op = {
        let order = Arc::clone(&order);
        let processed = Arc::clone(&processed);
        move |r: &Record, _s: &StateHandle| {
            order.observe(r.key, r.seq);
            processed.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        }
    };
    let mut b = LiveDag::builder();
    b.capacity(16_384).max_batch(SUBMIT_BATCH);
    let hot = b.source(
        "hot",
        ExecutorConfig {
            num_shards: 64,
            initial_tasks: 2,
            ..ExecutorConfig::default()
        },
        op,
    );
    // The arm measures instance growth on its own terms, independent of
    // ELASTICUTOR_TEST_PARALLELISM.
    b.parallelism(hot, 1);
    let dag = b.build().expect("single-operator topology");
    let zipf = ZipfSampler::new(KEYS, SKEW);
    let mut rng = SimRng::new(0x5ca1e);
    let mut seqs = vec![0u64; KEYS];
    let start = Instant::now();
    let mut i = 0u64;
    while i < total {
        let now = monotonic_ns();
        let end = (i + 4 * SUBMIT_BATCH as u64).min(total);
        let batch: Vec<Record> = (i..end)
            .map(|_| {
                let key = zipf.sample(&mut rng) as u64;
                seqs[key as usize] += 1;
                Record::new_at(Key(key), Bytes::new(), now).with_seq(seqs[key as usize])
            })
            .collect();
        dag.port(hot).ingest_batch(batch);
        if scale_out && i < total / 4 && end >= total / 4 {
            dag.scale_out(hot)
                .expect("grow hot operator to 2 instances");
        }
        i = end;
    }
    dag.drain();
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let group = dag.group(hot);
    assert_eq!(
        order.violations(),
        Vec::<(u64, u64, u64)>::new(),
        "per-key FIFO violated by the live scale-out"
    );
    assert_eq!(
        processed.load(Ordering::Relaxed),
        total,
        "records lost or duplicated across the migration"
    );
    let instances_after = group.num_live() as u32;
    assert_eq!(instances_after, if scale_out { 2 } else { 1 });
    let shards_moved: u64 = group
        .rescale_log()
        .iter()
        .map(|e| e.shards_moved as u64)
        .sum();
    let stats = group.stats();
    let (p99_ns, p999_ns) = (stats.latency.p99_ns(), stats.latency.quantile_ns(0.999));
    dag.shutdown();
    RescaleResult {
        mode: if scale_out {
            "zipf-scaleout"
        } else {
            "zipf-static"
        },
        records: total,
        elapsed_ns,
        instances_after,
        shards_moved,
        p99_ns,
        p999_ns,
    }
}

/// One fan-out scenario's outcome.
struct FanoutResult {
    /// Scenario label (doubles as the bench_diff row key).
    mode: &'static str,
    payload_bytes: usize,
    edges: usize,
    /// Records fed to the source.
    records: u64,
    /// Records processed across the fan-out consumers
    /// (records × edges; broadcast additionally × consumer shards).
    deliveries: u64,
    elapsed_ns: u64,
}

impl FanoutResult {
    fn records_per_sec(&self) -> f64 {
        self.records as f64 / (self.elapsed_ns as f64 / 1e9)
    }
}

/// Fan-out throughput: source → two consumers through the Arc-shared
/// forwarder, grouping per scenario. Broadcast consumers run 8 shards
/// each, so one source record becomes 16 shard deliveries — all of
/// them pointer bumps into the same payload allocation.
fn run_fanout(
    mode: &'static str,
    grouping: elasticutor_core::topology::Grouping,
    payload_bytes: usize,
    total: u64,
) -> FanoutResult {
    use elasticutor_core::topology::Grouping;
    let consumer_shards = 8;
    let op_config = |shards: u32| ExecutorConfig {
        num_shards: shards,
        initial_tasks: 1,
        ..ExecutorConfig::default()
    };
    let mut b = LiveDag::builder();
    b.capacity(16_384).max_batch(SUBMIT_BATCH);
    let source = b.source("source", op_config(8), |r: &Record, _s: &StateHandle| {
        vec![r.clone()]
    });
    let drop_op = |_r: &Record, _s: &StateHandle| Vec::new();
    let left = b.operator("left", op_config(consumer_shards), drop_op);
    let right = b.operator("right", op_config(consumer_shards), drop_op);
    for to in [left, right] {
        match grouping {
            Grouping::Key => b.key_edge(source, to),
            Grouping::Shuffle => b.shuffle_edge(source, to),
            Grouping::Broadcast => b.broadcast_edge(source, to),
        };
    }
    let dag = b.build().expect("fan-out topology is valid");
    let payload = Bytes::from(vec![0x5Au8; payload_bytes]);
    let start = Instant::now();
    let mut i = 0u64;
    while i < total {
        let now = monotonic_ns();
        let end = (i + 4 * SUBMIT_BATCH as u64).min(total);
        let batch: Vec<Record> = (i..end)
            .map(|k| Record::new_at(Key(k % 4096), payload.clone(), now))
            .collect();
        dag.port(source).ingest_batch(batch);
        i = end;
    }
    dag.drain();
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let stats = dag.shutdown();
    let deliveries: u64 = [left, right]
        .iter()
        .map(|op| stats[op.index()].stats.processed)
        .sum();
    let expected_per_edge = match grouping {
        Grouping::Broadcast => total * u64::from(consumer_shards),
        Grouping::Key | Grouping::Shuffle => total,
    };
    assert_eq!(deliveries, 2 * expected_per_edge, "fan-out lost records");
    FanoutResult {
        mode,
        payload_bytes,
        edges: 2,
        records: total,
        deliveries,
        elapsed_ns,
    }
}

fn json_run(out: &mut String, r: &RunResult, with_submitters: bool) {
    out.push_str("    {");
    let _ = write!(out, "\"mode\": \"{}\", ", r.mode);
    if with_submitters {
        let _ = write!(out, "\"submitters\": {}, ", r.submitters);
    }
    let _ = write!(
        out,
        "\"records\": {}, \"elapsed_ns\": {}, \"records_per_sec\": {:.0}",
        r.records,
        r.elapsed_ns,
        r.records_per_sec()
    );
    out.push('}');
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let only_baseline = args.iter().any(|a| a == "--baseline");
    let only_optimized = args.iter().any(|a| a == "--optimized");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let modes: Vec<bool> = match (only_baseline, only_optimized) {
        (true, false) => vec![true],
        (false, true) => vec![false],
        _ => vec![true, false],
    };

    let quick = quick_mode();
    let submit_total: u64 = if quick { 40_000 } else { 400_000 };
    let pipeline_total: u64 = if quick { 20_000 } else { 200_000 };
    let fanout_total: u64 = if quick { 10_000 } else { 100_000 };
    let rescale_total: u64 = if quick { 10_000 } else { 100_000 };

    println!(
        "data-plane throughput harness ({} records submit-path, {} pipeline, {} fan-out, {} rescale{})",
        submit_total,
        pipeline_total,
        fanout_total,
        rescale_total,
        if quick { ", quick mode" } else { "" }
    );

    let mut submit_runs: Vec<RunResult> = Vec::new();
    let mut pipeline_runs: Vec<PipelineResult> = Vec::new();
    for &baseline in &modes {
        for &submitters in &SUBMITTER_SWEEP {
            let mode = if baseline {
                Mode::Baseline
            } else {
                Mode::Optimized
            };
            let r = run_submit_path(mode, submitters, submit_total);
            println!(
                "  submit-path {:>9} x{}: {:>12.0} records/s",
                r.mode,
                r.submitters,
                r.records_per_sec()
            );
            submit_runs.push(r);
        }
        if !baseline {
            // The ring plane is single-producer by contract; measure it
            // on the 1-submitter arm next to the MPMC channel number.
            let r = run_submit_path(Mode::Spsc, 1, submit_total);
            println!(
                "  submit-path {:>9} x{}: {:>12.0} records/s",
                r.mode,
                r.submitters,
                r.records_per_sec()
            );
            submit_runs.push(r);
        }
        for &cores in &CORE_SWEEP {
            let r = run_pipeline(baseline, cores, pipeline_total);
            println!(
                "  pipeline {:>12}   : {:>12.0} records/s  (p99 {:>9.0} ns, p999 {:>9.0} ns)",
                r.mode,
                r.records_per_sec(),
                r.p99_ns,
                r.p999_ns
            );
            pipeline_runs.push(r);
        }
    }

    // Rescale arms: the Zipf-hot operator, fixed vs growing live.
    let mut rescale_runs: Vec<RescaleResult> = Vec::new();
    if !only_baseline {
        for scale_out in [false, true] {
            let r = run_zipf_rescale(scale_out, rescale_total);
            println!(
                "  rescale {:>13}   : {:>12.0} records/s  ({} instances, {} shards moved)",
                r.mode,
                r.records_per_sec(),
                r.instances_after,
                r.shards_moved
            );
            rescale_runs.push(r);
        }
    }

    // Fan-out scenarios run on the current default plane (rings +
    // Arc-shared forwarders; the ELASTICUTOR_BASELINE env still applies
    // underneath, which is how CI exercises both).
    use elasticutor_core::topology::Grouping;
    let mut fanout_runs: Vec<FanoutResult> = Vec::new();
    if !only_baseline {
        for (mode, grouping, payload) in [
            ("key", Grouping::Key, 16),
            ("shuffle", Grouping::Shuffle, 16),
            ("broadcast", Grouping::Broadcast, 16),
            ("broadcast-4k", Grouping::Broadcast, 4096),
        ] {
            let r = run_fanout(mode, grouping, payload, fanout_total);
            println!(
                "  fan-out {:>13} ({:>4}B): {:>12.0} records/s ({} deliveries)",
                r.mode,
                r.payload_bytes,
                r.records_per_sec(),
                r.deliveries
            );
            fanout_runs.push(r);
        }
    }

    let mut table = Table::new(&["measurement", "mode", "submitters", "records/s"]);
    for r in &submit_runs {
        table.row(vec![
            "submit-path".into(),
            r.mode.into(),
            r.submitters.to_string(),
            format!("{:.0}", r.records_per_sec()),
        ]);
    }
    for r in &pipeline_runs {
        table.row(vec![
            "pipeline".into(),
            r.mode.clone(),
            "1".into(),
            format!("{:.0}", r.records_per_sec()),
        ]);
    }
    for r in &fanout_runs {
        table.row(vec![
            "fan-out".into(),
            r.mode.into(),
            "1".into(),
            format!("{:.0}", r.records_per_sec()),
        ]);
    }
    for r in &rescale_runs {
        table.row(vec![
            "rescale".into(),
            r.mode.into(),
            "1".into(),
            format!("{:.0}", r.records_per_sec()),
        ]);
    }
    println!("\n{}", table.render());

    // Summary ratios (only when both modes ran).
    let rps = |runs: &[RunResult], mode: &str, submitters: usize| {
        runs.iter()
            .find(|r| r.mode == mode && r.submitters == submitters)
            .map(RunResult::records_per_sec)
    };
    let single_speedup = match (
        rps(&submit_runs, "optimized", 1),
        rps(&submit_runs, "baseline", 1),
    ) {
        (Some(o), Some(b)) => Some(o / b),
        _ => None,
    };
    let scaling = |mode: &str| match (rps(&submit_runs, mode, 4), rps(&submit_runs, mode, 1)) {
        (Some(four), Some(one)) => Some(four / one),
        _ => None,
    };
    // Pipeline ratios come off the matrix: mode speedup at matched core
    // count (c2 — the pre-matrix cell), and optimized core scaling
    // (c4 vs c1 — near 1.0 on a 1-core box, the >1.5× acceptance runs
    // on a multi-core runner; the artifact's `hardware_threads` says
    // which one recorded it).
    let pipe_rps = |mode: &str| {
        pipeline_runs
            .iter()
            .find(|r| r.mode == mode)
            .map(PipelineResult::records_per_sec)
    };
    let pipeline_speedup = match (pipe_rps("optimized-c2"), pipe_rps("baseline-c2")) {
        (Some(o), Some(b)) => Some(o / b),
        _ => None,
    };
    let pipeline_core_scaling = match (pipe_rps("optimized-c4"), pipe_rps("optimized-c1")) {
        (Some(four), Some(one)) => Some(four / one),
        _ => None,
    };
    let rescale_rps = |mode: &str| {
        rescale_runs
            .iter()
            .find(|r| r.mode == mode)
            .map(RescaleResult::records_per_sec)
    };
    // Throughput retained while migrating shards to a second instance
    // under Zipf skew, relative to the undisturbed single-instance run.
    let zipf_scaleout_retention = match (rescale_rps("zipf-scaleout"), rescale_rps("zipf-static")) {
        (Some(s), Some(f)) => Some(s / f),
        _ => None,
    };
    let spsc_speedup = match (
        rps(&submit_runs, "spsc", 1),
        rps(&submit_runs, "optimized", 1),
    ) {
        (Some(s), Some(o)) => Some(s / o),
        _ => None,
    };
    // Broadcast byte-insensitivity: Arc-shared replication should make
    // the 4 KiB arm track the 16 B arm (~1.0); deep copies would sink
    // this toward payload-bytes ratios.
    let fanout_rps = |mode: &str| {
        fanout_runs
            .iter()
            .find(|r| r.mode == mode)
            .map(FanoutResult::records_per_sec)
    };
    let broadcast_byte_insensitivity = match (fanout_rps("broadcast-4k"), fanout_rps("broadcast")) {
        (Some(big), Some(small)) => Some(big / small),
        _ => None,
    };
    if let Some(s) = single_speedup {
        println!("single-submitter routed-throughput speedup: {s:.2}x");
    }
    if let Some(s) = spsc_speedup {
        println!("spsc ring vs mpmc channel (1 submitter): {s:.2}x");
    }
    if let (Some(b), Some(o)) = (scaling("baseline"), scaling("optimized")) {
        println!("4-submitter scaling: baseline {b:.2}x, optimized {o:.2}x");
    }
    if let Some(s) = pipeline_speedup {
        println!("end-to-end pipeline speedup (c2): {s:.2}x");
    }
    if let Some(s) = pipeline_core_scaling {
        println!("pipeline core scaling (optimized c4 vs c1): {s:.2}x");
    }
    if let Some(s) = broadcast_byte_insensitivity {
        println!("broadcast 4KiB-vs-16B throughput ratio: {s:.2} (≈1.0 ⇒ O(edges) Arc bumps)");
    }
    if let Some(s) = zipf_scaleout_retention {
        println!("zipf scale-out throughput retention: {s:.2}x vs static single instance");
    }

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"hardware_threads\": {},", hardware_threads());
    json.push_str("  \"submit_path\": [\n");
    for (i, r) in submit_runs.iter().enumerate() {
        json_run(&mut json, r, true);
        json.push_str(if i + 1 < submit_runs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"pipeline\": [\n");
    for (i, r) in pipeline_runs.iter().enumerate() {
        json.push_str("    {");
        let _ = write!(
            json,
            "\"mode\": \"{}\", \"cores\": {}, \"records\": {}, \"elapsed_ns\": {}, \
             \"records_per_sec\": {:.0}, \"p99_ns\": {:.0}, \"p999_ns\": {:.0}",
            r.mode,
            r.cores,
            r.records,
            r.elapsed_ns,
            r.records_per_sec(),
            r.p99_ns,
            r.p999_ns
        );
        json.push('}');
        json.push_str(if i + 1 < pipeline_runs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"fanout\": [\n");
    for (i, r) in fanout_runs.iter().enumerate() {
        json.push_str("    {");
        let _ = write!(
            json,
            "\"mode\": \"{}\", \"payload_bytes\": {}, \"edges\": {}, \"records\": {}, \
             \"deliveries\": {}, \"elapsed_ns\": {}, \"records_per_sec\": {:.0}",
            r.mode,
            r.payload_bytes,
            r.edges,
            r.records,
            r.deliveries,
            r.elapsed_ns,
            r.records_per_sec()
        );
        json.push('}');
        json.push_str(if i + 1 < fanout_runs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"rescale\": [\n");
    for (i, r) in rescale_runs.iter().enumerate() {
        json.push_str("    {");
        let _ = write!(
            json,
            "\"mode\": \"{}\", \"records\": {}, \"elapsed_ns\": {}, \"records_per_sec\": {:.0}, \
             \"instances_after\": {}, \"shards_moved\": {}, \"p99_ns\": {:.0}, \"p999_ns\": {:.0}",
            r.mode,
            r.records,
            r.elapsed_ns,
            r.records_per_sec(),
            r.instances_after,
            r.shards_moved,
            r.p99_ns,
            r.p999_ns
        );
        json.push('}');
        json.push_str(if i + 1 < rescale_runs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"summary\": {\n");
    let fmt_opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.3}"));
    let _ = writeln!(
        json,
        "    \"submit_single_speedup\": {},",
        fmt_opt(single_speedup)
    );
    let _ = writeln!(
        json,
        "    \"spsc_ring_speedup\": {},",
        fmt_opt(spsc_speedup)
    );
    let _ = writeln!(
        json,
        "    \"broadcast_byte_insensitivity\": {},",
        fmt_opt(broadcast_byte_insensitivity)
    );
    let _ = writeln!(
        json,
        "    \"submit_scaling_baseline\": {},",
        fmt_opt(scaling("baseline"))
    );
    let _ = writeln!(
        json,
        "    \"submit_scaling_optimized\": {},",
        fmt_opt(scaling("optimized"))
    );
    let _ = writeln!(
        json,
        "    \"pipeline_speedup\": {},",
        fmt_opt(pipeline_speedup)
    );
    let _ = writeln!(
        json,
        "    \"pipeline_core_scaling\": {},",
        fmt_opt(pipeline_core_scaling)
    );
    let _ = writeln!(
        json,
        "    \"zipf_scaleout_retention\": {}",
        fmt_opt(zipf_scaleout_retention)
    );
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
}
