//! Figure 13 — the impact of the number of executors per operator (y)
//! and the number of shards per executor (z) on Elasticutor's
//! throughput, under three representative workloads, with the static and
//! RC approaches as reference rows.
//!
//! Paper claims to reproduce (§5.3, Figure 13):
//! * more shards help ("as z increases, the throughput generally
//!   increases though the marginal increase is diminishing");
//! * y = 256 (one core per executor) loses elasticity and degrades to
//!   the static approach;
//! * y = 1 collapses under the data-intensive workload (s = 8 KB) —
//!   one executor must scale to many remote cores and remote transfer
//!   is 64× more expensive than in the default workload;
//! * y ∈ {8 (1), 32} is poor (acceptable) under the highly dynamic
//!   workload (ω = 16): few executors ⇒ remote scaling ⇒ migration on
//!   every shuffle; "setting one or two executors per node is robust".

use elasticutor_bench::{fmt_rate, quick_mode, Table, SEC};
use elasticutor_cluster::config::{EngineMode, ExperimentConfig};
use elasticutor_cluster::ClusterEngine;
use elasticutor_workload::MicroConfig;

/// One of the three representative workloads of §5.3.
struct Workload {
    label: &'static str,
    tuple_bytes: u32,
    omega: f64,
}

fn base_micro(w: &Workload) -> MicroConfig {
    MicroConfig {
        // Offered above the 256-core ideal capacity (256 k/s at 1 ms per
        // tuple) so measured throughput is the system's capacity.
        rate: 300_000.0,
        tuple_bytes: w.tuple_bytes,
        omega: w.omega,
        // Spread sources wide so their egress never caps the 8 KB runs.
        generator_parallelism: 32,
        ..MicroConfig::default()
    }
}

fn run(mode: EngineMode, w: &Workload, y: u32, z: u32, quick: bool) -> f64 {
    let mut micro = base_micro(w);
    micro.calculator_executors = y;
    micro.shards_per_executor = z;
    let mut cfg = ExperimentConfig::micro(mode, micro);
    cfg.duration_ns = if quick { 20 * SEC } else { 45 * SEC };
    cfg.warmup_ns = if quick { 8 * SEC } else { 20 * SEC };
    ClusterEngine::new(cfg).run().throughput
}

fn main() {
    let quick = quick_mode();
    let ys: Vec<u32> = if quick {
        vec![1, 32]
    } else {
        vec![1, 8, 32, 256]
    };
    let zs: Vec<u32> = if quick {
        vec![4, 256]
    } else {
        vec![1, 4, 16, 64, 256]
    };
    let workloads = [
        Workload {
            label: "default workload (s = 128 B, omega = 2)",
            tuple_bytes: 128,
            omega: 2.0,
        },
        Workload {
            label: "data-intensive workload (s = 8 KB, omega = 2)",
            tuple_bytes: 8192,
            omega: 2.0,
        },
        Workload {
            label: "highly dynamic workload (s = 128 B, omega = 16)",
            tuple_bytes: 128,
            omega: 16.0,
        },
    ];

    println!("Figure 13: throughput of Elasticutor vs y (executors) and z (shards)");
    println!("cluster: 32 nodes x 8 cores = 256 cores; offered 300k tuples/s\n");

    for (i, w) in workloads.iter().enumerate() {
        println!("Figure 13({}): {}", ["a", "b", "c"][i], w.label);
        let mut headers = vec!["y \\ z".to_string()];
        headers.extend(zs.iter().map(|z| format!("z={z}")));
        let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(&hdr);
        for &y in &ys {
            let mut row = vec![format!("y={y}")];
            for &z in &zs {
                row.push(fmt_rate(run(EngineMode::Elastic, w, y, z, quick)));
            }
            t.row(row);
        }
        // Reference rows: static and RC at the paper's default geometry.
        let mut static_row = vec!["static".to_string()];
        let static_tput = run(EngineMode::Static, w, 32, 256, quick);
        static_row.extend(zs.iter().map(|_| fmt_rate(static_tput)));
        t.row(static_row);
        let mut rc_row = vec!["RC".to_string()];
        let rc_tput = run(EngineMode::ResourceCentric, w, 32, 256, quick);
        rc_row.extend(zs.iter().map(|_| fmt_rate(rc_tput)));
        t.row(rc_row);
        t.print();
        println!();
    }
    println!("paper: z up => throughput up (diminishing); y=256 ~ static; y=1 collapses");
    println!("under 8 KB tuples; small y suffers at omega=16; y=32 (1/node) is robust");
}
