//! Figure 10 — throughput of a single elastic executor as it scales from
//! 1 to 256 cores, under (a) varying per-tuple computation costs and
//! (b) varying tuple sizes.
//!
//! Paper claims to reproduce (§5.2, Figure 10):
//! * the executor "generally can efficiently scale out to the whole
//!   cluster (256 CPU cores)" — near-linear throughput growth;
//! * it "cannot efficiently utilize more than 16 CPU cores with a very
//!   large tuple size, e.g. 8 KB, or very low computation cost, e.g.
//!   0.01 ms per tuple" — the data-intensity wall where remote data
//!   transfer through the main process's NIC becomes the bottleneck.

use elasticutor_bench::scaling::{core_sweep, run_single_executor, ScalingOpts};
use elasticutor_bench::{fmt_rate, quick_mode, Table};

fn main() {
    let quick = quick_mode();
    let cores = core_sweep(quick);

    // ---- (a) varying computation costs, 128 B tuples ----
    let costs_ns: Vec<(u64, &str)> = if quick {
        vec![(1_000_000, "1ms"), (10_000, "0.01ms")]
    } else {
        vec![
            (10_000_000, "10ms"),
            (1_000_000, "1ms"),
            (100_000, "0.1ms"),
            (10_000, "0.01ms"),
        ]
    };
    println!("Figure 10(a): single-executor throughput vs cores, varying CPU cost");
    println!("(tuple size 128 B, shard state 32 KB, omega = 2)\n");
    let mut headers = vec!["cores".to_string()];
    headers.extend(costs_ns.iter().map(|(_, n)| format!("{n}/tuple")));
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut a = Table::new(&hdr);
    for &k in &cores {
        let mut row = vec![format!("{k}")];
        for &(cost, _) in &costs_ns {
            let report = run_single_executor(&ScalingOpts {
                cores: k,
                cpu_cost_ns: cost,
                quick,
                ..ScalingOpts::paper_default(k)
            });
            row.push(fmt_rate(report.throughput));
        }
        a.row(row);
    }
    a.print();
    println!("\npaper: near-linear to 256 cores except 0.01 ms/tuple, which stalls ~16 cores\n");

    // ---- (b) varying tuple sizes, 1 ms/tuple ----
    let sizes: Vec<(u32, &str)> = if quick {
        vec![(128, "128B"), (8192, "8KB")]
    } else {
        vec![(128, "128B"), (512, "512B"), (2048, "2KB"), (8192, "8KB")]
    };
    println!("Figure 10(b): single-executor throughput vs cores, varying tuple size");
    println!("(CPU cost 1 ms/tuple, shard state 32 KB, omega = 2)\n");
    let mut headers = vec!["cores".to_string()];
    headers.extend(sizes.iter().map(|(_, n)| format!("{n} tuples")));
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut b = Table::new(&hdr);
    for &k in &cores {
        let mut row = vec![format!("{k}")];
        for &(bytes, _) in &sizes {
            let report = run_single_executor(&ScalingOpts {
                cores: k,
                tuple_bytes: bytes,
                quick,
                ..ScalingOpts::paper_default(k)
            });
            row.push(fmt_rate(report.throughput));
        }
        b.row(row);
    }
    b.print();
    println!("\npaper: 8 KB tuples stall ~16 cores (remote transfer wall); small tuples scale");
}
