//! Figure 15 — arrival rates of the 5 most popular stocks over time.
//!
//! Paper claims to reproduce (§5.4, Figure 15): per-stock order rates
//! fluctuate strongly and *cross over* — the hottest stock changes over
//! the observation window — which is what makes the SSE workload highly
//! dynamic. The paper plots its proprietary trace; we plot our synthetic
//! generator (the substitution of DESIGN.md §3) and verify it shows the
//! same qualitative behaviour.

use std::collections::HashMap;

use elasticutor_bench::{csv_mode, quick_mode, Table, SEC};
use elasticutor_workload::{SseConfig, SseWorkload, TupleSource};

fn main() {
    let quick = quick_mode();
    let total_min: u64 = if quick { 20 } else { 100 };
    let bucket_min: u64 = if quick { 1 } else { 2 }; // one hot-set rotation per bucket

    // The paper's default dynamics: hot set rotates every 2 minutes,
    // global regime every 5.
    let config = SseConfig::default();
    let mut w = SseWorkload::new(config, 0x55E_F1C);

    // Empirical per-stock arrival counts per bucket.
    let horizon = total_min * 60 * SEC;
    let bucket_ns = bucket_min * 60 * SEC;
    let buckets = (horizon / bucket_ns) as usize;
    let mut counts: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut now = 0u64;
    while now < horizon {
        let (gap, t) = w.next_tuple(now);
        now += gap;
        if now >= horizon {
            break;
        }
        let b = (now / bucket_ns) as usize;
        counts
            .entry(t.key.value())
            .or_insert_with(|| vec![0; buckets])[b] += 1;
    }

    // The 5 most popular stocks over the whole window.
    let mut totals: Vec<(u64, u64)> = counts
        .iter()
        .map(|(&stock, c)| (stock, c.iter().sum()))
        .collect();
    totals.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let top5: Vec<u64> = totals.iter().take(5).map(|&(s, _)| s).collect();

    println!("Figure 15: arrival rates of the 5 most popular stocks (orders/s)");
    println!("synthetic SSE generator, {total_min} min horizon, {bucket_min}-min buckets\n");
    let mut headers = vec!["minute".to_string()];
    headers.extend(top5.iter().map(|s| format!("stock {s}")));
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&hdr);
    // counts is keyed by stock, so bucket iteration stays index-based.
    #[allow(clippy::needless_range_loop)]
    for b in 0..buckets {
        let mut row = vec![format!("{}", b as u64 * bucket_min)];
        for &s in &top5 {
            let n = counts[&s][b];
            row.push(format!("{:.1}", n as f64 / (bucket_min * 60) as f64));
        }
        table.row(row);
    }
    table.print();

    // Quantify the crossover claim: how many buckets have a different
    // leader among the top 5?
    let mut leaders = Vec::with_capacity(buckets);
    #[allow(clippy::needless_range_loop)]
    for b in 0..buckets {
        let leader = top5
            .iter()
            .max_by_key(|&&s| counts[&s][b])
            .copied()
            .expect("top5 nonempty");
        leaders.push(leader);
    }
    let mut distinct = leaders.clone();
    distinct.sort_unstable();
    distinct.dedup();
    println!(
        "\ndistinct leaders among the top 5 across buckets: {} (paper: rates cross over repeatedly)",
        distinct.len()
    );
    if !csv_mode() {
        println!("run with --csv for machine-readable series");
    }
}
