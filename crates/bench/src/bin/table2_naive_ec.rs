//! Table 2 — naive-EC vs Elasticutor on the SSE workload: state
//! migration rate and remote data transfer rate.
//!
//! Paper claims to reproduce (§5.4, Table 2):
//! * naive-EC migrates ~5× more state (13.9 vs 2.4 MB/s) — its
//!   scheduler ignores migration cost when reassigning cores;
//! * naive-EC moves ~10× more remote-task data (235.3 vs 21.6 MB/s) —
//!   its scheduler ignores computation locality, so data-intensive
//!   executors end up with remote cores.

use elasticutor_bench::sse_exp::run_sse;
use elasticutor_bench::{quick_mode, Table};
use elasticutor_cluster::config::EngineMode;

fn main() {
    let quick = quick_mode();
    let nodes = if quick { 8 } else { 32 };
    let (duration_s, warmup_s) = if quick { (30, 10) } else { (90, 30) };

    println!("Table 2: naive-EC vs Elasticutor on the SSE workload ({nodes} nodes)\n");
    let naive = run_sse(EngineMode::NaiveElastic, nodes, duration_s, warmup_s);
    let elastic = run_sse(EngineMode::Elastic, nodes, duration_s, warmup_s);

    let mut t = Table::new(&["metric", "naive-EC", "Elasticutor"]);
    t.row(vec![
        "State migration rate (MB/s)".into(),
        format!("{:.1}", naive.state_migration_rate_mb_s()),
        format!("{:.1}", elastic.state_migration_rate_mb_s()),
    ]);
    t.row(vec![
        "Remote data transfer rate (MB/s)".into(),
        format!("{:.1}", naive.remote_transfer_rate_mb_s()),
        format!("{:.1}", elastic.remote_transfer_rate_mb_s()),
    ]);
    t.row(vec![
        "Throughput (tuples/s)".into(),
        format!("{:.0}", naive.throughput),
        format!("{:.0}", elastic.throughput),
    ]);
    t.print();
    println!("\npaper: naive-EC 13.9 vs 2.4 MB/s migration; 235.3 vs 21.6 MB/s remote transfer");
}
