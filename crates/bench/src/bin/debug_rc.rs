use elasticutor_cluster::config::{EngineMode, ExperimentConfig};
use elasticutor_cluster::ClusterEngine;
use elasticutor_workload::MicroConfig;

fn main() {
    let sec = 1_000_000_000u64;
    let micro = MicroConfig {
        rate: 200_000.0,
        omega: 2.0,
        ..MicroConfig::default()
    };
    let mut cfg = ExperimentConfig::micro(EngineMode::ResourceCentric, micro);
    cfg.duration_ns = 200 * sec;
    cfg.warmup_ns = 150 * sec;
    cfg.backpressure_high = 32_768;
    cfg.backpressure_low = 16_384;
    let r = ClusterEngine::new(cfg).run_debug();
    println!(
        "tput={:.0} lat={:.1}ms reassigns={}",
        r.throughput,
        r.latency.mean_ns() / 1e6,
        r.reassignments.len()
    );
}
