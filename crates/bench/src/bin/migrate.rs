//! Two-process shard migration demo and benchmark — the live analogue
//! of the paper's Figure 9b (migration latency scales with state size
//! over link bandwidth, because only the displaced shards move).
//!
//! The parent process spawns this same binary as a child (`--child
//! ADDR`), connects one duplex migration link, and the two processes
//! run a correctness phase followed by a timed phase:
//!
//! 1. **Correctness under live load.** Shard ownership starts split
//!    (parent `0..32`, child `32..64` of `z = 64`). Both sides submit
//!    per-key-sequenced records — some to shards they own, some to
//!    shards the peer owns (forwarded as `DATA` frames). Mid-load the
//!    parent migrates two of its live-traffic shards to the child and
//!    the child migrates two of its own back, concurrently. Afterwards
//!    both sides assert: zero per-key FIFO violations, and every
//!    submitted key's count equals the submission count in **exactly
//!    one** process (exact state conservation), verified across the
//!    boundary by comparing state digests.
//! 2. **Migration latency vs state size.** Quiet shards are preloaded
//!    at three state sizes and migrated parent→child, timed; results —
//!    latency, drain time, bytes on the wire — go to
//!    `BENCH_migration.json` and a table on stdout.
//!
//! `ELASTICUTOR_QUICK=1` shrinks the load and the state sizes for CI
//! smoke runs. Any assertion failure in the child exits non-zero and
//! fails the parent.

use std::fmt::Write as _;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_bench::{fmt_bytes, fmt_latency_ns, hardware_threads, quick_mode, Table};
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_core::wire::{self, ByteReader, Checksum};
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{
    ElasticExecutor, ExecutorConfig, FifoChecker, MigrationEndpoint, Operator, Record,
};
use elasticutor_state::{ShardSnapshot, StateHandle};

/// Shards per executor; ownership starts split down the middle.
const Z: u32 = 64;
/// Distinct keys submitted per traffic shard.
const KEYS_PER_SHARD: usize = 4;

/// Shards the parent submits records for (first half locally owned —
/// including the two it migrates away mid-load — second half owned by
/// the child, so they exercise forwarding from the first record on).
const PARENT_TRAFFIC: [u32; 8] = [0, 1, 2, 3, 36, 37, 38, 39];
/// The child's traffic shards, disjoint from the parent's so every key
/// has exactly one origin process (the FIFO contract's precondition).
const CHILD_TRAFFIC: [u32; 8] = [32, 33, 34, 35, 4, 5, 6, 7];
/// Shards the parent migrates to the child mid-load.
const PARENT_MIGRATES: [u32; 2] = [0, 1];
/// Shards the child migrates to the parent mid-load.
const CHILD_MIGRATES: [u32; 2] = [32, 33];

fn rounds() -> u64 {
    if quick_mode() {
        300
    } else {
        2_000
    }
}

/// Phase-2 state sizes: (quiet shard, entries of 4 KiB each).
fn bench_sizes() -> Vec<(u32, usize)> {
    if quick_mode() {
        vec![(20, 16), (21, 64), (22, 256)] // 64 KiB, 256 KiB, 1 MiB
    } else {
        vec![(20, 256), (21, 2_048), (22, 16_384)] // 1 MiB, 8 MiB, 64 MiB
    }
}

const BENCH_VALUE_LEN: usize = 4096;

/// Deterministic keys hashing to `shard` — identical in both processes.
fn keys_for_shard(shard: u32) -> Vec<Key> {
    (0u64..)
        .filter(|k| elasticutor_core::hash::key_to_shard(*k, Z) == shard)
        .take(KEYS_PER_SHARD)
        .map(Key)
        .collect()
}

fn counting_op(fifo: Arc<FifoChecker>) -> impl Operator {
    move |r: &Record, s: &StateHandle| {
        fifo.observe(r.key, r.seq);
        s.update(r.key, |old| {
            let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        Vec::new()
    }
}

fn executor(fifo: Arc<FifoChecker>) -> Arc<ElasticExecutor<impl Operator>> {
    Arc::new(ElasticExecutor::start(
        ExecutorConfig {
            num_shards: Z,
            initial_tasks: 2,
            ..ExecutorConfig::default()
        },
        counting_op(fifo),
    ))
}

/// Submits `rounds()` sequenced records for every key of `shards`,
/// bumping `progress` once per round so the main thread can trigger
/// migrations mid-load.
fn run_load<O: Operator>(exec: &ElasticExecutor<O>, shards: &[u32], progress: &AtomicU64) {
    let keys: Vec<Key> = shards.iter().flat_map(|&s| keys_for_shard(s)).collect();
    for round in 1..=rounds() {
        for &key in &keys {
            exec.ingest(Record::new(key, Bytes::new()).with_seq(round));
        }
        progress.store(round, Ordering::Release);
        // Pace the source a little so migrations overlap live traffic.
        if round.is_multiple_of(16) {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

/// The expected final state of a traffic shard: every key counted
/// `rounds()` times.
fn expected_snapshot(shard: u32) -> ShardSnapshot {
    let mut entries: Vec<(Key, Bytes)> = keys_for_shard(shard)
        .into_iter()
        .map(|k| (k, Bytes::copy_from_slice(&rounds().to_le_bytes())))
        .collect();
    entries.sort_by_key(|(k, _)| *k);
    ShardSnapshot {
        shard: ShardId(shard),
        entries,
    }
}

fn digest_of(snap: &ShardSnapshot) -> u64 {
    let mut c = Checksum::new();
    snap.fold_checksum(&mut c);
    c.finish()
}

/// Waits until every shard in `shards` holds exactly its expected
/// final state in `exec`'s store.
fn settle<O: Operator>(exec: &ElasticExecutor<O>, shards: &[u32], side: &str) {
    let ok = wait_until(Duration::from_secs(60), || {
        shards.iter().all(|&s| {
            exec.state()
                .snapshot_shard(ShardId(s))
                .is_some_and(|snap| digest_of(&snap) == digest_of(&expected_snapshot(s)))
        })
    });
    assert!(
        ok,
        "{side}: traffic shards did not settle to their expected final state"
    );
}

// ---------------------------------------------------------------------------
// The cross-process report (APP payload): everything the parent needs
// to assert conservation on the child's half of the key space.
// ---------------------------------------------------------------------------

struct Report {
    fifo_violations: u64,
    processed: u64,
    /// (shard, keys, value bytes, state digest) per non-empty shard.
    shards: Vec<(u32, u64, u64, u64)>,
}

fn encode_report<O: Operator>(exec: &ElasticExecutor<O>, fifo: &FifoChecker) -> Vec<u8> {
    let mut out = Vec::new();
    wire::put_u64(&mut out, fifo.violation_count() as u64);
    wire::put_u64(&mut out, exec.processed_count());
    let shards: Vec<ShardSnapshot> = exec
        .state()
        .shards()
        .into_iter()
        .filter_map(|s| exec.state().snapshot_shard(s))
        .filter(|snap| !snap.is_empty())
        .collect();
    wire::put_u32(&mut out, shards.len() as u32);
    for snap in &shards {
        wire::put_u32(&mut out, snap.shard.0);
        wire::put_u64(&mut out, snap.len() as u64);
        wire::put_u64(&mut out, snap.value_bytes());
        wire::put_u64(&mut out, digest_of(snap));
    }
    out
}

fn decode_report(payload: &[u8]) -> Report {
    let mut r = ByteReader::new(payload);
    let fifo_violations = r.u64().expect("report");
    let processed = r.u64().expect("report");
    let n = r.u32().expect("report");
    let shards = (0..n)
        .map(|_| {
            (
                r.u32().expect("report"),
                r.u64().expect("report"),
                r.u64().expect("report"),
                r.u64().expect("report"),
            )
        })
        .collect();
    Report {
        fifo_violations,
        processed,
        shards,
    }
}

// ---------------------------------------------------------------------------
// Child process.
// ---------------------------------------------------------------------------

fn child_main(addr: &str) {
    let fifo = Arc::new(FifoChecker::new());
    let exec = executor(fifo.clone());
    let endpoint =
        MigrationEndpoint::connect(Arc::clone(&exec), addr).expect("child connects to parent");
    endpoint
        .delegate_shards(&(0..Z / 2).map(ShardId).collect::<Vec<_>>())
        .expect("child delegates the parent's half");

    let progress = Arc::new(AtomicU64::new(0));
    let source = {
        let exec = Arc::clone(&exec);
        let progress = Arc::clone(&progress);
        std::thread::spawn(move || run_load(&exec, &CHILD_TRAFFIC, &progress))
    };
    // Mid-load, hand two live-traffic shards to the parent.
    while progress.load(Ordering::Acquire) < rounds() / 3 {
        std::thread::sleep(Duration::from_millis(1));
    }
    for shard in CHILD_MIGRATES {
        let report = endpoint
            .migrate_out(ShardId(shard))
            .expect("child→parent migration");
        eprintln!(
            "child: migrated sh{shard} out ({} entries, {} wire bytes, {})",
            report.entries,
            report.wire_bytes,
            fmt_latency_ns(report.elapsed_ns as f64)
        );
    }
    source.join().expect("child source");

    // Settle on the shards this side finally owns (that carry traffic):
    // its own non-migrated ones, the peer-origin forwarded ones, and
    // the two adopted from the parent.
    settle(&exec, &[34, 35, 36, 37, 38, 39, 0, 1], "child");
    assert!(
        fifo.is_clean(),
        "child FIFO violations: {:?}",
        fifo.violations()
    );

    // Serve the parent's report requests until told to exit; phase 2
    // (timed inbound migrations) happens passively in the endpoint's
    // reader thread meanwhile.
    loop {
        let msg = endpoint
            .app_messages()
            .recv_timeout(Duration::from_secs(120))
            .expect("parent command");
        match msg.as_slice() {
            b"report" => endpoint
                .send_app(encode_report(&exec, &fifo))
                .expect("send report"),
            b"bye" => break,
            other => panic!("unknown command {other:?}"),
        }
    }
    endpoint.close();
}

// ---------------------------------------------------------------------------
// Parent process.
// ---------------------------------------------------------------------------

fn request_report<O: Operator>(endpoint: &MigrationEndpoint<O>) -> Report {
    endpoint
        .send_app(b"report".to_vec())
        .expect("request report");
    let payload = endpoint
        .app_messages()
        .recv_timeout(Duration::from_secs(120))
        .expect("child report");
    decode_report(&payload)
}

fn parent_main() {
    let out_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_migration.json".to_string());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let exe = std::env::current_exe().expect("own path");
    let mut child = std::process::Command::new(exe)
        .arg("--child")
        .arg(addr.to_string())
        .spawn()
        .expect("spawn child process");

    let fifo = Arc::new(FifoChecker::new());
    let exec = executor(fifo.clone());
    let endpoint = MigrationEndpoint::accept(Arc::clone(&exec), &listener).expect("accept child");
    endpoint
        .delegate_shards(&(Z / 2..Z).map(ShardId).collect::<Vec<_>>())
        .expect("parent delegates the child's half");

    println!(
        "two-process migration demo: z={Z}, {} rounds × {} keys/side{}",
        rounds(),
        PARENT_TRAFFIC.len() * KEYS_PER_SHARD,
        if quick_mode() { " (quick mode)" } else { "" }
    );

    // --- Phase 1: correctness under live load --------------------------
    let progress = Arc::new(AtomicU64::new(0));
    let source = {
        let exec = Arc::clone(&exec);
        let progress = Arc::clone(&progress);
        std::thread::spawn(move || run_load(&exec, &PARENT_TRAFFIC, &progress))
    };
    while progress.load(Ordering::Acquire) < rounds() / 3 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut trade_reports = Vec::new();
    for shard in PARENT_MIGRATES {
        let report = endpoint
            .migrate_out(ShardId(shard))
            .expect("parent→child migration");
        println!(
            "parent: migrated sh{shard} out ({} entries, {} wire bytes, {})",
            report.entries,
            report.wire_bytes,
            fmt_latency_ns(report.elapsed_ns as f64)
        );
        trade_reports.push(report);
    }
    source.join().expect("parent source");

    settle(&exec, &[2, 3, 4, 5, 6, 7, 32, 33], "parent");
    assert!(
        fifo.is_clean(),
        "parent FIFO violations: {:?}",
        fifo.violations()
    );

    // Cross-boundary verification: the child's digests for its final
    // half of the traffic must match what this side computes from the
    // submission plan alone.
    let report = request_report(&endpoint);
    assert_eq!(report.fifo_violations, 0, "child saw FIFO violations");
    let child_final: Vec<u32> = vec![34, 35, 36, 37, 38, 39, 0, 1];
    for &shard in &child_final {
        let expected = expected_snapshot(shard);
        let got = report
            .shards
            .iter()
            .find(|(s, ..)| *s == shard)
            .unwrap_or_else(|| panic!("child does not host traffic shard sh{shard}"));
        assert_eq!(got.1, expected.len() as u64, "key count of sh{shard}");
        assert_eq!(got.2, expected.value_bytes(), "byte count of sh{shard}");
        assert_eq!(got.3, digest_of(&expected), "state digest of sh{shard}");
        // Exactly one owner: this side must NOT hold the shard.
        assert!(
            !exec.state().hosts(ShardId(shard)),
            "sh{shard} hosted on both sides"
        );
    }
    // And nothing this side owns leaked to the child.
    for &shard in &[2u32, 3, 4, 5, 6, 7, 32, 33] {
        assert!(
            !report.shards.iter().any(|(s, ..)| *s == shard),
            "sh{shard} hosted on both sides"
        );
    }
    let total_records =
        rounds() * (PARENT_TRAFFIC.len() + CHILD_TRAFFIC.len()) as u64 * KEYS_PER_SHARD as u64;
    assert_eq!(
        exec.processed_count() + report.processed,
        total_records,
        "every record processed exactly once across the two processes"
    );
    println!(
        "correctness: {} records, {} traded shards, 0 FIFO violations, state conserved",
        total_records,
        PARENT_MIGRATES.len() + CHILD_MIGRATES.len()
    );

    // --- Phase 2: migration latency vs state size ----------------------
    let mut bench_reports = Vec::new();
    for (shard, entries) in bench_sizes() {
        for k in 0..entries as u64 {
            exec.state().put(
                ShardId(shard),
                Key(k),
                Bytes::from(vec![0x5A; BENCH_VALUE_LEN]),
            );
        }
        let report = endpoint
            .migrate_out(ShardId(shard))
            .expect("timed migration");
        bench_reports.push(report);
    }
    // Verify the timed shards actually arrived intact.
    let report = request_report(&endpoint);
    for (r, (shard, entries)) in bench_reports.iter().zip(bench_sizes()) {
        let got = report
            .shards
            .iter()
            .find(|(s, ..)| *s == shard)
            .unwrap_or_else(|| panic!("child does not host bench shard sh{shard}"));
        assert_eq!(got.1, entries as u64);
        assert_eq!(got.2, (entries * BENCH_VALUE_LEN) as u64);
        assert_eq!(r.value_bytes, got.2);
    }

    let mut table = Table::new(&[
        "state size",
        "entries",
        "wire bytes",
        "drain",
        "latency",
        "MiB/s",
    ]);
    for r in &bench_reports {
        table.row(vec![
            fmt_bytes(r.value_bytes),
            r.entries.to_string(),
            fmt_bytes(r.wire_bytes),
            fmt_latency_ns(r.drain_ns as f64),
            fmt_latency_ns(r.elapsed_ns as f64),
            format!(
                "{:.1}",
                r.value_bytes as f64 / (1 << 20) as f64 / (r.elapsed_ns as f64 / 1e9)
            ),
        ]);
    }
    println!("\nmigration latency vs state size (parent→child over localhost TCP)");
    table.print();

    endpoint.send_app(b"bye".to_vec()).expect("dismiss child");
    let status = child.wait().expect("child exits");
    assert!(status.success(), "child process failed: {status}");
    endpoint.close();

    // --- JSON artifact --------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {},", quick_mode());
    let _ = writeln!(json, "  \"hardware_threads\": {},", hardware_threads());
    json.push_str("  \"correctness\": {\n");
    let _ = writeln!(json, "    \"records\": {total_records},");
    let _ = writeln!(json, "    \"fifo_violations\": 0,");
    let _ = writeln!(
        json,
        "    \"parent_to_child_shards\": {:?},",
        PARENT_MIGRATES.to_vec()
    );
    let _ = writeln!(
        json,
        "    \"child_to_parent_shards\": {:?},",
        CHILD_MIGRATES.to_vec()
    );
    json.push_str("    \"live_trade_migrations\": [\n");
    for (i, r) in trade_reports.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"shard\": {}, \"entries\": {}, \"state_bytes\": {}, \"wire_bytes\": {}, \"elapsed_ns\": {}}}",
            r.shard.0, r.entries, r.value_bytes, r.wire_bytes, r.elapsed_ns
        );
        json.push_str(if i + 1 < trade_reports.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  },\n  \"migrations\": [\n");
    for (i, r) in bench_reports.iter().enumerate() {
        // The leading "shard" field doubles as the bench_diff row label,
        // which stays stable across quick/full modes (state sizes do
        // not), so CI's delta table aligns rows run-over-run.
        let _ = write!(
            json,
            "    {{\"shard\": {}, \"state_bytes\": {}, \"entries\": {}, \"wire_bytes\": {}, \"drain_ns\": {}, \"elapsed_ns\": {}, \"mib_per_s\": {:.2}}}",
            r.shard.0,
            r.value_bytes,
            r.entries,
            r.wire_bytes,
            r.drain_ns,
            r.elapsed_ns,
            r.value_bytes as f64 / (1 << 20) as f64 / (r.elapsed_ns as f64 / 1e9)
        );
        json.push_str(if i + 1 < bench_reports.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--child") {
        Some(i) => child_main(args.get(i + 1).expect("--child needs the parent address")),
        None => parent_main(),
    }
}
