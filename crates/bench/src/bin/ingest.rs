//! TCP ingress bench: a localhost flood over 1000 concurrent
//! connections plus a slow-client arm, both feeding a live pipeline
//! through `TcpIngress` and gated on exact conservation and
//! per-connection FIFO.
//!
//! **flood** — 1000 sockets open at once (8 writer threads × 125
//! connections each), every connection streaming record frames as fast
//! as the loopback takes them. Each connection owns one key with
//! strictly increasing seqs, so the pipeline-side `FifoChecker` proves
//! per-connection arrival order survived the epoll readers, the credit
//! ledger, and the DAG admission path. The gate: every record sent is
//! decoded, delivered, and processed exactly once, zero protocol
//! errors, zero FIFO violations.
//!
//! **slow_client** — fewer connections written in 16-byte slivers with
//! pauses, so nearly every epoll wakeup sees a partial frame. Same
//! gates; exercises the incremental reassembly path the flood mostly
//! skips past.
//!
//! Results go to `BENCH_ingest.json` (override with `--out`).
//! `ELASTICUTOR_QUICK=1` shrinks record counts for CI (the connection
//! count of the flood arm stays at 1000 — concurrency is the point).

use std::fmt::Write as _;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_bench::{fmt_latency_ns, fmt_rate, hardware_threads, quick_mode, Table};
use elasticutor_ingress::{write_record_frame, IngressConfig, TcpIngress};
use elasticutor_runtime::{ExecutorConfig, FifoChecker, Ingest, Pipeline, Record, RecordBatch};
use elasticutor_state::StateHandle;

const PAYLOAD: &[u8] = b"ingest!!";
const FRAME_RECORDS: u64 = 50;

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// One pipeline stage counting records and checking per-key FIFO.
fn checked_pipeline(fifo: Arc<FifoChecker>, processed: Arc<AtomicU64>) -> Arc<Pipeline> {
    Arc::new(
        Pipeline::builder()
            .stage(
                "count",
                ExecutorConfig {
                    num_shards: 64,
                    initial_tasks: 2,
                    ..ExecutorConfig::default()
                },
                move |r: &Record, _s: &StateHandle| {
                    fifo.observe(r.key, r.seq);
                    processed.fetch_add(1, Ordering::Relaxed);
                    Vec::new()
                },
            )
            .capacity(16_384)
            .build(),
    )
}

/// Frames `[start, end)` seqs for `key` as ready-to-send wire bytes.
fn frame_bytes(key: u64, start: u64, end: u64) -> Vec<u8> {
    let records: RecordBatch = (start..end)
        .map(|seq| Record::new(key.into(), Bytes::from_static(PAYLOAD)).with_seq(seq))
        .collect();
    let mut out = Vec::with_capacity(6 + records.len() * 28);
    write_record_frame(&mut out, &records).expect("encode frame");
    out
}

struct ArmResult {
    arm: &'static str,
    connections: u64,
    records: u64,
    elapsed_ns: u64,
    records_per_sec: u64,
    mib_per_s: f64,
    stalls: u64,
    p99_ns: f64,
}

/// 1000 concurrent connections flooding the ingress as fast as loopback
/// allows. `writer_threads` share the sockets so a 1-core box is not
/// asked for a thousand OS threads.
fn flood(connections: u64, per_conn: u64, writer_threads: u64) -> ArmResult {
    let fifo = Arc::new(FifoChecker::new());
    let processed = Arc::new(AtomicU64::new(0));
    let pipe = checked_pipeline(Arc::clone(&fifo), Arc::clone(&processed));
    let ingress = TcpIngress::bind(
        IngressConfig {
            readers: 2,
            credit: 4_096,
            ..IngressConfig::default()
        },
        Arc::clone(&pipe) as Arc<dyn Ingest>,
    )
    .expect("bind ingress");
    let addr = ingress.local_addr();

    let start = Instant::now();
    let writers: Vec<_> = (0..writer_threads)
        .map(|w| {
            std::thread::spawn(move || {
                let lo = w * connections / writer_threads;
                let hi = (w + 1) * connections / writer_threads;
                // All of this thread's sockets are opened before the
                // first record: the flood runs with every connection
                // concurrently established.
                let mut socks: Vec<TcpStream> = (lo..hi)
                    .map(|_| TcpStream::connect(addr).expect("connect flood client"))
                    .collect();
                let mut sent = 0u64;
                for frame_start in (1..=per_conn).step_by(FRAME_RECORDS as usize) {
                    let frame_end = (frame_start + FRAME_RECORDS).min(per_conn + 1);
                    for (i, sock) in socks.iter_mut().enumerate() {
                        let key = lo + i as u64;
                        sock.write_all(&frame_bytes(key, frame_start, frame_end))
                            .expect("flood write");
                        sent += frame_end - frame_start;
                    }
                }
                for sock in &mut socks {
                    sock.flush().expect("flood flush");
                }
                sent
            })
        })
        .collect();
    let total: u64 = writers.into_iter().map(|t| t.join().expect("writer")).sum();
    assert_eq!(total, connections * per_conn);

    assert!(
        wait_until(Duration::from_secs(300), || {
            processed.load(Ordering::Relaxed) == total
        }),
        "flood: pipeline processed {} of {total}",
        processed.load(Ordering::Relaxed)
    );
    let elapsed = start.elapsed();
    let stats = ingress.shutdown();

    // The gates: exact conservation end to end, clean protocol, and
    // per-connection FIFO all the way into the operator.
    assert_eq!(stats.accepted, connections, "flood: connection count");
    assert_eq!(stats.records_in, total, "flood: decode conservation");
    assert_eq!(
        stats.records_delivered, total,
        "flood: delivery conservation"
    );
    assert_eq!(stats.protocol_errors, 0, "flood: protocol errors");
    assert!(
        fifo.is_clean(),
        "flood: FIFO violations {:?}",
        fifo.violations()
    );
    assert_eq!(fifo.keys_seen() as u64, connections);

    let pipe = Arc::try_unwrap(pipe).unwrap_or_else(|_| panic!("pipeline still shared"));
    let stage = pipe.stage_stats().remove(0);
    pipe.shutdown();
    ArmResult {
        arm: "flood",
        connections,
        records: total,
        elapsed_ns: elapsed.as_nanos() as u64,
        records_per_sec: (total as f64 / elapsed.as_secs_f64()) as u64,
        mib_per_s: stats.bytes_in as f64 / (1 << 20) as f64 / elapsed.as_secs_f64(),
        stalls: stats.stalls,
        p99_ns: stage.stats.latency.quantile_ns(0.99),
    }
}

/// Slow clients: every frame dribbles in 16-byte slivers with pauses,
/// so the readers continuously reassemble partial frames.
fn slow_client(connections: u64, per_conn: u64) -> ArmResult {
    let fifo = Arc::new(FifoChecker::new());
    let processed = Arc::new(AtomicU64::new(0));
    let pipe = checked_pipeline(Arc::clone(&fifo), Arc::clone(&processed));
    let ingress = TcpIngress::bind(
        IngressConfig {
            readers: 2,
            ..IngressConfig::default()
        },
        Arc::clone(&pipe) as Arc<dyn Ingest>,
    )
    .expect("bind ingress");
    let addr = ingress.local_addr();

    let start = Instant::now();
    // One writer thread sweeps all connections, advancing each by one
    // sliver per sweep — interleaved partial frames across the pool.
    let total = {
        let mut socks: Vec<TcpStream> = (0..connections)
            .map(|_| TcpStream::connect(addr).expect("connect slow client"))
            .collect();
        let mut streams: Vec<(Vec<u8>, usize, u64)> =
            (0..connections).map(|_| (Vec::new(), 0, 1u64)).collect();
        let mut live = connections;
        while live > 0 {
            live = 0;
            for (i, sock) in socks.iter_mut().enumerate() {
                let (buf, pos, next_seq) = &mut streams[i];
                if *pos == buf.len() {
                    if *next_seq > per_conn {
                        continue;
                    }
                    let end = (*next_seq + 20).min(per_conn + 1);
                    *buf = frame_bytes(i as u64, *next_seq, end);
                    *pos = 0;
                    *next_seq = end;
                }
                let sliver = (*pos + 16).min(buf.len());
                sock.write_all(&buf[*pos..sliver]).expect("slow write");
                *pos = sliver;
                live += 1;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        for sock in &mut socks {
            sock.flush().expect("slow flush");
        }
        connections * per_conn
    };

    assert!(
        wait_until(Duration::from_secs(300), || {
            processed.load(Ordering::Relaxed) == total
        }),
        "slow_client: pipeline processed {} of {total}",
        processed.load(Ordering::Relaxed)
    );
    let elapsed = start.elapsed();
    let stats = ingress.shutdown();

    assert_eq!(stats.records_in, total, "slow_client: decode conservation");
    assert_eq!(
        stats.records_delivered, total,
        "slow_client: delivery conservation"
    );
    assert_eq!(stats.protocol_errors, 0, "slow_client: protocol errors");
    assert!(fifo.is_clean(), "slow_client: FIFO violations");
    assert_eq!(fifo.keys_seen() as u64, connections);

    let pipe = Arc::try_unwrap(pipe).unwrap_or_else(|_| panic!("pipeline still shared"));
    let stage = pipe.stage_stats().remove(0);
    pipe.shutdown();
    ArmResult {
        arm: "slow_client",
        connections,
        records: total,
        elapsed_ns: elapsed.as_nanos() as u64,
        records_per_sec: (total as f64 / elapsed.as_secs_f64()) as u64,
        mib_per_s: stats.bytes_in as f64 / (1 << 20) as f64 / elapsed.as_secs_f64(),
        stalls: stats.stalls,
        p99_ns: stage.stats.latency.quantile_ns(0.99),
    }
}

fn main() {
    let out_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_ingest.json".to_string());

    let (flood_per_conn, slow_conns, slow_per_conn) = if quick_mode() {
        (200, 40, 60)
    } else {
        (2_000, 100, 400)
    };
    println!(
        "ingest bench: 1000-connection flood + slow-client arm{}",
        if quick_mode() { " (quick mode)" } else { "" }
    );

    let results = vec![
        flood(1_000, flood_per_conn, 8),
        slow_client(slow_conns, slow_per_conn),
    ];

    let mut table = Table::new(&["arm", "conns", "records", "rec/s", "MiB/s", "stalls", "p99"]);
    for r in &results {
        table.row(vec![
            r.arm.to_string(),
            r.connections.to_string(),
            r.records.to_string(),
            fmt_rate(r.records_per_sec as f64),
            format!("{:.1}", r.mib_per_s),
            r.stalls.to_string(),
            fmt_latency_ns(r.p99_ns),
        ]);
    }
    println!("\ningress arms (conservation + per-connection FIFO gated)");
    table.print();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {},", quick_mode());
    let _ = writeln!(json, "  \"hardware_threads\": {},", hardware_threads());
    json.push_str("  \"ingest\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"arm\": \"{}\", \"connections\": {}, \"records\": {}, \"elapsed_ns\": {}, \
             \"records_per_sec\": {}, \"mib_per_s\": {:.1}, \"stalls\": {}, \"p99_ns\": {:.0}, \
             \"protocol_errors\": 0, \"fifo_violations\": 0}}",
            r.arm,
            r.connections,
            r.records,
            r.elapsed_ns,
            r.records_per_sec,
            r.mib_per_s,
            r.stalls,
            r.p99_ns
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
}
