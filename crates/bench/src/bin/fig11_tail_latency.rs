//! Figure 11 — 99th-percentile processing latency of a single elastic
//! executor as it scales out, under (a) varying computation costs and
//! (b) varying tuple sizes.
//!
//! Paper claims to reproduce (§5.2, Figure 11):
//! * "in most settings, processing latency does not increase noticeably
//!   as the elastic executor scales out";
//! * "in the data-intensive workload, e.g., computational cost ≤ 0.1 ms
//!   or tuple size ≥ 2 KB, the latency increases greatly as the number
//!   of allocated CPU cores exceeds the points where remote data
//!   transfer becomes the performance bottleneck";
//! * "the latency does not grow infinitely, due to the back-pressure
//!   mechanism".

use elasticutor_bench::scaling::{core_sweep, run_single_executor, ScalingOpts};
use elasticutor_bench::{fmt_latency_ns, quick_mode, Table};

fn main() {
    let quick = quick_mode();
    let cores = core_sweep(quick);

    // ---- (a) varying computation costs, 128 B tuples ----
    let costs_ns: Vec<(u64, &str)> = if quick {
        vec![(1_000_000, "1ms"), (10_000, "0.01ms")]
    } else {
        vec![
            (10_000_000, "10ms"),
            (1_000_000, "1ms"),
            (100_000, "0.1ms"),
            (10_000, "0.01ms"),
        ]
    };
    println!("Figure 11(a): single-executor p99 latency vs cores, varying CPU cost");
    println!("(tuple size 128 B, shard state 32 KB, omega = 2)\n");
    let mut headers = vec!["cores".to_string()];
    headers.extend(costs_ns.iter().map(|(_, n)| format!("{n}/tuple")));
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut a = Table::new(&hdr);
    for &k in &cores {
        let mut row = vec![format!("{k}")];
        for &(cost, _) in &costs_ns {
            let report = run_single_executor(&ScalingOpts {
                cores: k,
                cpu_cost_ns: cost,
                quick,
                ..ScalingOpts::paper_default(k)
            });
            row.push(fmt_latency_ns(report.latency.p99_ns()));
        }
        a.row(row);
    }
    a.print();
    println!("\npaper: flat p99 while compute-bound; blows up past the data-intensity wall\n");

    // ---- (b) varying tuple sizes, 1 ms/tuple ----
    let sizes: Vec<(u32, &str)> = if quick {
        vec![(128, "128B"), (8192, "8KB")]
    } else {
        vec![(128, "128B"), (512, "512B"), (2048, "2KB"), (8192, "8KB")]
    };
    println!("Figure 11(b): single-executor p99 latency vs cores, varying tuple size");
    println!("(CPU cost 1 ms/tuple, shard state 32 KB, omega = 2)\n");
    let mut headers = vec!["cores".to_string()];
    headers.extend(sizes.iter().map(|(_, n)| format!("{n} tuples")));
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut b = Table::new(&hdr);
    for &k in &cores {
        let mut row = vec![format!("{k}")];
        for &(bytes, _) in &sizes {
            let report = run_single_executor(&ScalingOpts {
                cores: k,
                tuple_bytes: bytes,
                quick,
                ..ScalingOpts::paper_default(k)
            });
            row.push(fmt_latency_ns(report.latency.p99_ns()));
        }
        b.row(row);
    }
    b.print();
    println!("\npaper: latency grows greatly for >=2KB tuples past ~16-32 cores, bounded by backpressure");
}
