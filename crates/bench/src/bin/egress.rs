//! Chaos suite for the at-least-once egress plane: kills the sink (or
//! the egress process itself) at every delivery-path fail point and
//! proves the contract — **zero lost records, per-key FIFO at the
//! receiver, duplicates bounded by the ACK watermark window** — plus a
//! degraded-mode throughput gate.
//!
//! **Kill matrix (two-process).** The parent drives a [`TcpEgress`]
//! through a deterministic mixed-size workload while the child runs the
//! protocol's other half with exactly one fail point armed via
//! `ELASTICUTOR_FAILPOINTS=<point>=kill@<p>` (seeded, reproducible):
//!
//! * `clean` — no fault; baseline drain.
//! * `sink.mid_frame` — the sink dies on `egress.frame` (post-decode,
//!   pre-delivery); the egress fails over to a respawned sink and the
//!   receiver's watermark bounds redelivery.
//! * `sink.mid_ack` — the sink dies on `egress.ack` (post-delivery,
//!   pre-ACK); the unACKed tail is retransmitted after the deadline.
//! * `sink.drain_kill` — the sink is down while the whole workload
//!   spills to disk, then comes up armed and dies mid-drain; a second
//!   respawn finishes the drain.
//! * `failover` — the primary address is never served; everything lands
//!   on the standby.
//! * `egress_dies_spill` — roles reversed: the **egress child** dies on
//!   `egress.spill` with a non-empty outbox; a recovered child reopens
//!   the spill directory and drains it without re-consuming anything.
//!
//! The sink journals every delivery (`delivered.log`, unbuffered
//! appends) and persists its watermark, so verification reads the disk:
//! every delivery sequence exactly present, every record's key /
//! per-key seq / payload checksum matching the deterministic workload,
//! per-key FIFO on first delivery, duplicates ≤ one frame's worth.
//!
//! **Degraded mode (single-process).** A pipeline with an unreachable
//! sink must keep processing at full rate — DAG throughput with the
//! egress spilling is gated at ≥ 0.8× the no-sink baseline.
//!
//! Results go to `BENCH_egress.json` (override with `--out`).
//! `ELASTICUTOR_QUICK=1` shrinks record counts and payloads for CI.

use std::fmt::Write as _;
use std::io::Write as _;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_bench::{fmt_rate, hardware_threads, quick_mode, Table};
use elasticutor_core::ids::Key;
use elasticutor_core::wire::Checksum;
use elasticutor_egress::{EgressConfig, EgressServer, EgressServerConfig, TcpEgress};
use elasticutor_runtime::{Backoff, ExecutorConfig, Ingest, Pipeline, Record, Sink};
use elasticutor_state::StateHandle;

// ---------------------------------------------------------------------------
// Deterministic workload: delivery seq `s` fully determines the record.
// ---------------------------------------------------------------------------

/// Keys cycle round-robin, so per-key record seqs are `(s-1)/KEYS + 1`.
const KEYS: u64 = 4;
/// Records per egress batch (= per DATA frame).
const BATCH: u64 = 8;

fn batches() -> u64 {
    if quick_mode() {
        60
    } else {
        400
    }
}

fn total_records() -> u64 {
    batches() * BATCH
}

fn key_of(seq: u64) -> u64 {
    (seq - 1) % KEYS
}

fn rec_seq_of(seq: u64) -> u64 {
    (seq - 1) / KEYS + 1
}

/// Mixed payload sizes: mostly 16 B, a 4 KiB band, and a large-record
/// spike every 64th (256 KiB full / 16 KiB quick) — frame sizes span
/// three orders of magnitude across the kill matrix.
fn payload_len(seq: u64) -> usize {
    if seq.is_multiple_of(64) {
        if quick_mode() {
            16 * 1024
        } else {
            256 * 1024
        }
    } else if (1..=3).contains(&(seq % 16)) {
        4 * 1024
    } else {
        16
    }
}

fn payload_for(seq: u64) -> Bytes {
    let fill = (seq as u8).wrapping_mul(31) ^ key_of(seq) as u8;
    Bytes::from(vec![fill; payload_len(seq)])
}

fn fnv_of(seq: u64) -> u64 {
    let mut c = Checksum::new();
    c.write(&payload_for(seq));
    c.finish()
}

/// Pushes the whole workload through `egress` in `BATCH`-record
/// consumes; delivery seqs are assigned 1..=N in this exact order.
fn feed(egress: &mut TcpEgress) {
    let mut seq = 1u64;
    for _ in 0..batches() {
        let batch: Vec<Record> = (0..BATCH)
            .map(|_| {
                let s = seq;
                seq += 1;
                Record::new(Key(key_of(s)), payload_for(s)).with_seq(rec_seq_of(s))
            })
            .collect();
        egress.consume(batch);
    }
}

fn retry_policy() -> Backoff {
    Backoff {
        base: Duration::from_millis(10),
        factor: 2.0,
        cap: Duration::from_millis(200),
        max_attempts: 3,
    }
}

fn egress_config(primary: &str, standby: Option<&str>, spill: PathBuf) -> EgressConfig {
    let cfg = EgressConfig::new(primary, spill)
        .with_retry(retry_policy())
        .with_ack_deadline(Duration::from_millis(300));
    match standby {
        Some(s) => cfg.with_standby(s),
        None => cfg,
    }
}

/// A fresh ephemeral address: bound once and dropped, so rebinding it
/// later carries no TIME_WAIT baggage (a listener with no accepted
/// connections closes clean).
fn pick_addr() -> String {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind")
        .local_addr()
        .expect("addr")
        .to_string()
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

fn wait_exit(
    child: &mut std::process::Child,
    timeout: Duration,
) -> Option<std::process::ExitStatus> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            return Some(st);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------------
// Delivery-log verification (the sink's on-disk journal of deliveries).
// ---------------------------------------------------------------------------

/// One delivered record as journaled: `(seq, key, rec_seq, fnv, len)`.
type Delivery = (u64, u64, u64, u64, usize);

/// Parses `delivered.log` lines (`seq key rec_seq fnv len`). A torn
/// final line (the sink died mid-append) is tolerated: its frame was
/// not yet watermarked, so the record reappears intact after recovery.
fn read_log(path: &Path) -> Vec<Delivery> {
    let data = std::fs::read_to_string(path).expect("delivered.log");
    data.lines()
        .filter_map(|line| {
            let mut it = line.split_ascii_whitespace();
            Some((
                it.next()?.parse().ok()?,
                it.next()?.parse().ok()?,
                it.next()?.parse().ok()?,
                it.next()?.parse().ok()?,
                it.next()?.parse().ok()?,
            ))
        })
        .collect()
}

/// Gates the arm: zero loss over `1..=n`, every delivered record
/// byte-faithful to the workload, per-key FIFO on first delivery, and
/// duplicates bounded by the watermark window. Returns the dup count.
fn verify_deliveries(name: &str, lines: &[Delivery], n: u64) -> u64 {
    let mut seen = vec![0u32; n as usize + 1];
    let mut last_rec = [0u64; KEYS as usize];
    for &(seq, key, rec_seq, fnv, len) in lines {
        assert!(seq >= 1 && seq <= n, "{name}: invented delivery seq {seq}");
        assert_eq!(key, key_of(seq), "{name}: seq {seq} delivered wrong key");
        assert_eq!(rec_seq, rec_seq_of(seq), "{name}: seq {seq} wrong rec_seq");
        assert_eq!(len, payload_len(seq), "{name}: seq {seq} wrong length");
        assert_eq!(fnv, fnv_of(seq), "{name}: seq {seq} payload altered");
        if seen[seq as usize] == 0 {
            let last = &mut last_rec[key as usize];
            assert_eq!(
                rec_seq,
                *last + 1,
                "{name}: per-key FIFO broken at seq {seq}"
            );
            *last = rec_seq;
        }
        seen[seq as usize] += 1;
    }
    let missing: Vec<u64> = (1..=n).filter(|&s| seen[s as usize] == 0).collect();
    assert!(
        missing.is_empty(),
        "{name}: {} records lost (first: {:?})",
        missing.len(),
        &missing[..missing.len().min(8)]
    );
    let dups: u64 = seen.iter().map(|&c| u64::from(c.saturating_sub(1))).sum();
    assert!(
        dups <= 2 * BATCH,
        "{name}: {dups} duplicate deliveries — beyond the watermark window"
    );
    dups
}

// ---------------------------------------------------------------------------
// Child processes.
// ---------------------------------------------------------------------------

/// Sink child: an [`EgressServer`] journaling every delivery to
/// `delivered.log` and persisting its watermark in `dir` — both shared
/// across respawns, so a successor continues where the victim died.
fn sink_main(bind: String, dir: PathBuf) {
    std::fs::create_dir_all(&dir).expect("sink dir");
    let log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("delivered.log"))
        .expect("open delivered.log");
    let log = Mutex::new(log);
    let _server = EgressServer::bind(
        EgressServerConfig::new(bind).with_watermark_path(dir.join("wm")),
        Box::new(move |seq, key, rec_seq, payload| {
            let mut c = Checksum::new();
            c.write(&payload);
            let line = format!(
                "{seq} {} {rec_seq} {} {}\n",
                key.0,
                c.finish(),
                payload.len()
            );
            // One raw write per record: page-cache appends survive the
            // armed abort, and a torn tail is tolerated by the parser.
            log.lock()
                .unwrap()
                .write_all(line.as_bytes())
                .expect("log append");
        }),
    )
    .expect("sink binds");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Egress child (the `egress_dies_spill` victim/recoverer): consumes
/// the workload into a [`TcpEgress`] aimed at the parent's server. With
/// `egress.spill=kill@p` armed it dies mid-workload, leaving a
/// non-empty outbox; respawned with `--recovered` it re-opens the same
/// spill directory, drains it (consuming nothing new), and reports the
/// acked count through `result`.
fn egress_child_main(addr: String, spill: PathBuf, result: PathBuf, recovered: bool) {
    let mut egress =
        TcpEgress::new(egress_config(&addr, None, spill)).expect("egress child opens spill");
    if !recovered {
        feed(&mut egress);
    }
    assert!(
        egress.handle().drain(Duration::from_secs(120)),
        "egress child: drain timed out"
    );
    let stats = egress.shutdown(Duration::from_secs(5));
    let tmp = result.with_extension("tmp");
    std::fs::write(&tmp, stats.acked.to_string()).expect("write result");
    std::fs::rename(&tmp, &result).expect("publish result");
}

fn spawn_sink(exe: &Path, addr: &str, dir: &Path, point: Option<&str>) -> std::process::Child {
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--sink").arg(addr).arg("--dir").arg(dir);
    match point {
        Some(spec) => cmd.env("ELASTICUTOR_FAILPOINTS", spec),
        None => cmd.env_remove("ELASTICUTOR_FAILPOINTS"),
    };
    cmd.spawn().expect("spawn sink child")
}

// ---------------------------------------------------------------------------
// Parent: the kill matrix.
// ---------------------------------------------------------------------------

enum Plan {
    /// Clean sink on the primary the whole run.
    Clean,
    /// Sink on the primary armed with `spec`; after it dies, a clean
    /// respawn on the standby finishes the stream.
    KillThenFailover(&'static str),
    /// Nothing listens while the whole workload spills; then an armed
    /// sink dies mid-drain and a clean respawn completes it.
    SpillThenKill(&'static str),
    /// The primary is never served; only a clean standby exists.
    StandbyOnly,
}

struct ArmResult {
    name: &'static str,
    records: u64,
    duplicates: u64,
    retransmitted: u64,
    failovers: u64,
    connects: u64,
    drain_ms: u64,
}

fn run_sink_arm(name: &'static str, plan: Plan, dir: &Path) -> ArmResult {
    let n = total_records();
    let exe = std::env::current_exe().expect("own path");
    let arm_dir = dir.join(name);
    std::fs::create_dir_all(&arm_dir).expect("arm dir");
    let sink_dir = arm_dir.join("sink");
    let (addr_a, addr_b) = (pick_addr(), pick_addr());
    let cfg = egress_config(&addr_a, Some(&addr_b), arm_dir.join("spill"));

    let mut egress = TcpEgress::new(cfg).expect("egress opens");
    let handle = egress.handle();
    let drained = |t: u64| {
        let h = handle.clone();
        move || {
            let s = h.stats();
            s.acked >= s.last_appended && s.last_appended == t
        }
    };

    let drain_ms;
    let mut survivor = match plan {
        Plan::Clean => {
            let child = spawn_sink(&exe, &addr_a, &sink_dir, None);
            feed(&mut egress);
            let t0 = Instant::now();
            assert!(
                wait_until(Duration::from_secs(120), drained(n)),
                "{name}: drain timed out"
            );
            drain_ms = t0.elapsed().as_millis() as u64;
            child
        }
        Plan::KillThenFailover(spec) => {
            let mut victim = spawn_sink(&exe, &addr_a, &sink_dir, Some(spec));
            feed(&mut egress);
            let st = wait_exit(&mut victim, Duration::from_secs(120))
                .unwrap_or_else(|| panic!("{name}: armed sink never died"));
            assert!(!st.success(), "{name}: sink exited clean under {spec}");
            let t0 = Instant::now();
            let child = spawn_sink(&exe, &addr_b, &sink_dir, None);
            assert!(
                wait_until(Duration::from_secs(120), drained(n)),
                "{name}: post-failover drain timed out"
            );
            drain_ms = t0.elapsed().as_millis() as u64;
            child
        }
        Plan::SpillThenKill(spec) => {
            feed(&mut egress);
            let s = handle.stats();
            assert_eq!(s.last_appended, n, "{name}: outbox incomplete");
            assert_eq!(s.acked, 0, "{name}: acked with no sink alive");
            assert!(s.spill_frames > 0, "{name}: nothing spilled");
            assert!(
                wait_until(Duration::from_secs(10), || handle.stats().connect_failures
                    > 0),
                "{name}: no connect attempts against the dead sink"
            );
            let mut victim = spawn_sink(&exe, &addr_a, &sink_dir, Some(spec));
            let st = wait_exit(&mut victim, Duration::from_secs(120))
                .unwrap_or_else(|| panic!("{name}: armed sink survived the drain"));
            assert!(!st.success(), "{name}: sink exited clean under {spec}");
            let t0 = Instant::now();
            let child = spawn_sink(&exe, &addr_b, &sink_dir, None);
            assert!(
                wait_until(Duration::from_secs(120), drained(n)),
                "{name}: recovery drain timed out"
            );
            drain_ms = t0.elapsed().as_millis() as u64;
            child
        }
        Plan::StandbyOnly => {
            let child = spawn_sink(&exe, &addr_b, &sink_dir, None);
            feed(&mut egress);
            let t0 = Instant::now();
            assert!(
                wait_until(Duration::from_secs(120), drained(n)),
                "{name}: standby drain timed out"
            );
            drain_ms = t0.elapsed().as_millis() as u64;
            assert!(
                handle.stats().failovers >= 1,
                "{name}: never failed over to the standby"
            );
            child
        }
    };

    let stats = egress.shutdown(Duration::from_secs(10));
    assert_eq!(stats.acked, n, "{name}: not everything was acked");
    let _ = survivor.kill();
    let _ = survivor.wait();
    let duplicates = verify_deliveries(name, &read_log(&sink_dir.join("delivered.log")), n);
    ArmResult {
        name,
        records: n,
        duplicates,
        retransmitted: stats.records_retransmitted,
        failovers: stats.failovers,
        connects: stats.connects,
        drain_ms,
    }
}

/// Roles reversed: the egress process is the victim, dying on
/// `egress.spill` with a non-empty outbox. The parent hosts the sink
/// in-process and verifies the recovered child drains exactly the
/// accepted prefix — nothing lost, nothing invented, FIFO intact.
fn run_egress_death_arm(dir: &Path) -> ArmResult {
    let name = "egress_dies_spill";
    let arm_dir = dir.join(name);
    std::fs::create_dir_all(&arm_dir).expect("arm dir");
    let exe = std::env::current_exe().expect("own path");
    let log: Arc<Mutex<Vec<Delivery>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    let server = EgressServer::bind(
        EgressServerConfig::new("127.0.0.1:0").with_watermark_path(arm_dir.join("wm")),
        Box::new(move |seq, key, rec_seq, payload| {
            let mut c = Checksum::new();
            c.write(&payload);
            sink.lock()
                .unwrap()
                .push((seq, key.0, rec_seq, c.finish(), payload.len()));
        }),
    )
    .expect("parent sink binds");
    let addr = server.local_addr().to_string();
    let spill = arm_dir.join("spill");
    let result = arm_dir.join("result");

    let child_cmd = |recovered: bool, point: Option<&str>| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--egress")
            .arg(&addr)
            .arg("--spill")
            .arg(&spill)
            .arg("--result")
            .arg(&result);
        if recovered {
            cmd.arg("--recovered");
        }
        match point {
            Some(spec) => cmd.env("ELASTICUTOR_FAILPOINTS", spec),
            None => cmd.env_remove("ELASTICUTOR_FAILPOINTS"),
        };
        cmd.spawn().expect("spawn egress child")
    };

    let mut victim = child_cmd(false, Some("egress.spill=kill@0.1"));
    let st = wait_exit(&mut victim, Duration::from_secs(120)).expect("victim exits");
    assert!(
        !st.success(),
        "{name}: egress child survived the armed kill"
    );

    let t0 = Instant::now();
    let mut recoverer = child_cmd(true, None);
    let st = wait_exit(&mut recoverer, Duration::from_secs(180)).expect("recoverer exits");
    assert!(st.success(), "{name}: recovery child failed: {st}");
    let drain_ms = t0.elapsed().as_millis() as u64;

    let accepted: u64 = std::fs::read_to_string(&result)
        .expect("result file")
        .trim()
        .parse()
        .expect("accepted count");
    assert!(accepted > 0, "{name}: the kill fired before any accept");
    assert!(
        accepted < total_records(),
        "{name}: the kill never interrupted the workload"
    );
    assert!(
        wait_until(Duration::from_secs(30), || server.stats().watermark
            == accepted),
        "{name}: server watermark never reached the accepted prefix"
    );
    let lines = log.lock().unwrap().clone();
    let duplicates = verify_deliveries(name, &lines, accepted);
    let stats = server.stats();
    server.shutdown();
    ArmResult {
        name,
        records: accepted,
        duplicates,
        retransmitted: stats.duplicates_dropped,
        failovers: 0,
        connects: stats.connections,
        drain_ms,
    }
}

// ---------------------------------------------------------------------------
// Degraded-mode throughput: unreachable sink must not slow the DAG.
// ---------------------------------------------------------------------------

struct DegradedResult {
    records: u64,
    baseline_rps: f64,
    degraded_rps: f64,
    spill_frames: u64,
}

fn degraded_arm(dir: &Path) -> DegradedResult {
    let m: u64 = if quick_mode() { 40_000 } else { 200_000 };
    const DAG_KEYS: u64 = 64;

    // A realistic stateful stage (count per key, pass the record on):
    // DAG throughput is bounded by operator work, so the gate measures
    // whether the sink *blocks* the DAG — not how a free-running
    // pass-through shares cores with the sink's encode/write threads.
    let build = || {
        Pipeline::builder()
            .max_batch(256)
            .stage(
                "count",
                ExecutorConfig {
                    num_shards: 8,
                    initial_tasks: 2,
                    ..ExecutorConfig::default()
                },
                |r: &Record, s: &StateHandle| {
                    s.update(r.key, |old| {
                        let n = old
                            .map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
                        Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
                    });
                    vec![r.clone()]
                },
            )
            .build()
    };
    let submit_all = |pipe: &Pipeline| -> f64 {
        let mut seqs = [0u64; DAG_KEYS as usize];
        let t0 = Instant::now();
        for i in 0..m {
            let k = i % DAG_KEYS;
            seqs[k as usize] += 1;
            pipe.ingest(
                Record::new(Key(k), Bytes::from_static(b"0123456789abcdef"))
                    .with_seq(seqs[k as usize]),
            );
        }
        pipe.drain();
        m as f64 / t0.elapsed().as_secs_f64()
    };

    // Baseline: no sink, a trivial drainer keeps the output channel from
    // accumulating.
    let pipe = build();
    let rx = pipe.outputs().clone();
    let drainer = std::thread::spawn(move || {
        let mut n = 0u64;
        while n < m {
            match rx.recv_timeout(Duration::from_secs(60)) {
                Ok(batch) => n += batch.len() as u64,
                Err(_) => break,
            }
        }
        n
    });
    let baseline_rps = submit_all(&pipe);
    assert_eq!(drainer.join().expect("drainer"), m, "baseline lost records");
    pipe.shutdown();

    // Degraded: the sink spills every record to disk against a dead
    // address — the DAG must not notice.
    let pipe = build();
    let egress = TcpEgress::new(egress_config(
        &pick_addr(),
        None,
        dir.join("degraded-spill"),
    ))
    .expect("egress opens");
    let sink = pipe.attach_sink("egress", egress);
    let degraded_rps = submit_all(&pipe);
    pipe.shutdown();
    let (egress, consumed) = sink.join();
    assert_eq!(consumed, m, "degraded: sink missed records");
    let stats = egress.stats();
    assert_eq!(stats.records_accepted, m, "degraded: outbox missed records");
    assert!(stats.spill_frames > 0, "degraded: nothing spilled");

    let ratio = degraded_rps / baseline_rps;
    assert!(
        ratio >= 0.8,
        "degraded throughput {degraded_rps:.0} rps fell below 0.8x baseline {baseline_rps:.0} rps"
    );
    DegradedResult {
        records: m,
        baseline_rps,
        degraded_rps,
        spill_frames: stats.spill_frames,
    }
}

// ---------------------------------------------------------------------------
// Parent main.
// ---------------------------------------------------------------------------

fn parent_main() {
    let out_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_egress.json".to_string());
    let dir = std::env::temp_dir().join(format!("elasticutor-egress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("work dir");

    println!(
        "egress chaos: 6 kill-matrix arms + degraded-mode gate{}",
        if quick_mode() { " (quick mode)" } else { "" }
    );

    let arms: Vec<(&'static str, Plan)> = vec![
        ("clean", Plan::Clean),
        (
            "sink.mid_frame",
            Plan::KillThenFailover("egress.frame=kill@0.25"),
        ),
        (
            "sink.mid_ack",
            Plan::KillThenFailover("egress.ack=kill@0.25"),
        ),
        (
            "sink.drain_kill",
            Plan::SpillThenKill("egress.frame=kill@0.25"),
        ),
        ("failover", Plan::StandbyOnly),
    ];
    let mut results = Vec::new();
    for (name, plan) in arms {
        let r = run_sink_arm(name, plan, &dir);
        println!(
            "kill {:<16} records={} dups={} retx={} failovers={} connects={} drain={}ms ok",
            r.name, r.records, r.duplicates, r.retransmitted, r.failovers, r.connects, r.drain_ms
        );
        results.push(r);
    }
    let r = run_egress_death_arm(&dir);
    println!(
        "kill {:<16} records={} dups={} dropped={} connects={} drain={}ms ok",
        r.name, r.records, r.duplicates, r.retransmitted, r.connects, r.drain_ms
    );
    results.push(r);

    let degraded = degraded_arm(&dir);
    println!(
        "degraded: baseline={} degraded={} ratio={:.2} spill_frames={}",
        fmt_rate(degraded.baseline_rps),
        fmt_rate(degraded.degraded_rps),
        degraded.degraded_rps / degraded.baseline_rps,
        degraded.spill_frames
    );

    let mut table = Table::new(&["arm", "records", "dups", "retx", "drain_ms"]);
    for r in &results {
        table.row(vec![
            r.name.to_string(),
            r.records.to_string(),
            r.duplicates.to_string(),
            r.retransmitted.to_string(),
            r.drain_ms.to_string(),
        ]);
    }
    println!("\negress kill matrix (zero-loss + per-key FIFO + bounded-dup gated)");
    table.print();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {},", quick_mode());
    let _ = writeln!(json, "  \"hardware_threads\": {},", hardware_threads());
    json.push_str("  \"kill_matrix\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scenario\": \"{}\", \"records\": {}, \"duplicates\": {}, \"retransmitted\": {}, \"failovers\": {}, \"connects\": {}, \"drain_ms\": {}}}",
            r.name, r.records, r.duplicates, r.retransmitted, r.failovers, r.connects, r.drain_ms
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"degraded\": {{\"records\": {}, \"baseline_rps\": {:.0}, \"degraded_rps\": {:.0}, \"ratio\": {:.3}, \"spill_frames\": {}}}",
        degraded.records,
        degraded.baseline_rps,
        degraded.degraded_rps,
        degraded.degraded_rps / degraded.baseline_rps,
        degraded.spill_frames
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
    };
    if let Some(bind) = flag("--sink") {
        sink_main(bind, PathBuf::from(flag("--dir").expect("--dir")));
    } else if let Some(addr) = flag("--egress") {
        egress_child_main(
            addr,
            PathBuf::from(flag("--spill").expect("--spill")),
            PathBuf::from(flag("--result").expect("--result")),
            args.iter().any(|a| a == "--recovered"),
        );
    } else {
        parent_main();
    }
}
