//! Figure 16 — instantaneous throughput and average processing latency
//! of the SSE application under static / RC / naive-EC / Elasticutor.
//!
//! Paper claims to reproduce (§5.4, Figure 16):
//! * "both naive-EC and Elasticutor outperform the static and RC
//!   approaches, approximately doubling the throughput and reducing the
//!   latency by 1–2 orders of magnitude";
//! * the naive-EC ↔ Elasticutor gap is visible but small next to the
//!   executor-centric ↔ {static, RC} gap — the paradigm, not the
//!   scheduler optimizations, carries most of the win.

use elasticutor_bench::sse_exp::run_sse_scaled;
use elasticutor_bench::{fmt_latency_ns, fmt_rate, quick_mode, Table};
use elasticutor_cluster::config::EngineMode;

fn main() {
    let quick = quick_mode();
    let nodes = if quick { 8 } else { 32 };
    let (duration_s, warmup_s) = if quick { (30, 10) } else { (90, 30) };
    let modes = [
        EngineMode::Static,
        EngineMode::ResourceCentric,
        EngineMode::NaiveElastic,
        EngineMode::Elastic,
    ];

    println!("Figure 16: SSE application on {nodes} nodes x 8 cores");
    println!("synthetic SSE order stream (see DESIGN.md for the trace substitution)\n");

    let reports: Vec<_> = modes
        .iter()
        .map(|&m| run_sse_scaled(m, nodes, duration_s, warmup_s, 0.65))
        .collect();

    // ---- summary (the figure's visual takeaway) ----
    let mut summary = Table::new(&["mode", "mean throughput", "avg latency", "p99 latency"]);
    for r in &reports {
        summary.row(vec![
            r.mode.to_string(),
            fmt_rate(r.throughput),
            fmt_latency_ns(r.latency.mean_ns()),
            fmt_latency_ns(r.latency.p99_ns()),
        ]);
    }
    summary.print();

    // ---- (a) instantaneous throughput timeline ----
    println!("\nFigure 16(a): instantaneous throughput (tuples/s, 5 s samples)\n");
    let mut headers = vec!["t (s)".to_string()];
    headers.extend(reports.iter().map(|r| r.mode.to_string()));
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut a = Table::new(&hdr);
    let n = reports
        .iter()
        .map(|r| r.throughput_series.len())
        .min()
        .unwrap_or(0);
    for i in 0..n {
        let (t_ns, _) = reports[0].throughput_series.samples()[i];
        let mut row = vec![format!("{}", t_ns / 1_000_000_000)];
        for r in &reports {
            row.push(fmt_rate(r.throughput_series.samples()[i].1));
        }
        a.row(row);
    }
    a.print();

    // ---- (b) processing-latency timeline ----
    println!("\nFigure 16(b): mean processing latency (ms, 5 s samples)\n");
    let mut b = Table::new(&hdr);
    for i in 0..n {
        let (t_ns, _) = reports[0].latency_series.samples()[i];
        let mut row = vec![format!("{}", t_ns / 1_000_000_000)];
        for r in &reports {
            row.push(format!("{:.2}", r.latency_series.samples()[i].1));
        }
        b.row(row);
    }
    b.print();
    println!("\npaper: EC variants ~2x static/RC throughput, latency 1-2 orders lower");
}
