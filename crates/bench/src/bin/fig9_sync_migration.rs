//! Figure 9 — (a) synchronization time vs number of upstream executors;
//! (b) state migration time vs shard state size (intra- vs inter-node).
//!
//! Paper claims to reproduce:
//! * (a) RC synchronization grows roughly linearly with upstream fan-in
//!   (it must pause and update every upstream executor); Elasticutor's
//!   stays ~2 ms, flat — reassignment is executor-local.
//! * (b) intra-node migration is negligible for both (intra-process
//!   state sharing); inter-node migration grows with state size and is
//!   wire-dominated from ~32 MB.

use elasticutor_bench::{quick_mode, Table, SEC};
use elasticutor_cluster::config::{ClusterConfig, EngineMode, ExperimentConfig};
use elasticutor_cluster::ClusterEngine;
use elasticutor_workload::MicroConfig;

fn run(
    mode: EngineMode,
    upstream: u32,
    nodes: u32,
    shard_state: u64,
    quick: bool,
) -> elasticutor_cluster::RunReport {
    // Moderate utilization for panel (a): the synchronization bill should
    // be dominated by control rounds, not drain time, so its growth with
    // upstream fan-in is visible. The skewed key space makes every
    // shuffle shift executor loads enough to trigger reassignment rounds
    // in both systems.
    let micro = MicroConfig {
        rate: 3_000.0,
        omega: 8.0,
        num_keys: 300,
        skew: 0.7,
        // Two executors at ~1.5 cores of demand each: elastic executors
        // run multiple tasks (so intra-executor reassignments occur) and
        // RC resizes to its own count regardless of the initial y.
        calculator_executors: 2,
        shards_per_executor: 128,
        generator_parallelism: upstream,
        ..MicroConfig::default()
    };
    let mut cfg = ExperimentConfig::micro(mode, micro);
    cfg.cluster = ClusterConfig::small(nodes, (16 / nodes).max(4));
    cfg.shard_state_bytes = shard_state;
    cfg.duration_ns = if quick { 40 * SEC } else { 100 * SEC };
    cfg.warmup_ns = if quick { 15 * SEC } else { 40 * SEC };
    ClusterEngine::new(cfg).run()
}

/// Panel (b)'s elastic runs need executors that outgrow their node so
/// inter-node migrations occur: 2 executors at ~3.5 cores of demand on
/// 2-core nodes.
fn run_remote_heavy(
    mode: EngineMode,
    shard_state: u64,
    quick: bool,
) -> elasticutor_cluster::RunReport {
    let micro = MicroConfig {
        rate: 5_200.0,
        omega: 8.0,
        num_keys: 2_000,
        skew: 0.8,
        calculator_executors: 2,
        shards_per_executor: 64,
        generator_parallelism: 4,
        ..MicroConfig::default()
    };
    let mut cfg = ExperimentConfig::micro(mode, micro);
    cfg.cluster = ClusterConfig::small(4, 2);
    cfg.shard_state_bytes = shard_state;
    cfg.duration_ns = if quick { 40 * SEC } else { 100 * SEC };
    cfg.warmup_ns = if quick { 15 * SEC } else { 40 * SEC };
    ClusterEngine::new(cfg).run()
}

fn main() {
    let quick = quick_mode();

    // ---- (a) synchronization time vs upstream executors ----
    println!("Figure 9(a): synchronization time vs number of upstream executors\n");
    let upstreams: Vec<u32> = if quick {
        vec![1, 8, 32]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };
    let mut a = Table::new(&["upstream execs", "RC sync (ms)", "Elasticutor sync (ms)"]);
    for &u in &upstreams {
        let rc = run(EngineMode::ResourceCentric, u, 4, 32 * 1024, quick);
        let ec = run(EngineMode::Elastic, u, 4, 32 * 1024, quick);
        let rc_b = rc.reassignment_breakdown(None);
        let ec_b = ec.reassignment_breakdown(None);
        a.row(vec![
            format!("{u}"),
            format!("{:.2}", rc_b.mean_sync_ms),
            format!("{:.2}", ec_b.mean_sync_ms),
        ]);
    }
    a.print();
    println!("\npaper: RC grows from tens to ~300 ms with fan-in; Elasticutor flat ~2 ms\n");

    // ---- (b) state migration time vs state size ----
    println!("Figure 9(b): state migration time vs shard state size\n");
    let sizes: Vec<u64> = if quick {
        vec![32 * 1024, 2 * 1024 * 1024, 32 * 1024 * 1024]
    } else {
        vec![
            32 * 1024,
            256 * 1024,
            2 * 1024 * 1024,
            8 * 1024 * 1024,
            32 * 1024 * 1024,
        ]
    };
    let mut b = Table::new(&[
        "state size",
        "EC intra (ms)",
        "EC inter (ms)",
        "RC intra (ms)",
        "RC inter (ms)",
    ]);
    for &size in &sizes {
        let ec_single = run(EngineMode::Elastic, 8, 1, size, quick);
        let ec_multi = run_remote_heavy(EngineMode::Elastic, size, quick);
        let rc_single = run(EngineMode::ResourceCentric, 8, 1, size, quick);
        let rc_multi = run_remote_heavy(EngineMode::ResourceCentric, size, quick);
        b.row(vec![
            elasticutor_bench::fmt_bytes(size),
            format!(
                "{:.2}",
                ec_single
                    .reassignment_breakdown(Some(true))
                    .mean_migration_ms
            ),
            format!(
                "{:.2}",
                ec_multi
                    .reassignment_breakdown(Some(false))
                    .mean_migration_ms
            ),
            format!(
                "{:.2}",
                rc_single
                    .reassignment_breakdown(Some(true))
                    .mean_migration_ms
            ),
            format!(
                "{:.2}",
                rc_multi
                    .reassignment_breakdown(Some(false))
                    .mean_migration_ms
            ),
        ]);
    }
    b.print();
    println!("\npaper: intra-node ~0 for both; inter-node grows with size, wire-bound at 32 MB");
}
