use elasticutor_cluster::config::{ClusterConfig, EngineMode, ExperimentConfig};
use elasticutor_cluster::ClusterEngine;
use elasticutor_workload::MicroConfig;

fn main() {
    let sec = 1_000_000_000u64;
    let micro = MicroConfig {
        rate: 24_000.0,
        omega: 0.0,
        num_keys: 10_000,
        calculator_executors: 8,
        shards_per_executor: 64,
        generator_parallelism: 4,
        ..MicroConfig::default()
    };
    let mut cfg = ExperimentConfig::micro(EngineMode::Elastic, micro);
    cfg.cluster = ClusterConfig::small(8, 4);
    cfg.duration_ns = 20 * sec;
    cfg.warmup_ns = 5 * sec;
    let r = ClusterEngine::new(cfg).run_debug();
    println!(
        "tput={:.0} lat={:.1}ms",
        r.throughput,
        r.latency.mean_ns() / 1e6
    );
}
