//! Figure 6 — throughput and average processing latency vs workload
//! dynamics ω (key shuffles per minute) for static / RC / Elasticutor.
//!
//! Paper claims to reproduce (§5.1, Figure 6):
//! * static is flat and lowest — no elasticity, skew-bound;
//! * RC tracks Elasticutor at small ω but collapses as ω grows
//!   (latency 2–3 orders of magnitude worse by ω = 16);
//! * Elasticutor degrades only marginally across the whole sweep.

use elasticutor_bench::{fmt_latency_ns, fmt_rate, quick_mode, Table, SEC};
use elasticutor_cluster::config::{ClusterConfig, EngineMode, ExperimentConfig};
use elasticutor_cluster::ClusterEngine;
use elasticutor_workload::MicroConfig;

fn main() {
    let quick = quick_mode();
    let omegas: Vec<f64> = if quick {
        vec![0.0, 4.0, 16.0]
    } else {
        vec![0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
    };
    let modes = [
        EngineMode::Static,
        EngineMode::ResourceCentric,
        EngineMode::Elastic,
    ];

    // The paper's testbed: 32 × 8 = 256 cores, 1 ms/tuple ⇒ ideal
    // capacity 256 k/s. Offered 200 k/s (78%): sustainable by an elastic
    // system, beyond what the skew-bound static partitioning can absorb —
    // with 256 single-core static executors, the hash bucket holding the
    // hottest keys carries ~2.5× the mean bucket load.
    let rate = 200_000.0;
    let (duration, warmup) = if quick { (30, 15) } else { (90, 45) };

    println!("Figure 6: performance under varying workload dynamics");
    println!(
        "cluster: 32 nodes x 8 cores; offered rate {} tuples/s\n",
        rate
    );

    let mut table = Table::new(&[
        "mode",
        "omega",
        "throughput",
        "avg latency",
        "p99 latency",
        "reassigns",
        "state moved",
    ]);
    for mode in modes {
        for &omega in &omegas {
            let micro = MicroConfig {
                rate,
                omega,
                generator_parallelism: 32,
                ..MicroConfig::default()
            };
            let mut cfg = ExperimentConfig::micro(mode, micro);
            cfg.cluster = ClusterConfig::small(32, 8);
            cfg.duration_ns = duration * SEC;
            cfg.warmup_ns = warmup * SEC;
            let report = ClusterEngine::new(cfg).run();
            table.row(vec![
                report.mode.to_string(),
                format!("{omega}"),
                fmt_rate(report.throughput),
                fmt_latency_ns(report.latency.mean_ns()),
                fmt_latency_ns(report.latency.p99_ns()),
                format!("{}", report.reassignments.len()),
                elasticutor_bench::fmt_bytes(report.state_migration_bytes),
            ]);
        }
    }
    table.print();
}
