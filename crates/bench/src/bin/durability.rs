//! Durability plane proof + measurement: kill-matrix crash tests for
//! the per-group WAL/checkpoint store, recovery throughput rows, and
//! the pause-window accounting of a durable migration.
//!
//! **Kill matrix (two-process).** The parent spawns this same binary as
//! a child (`--child DIR --scenario NAME`); the child opens a durable
//! [`StateStore`] at `DIR`, runs a scripted op sequence, arms exactly
//! one `state.*` fail point as `kill` mid-script, and dies inside the
//! durability machinery (WAL append, torn install, each checkpoint
//! step, each compaction step). The parent asserts the child really
//! died, reopens the directory **in-process**, and gates recovery on a
//! byte-exact match against the model the script implies — every
//! scenario's surviving prefix is deterministic, so "close enough"
//! never passes.
//!
//! **Throughput rows.** WAL append rate, checkpoint spill rate, WAL
//! replay rate, and checkpoint-load rate, all on temp dirs.
//!
//! **Durable migration.** Two in-process executors trade a ≥16 MiB
//! shard with durability on while records stream into it: the base
//! snapshot ships live, so the gate asserts the pause-window bytes
//! (`sync_wire_bytes`) are a small fraction of the full stream.
//!
//! Results go to `BENCH_durability.json` (override with `--out`).
//! `ELASTICUTOR_QUICK=1` shrinks op counts for CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_bench::{fmt_bytes, hardware_threads, quick_mode, Table};
use elasticutor_core::fault::{self, FaultAction};
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{
    ElasticExecutor, ExecutorConfig, FifoChecker, MigrationConfig, MigrationEndpoint, Operator,
    Record,
};
use elasticutor_state::{DurableOptions, ShardSnapshot, StateHandle, StateStore};

/// Shards in the kill-matrix store.
const KM_SHARDS: u32 = 8;
/// Keys cycle through this range; shard = key % KM_SHARDS.
const KM_KEYS: u64 = 64;
/// The shard receiving the torn `install-torn` snapshot.
const INSTALL_SHARD: u32 = 3;

fn km_shard(key: u64) -> ShardId {
    ShardId((key % u64::from(KM_SHARDS)) as u32)
}

enum ScriptedOp {
    Put(u64, Vec<u8>),
    Del(u64),
}

/// Op `i` of the scripted sequence: mostly puts with index-derived
/// values, every 9th op a delete — identical in child and parent.
fn scripted_op(i: u64) -> ScriptedOp {
    if i % 9 == 8 {
        ScriptedOp::Del((i * 5) % KM_KEYS)
    } else {
        let key = (i * 7) % KM_KEYS;
        let len = 32 + (i as usize % 96);
        ScriptedOp::Put(key, vec![((i * 31) % 251) as u8; len])
    }
}

fn scripted_model(ops: u64) -> BTreeMap<u64, Vec<u8>> {
    let mut model = BTreeMap::new();
    for i in 0..ops {
        match scripted_op(i) {
            ScriptedOp::Put(k, v) => {
                model.insert(k, v);
            }
            ScriptedOp::Del(k) => {
                model.remove(&k);
            }
        }
    }
    model
}

fn apply_to_store(store: &StateStore, i: u64) {
    match scripted_op(i) {
        ScriptedOp::Put(k, v) => {
            store.put(km_shard(k), Key(k), Bytes::from(v));
        }
        ScriptedOp::Del(k) => {
            store.remove(km_shard(k), Key(k));
        }
    }
}

/// The snapshot whose install the `install-torn` scenario tears: big
/// enough that the WAL writes it as several chunk frames before the
/// marker the kill prevents.
fn torn_install_snapshot() -> ShardSnapshot {
    ShardSnapshot {
        shard: ShardId(INSTALL_SHARD),
        entries: (0..4u64)
            .map(|i| {
                (
                    Key(1 << 40 | i),
                    Bytes::from(vec![0xB6 ^ i as u8; 160 * 1024]),
                )
            })
            .collect(),
    }
}

struct KillScenario {
    name: &'static str,
    /// Fail point armed (as `kill`) mid-script; `None` = clean run.
    point: Option<&'static str>,
    /// Scripted ops that must survive the crash, byte-exact.
    surviving_ops: u64,
}

/// Ops before the mid-script arm (the `wal-append` / `install-torn`
/// cut) and the full script length.
const ARM_AT: u64 = 120;
const FULL_OPS: u64 = 240;

const KILL_MATRIX: [KillScenario; 10] = [
    KillScenario {
        name: "clean",
        point: None,
        surviving_ops: FULL_OPS,
    },
    // Dies at the head of the append for op ARM_AT: exactly the first
    // ARM_AT ops are on disk.
    KillScenario {
        name: "wal-append",
        point: Some("state.wal.append"),
        surviving_ops: ARM_AT,
    },
    // Dies between an install's chunk frames and its marker: the torn
    // install must vanish, the preceding ops must not.
    KillScenario {
        name: "install-torn",
        point: Some("state.wal.install"),
        surviving_ops: ARM_AT,
    },
    // Checkpoint steps: every op was WAL-durable before the checkpoint
    // started, so whichever step dies, nothing may be lost.
    KillScenario {
        name: "ckpt-begin",
        point: Some("state.ckpt.begin"),
        surviving_ops: FULL_OPS,
    },
    KillScenario {
        name: "ckpt-rotate",
        point: Some("state.ckpt.rotate"),
        surviving_ops: FULL_OPS,
    },
    KillScenario {
        name: "ckpt-run",
        point: Some("state.ckpt.run"),
        surviving_ops: FULL_OPS,
    },
    KillScenario {
        name: "ckpt-manifest",
        point: Some("state.ckpt.manifest"),
        surviving_ops: FULL_OPS,
    },
    KillScenario {
        name: "ckpt-cleanup",
        point: Some("state.ckpt.cleanup"),
        surviving_ops: FULL_OPS,
    },
    // Compaction reads committed runs only; dying mid-merge or before
    // the manifest swap must leave the previous manifest authoritative.
    KillScenario {
        name: "compact-write",
        point: Some("state.compact.write"),
        surviving_ops: FULL_OPS,
    },
    KillScenario {
        name: "compact-manifest",
        point: Some("state.compact.manifest"),
        surviving_ops: FULL_OPS,
    },
];

// ---------------------------------------------------------------------------
// Child process: run the script, arm the kill, die inside the store.
// ---------------------------------------------------------------------------

fn child_main(dir: PathBuf, scenario: String) {
    let sc = KILL_MATRIX
        .iter()
        .find(|s| s.name == scenario)
        .unwrap_or_else(|| panic!("unknown scenario {scenario}"));
    let store =
        StateStore::open_durable(KM_SHARDS, DurableOptions::new(dir).manual()).expect("child open");
    match sc.name {
        "clean" => {
            for i in 0..FULL_OPS {
                apply_to_store(&store, i);
                if i == 79 || i == 159 {
                    store.checkpoint().expect("clean checkpoint");
                }
            }
            store.compact().expect("clean compact");
        }
        "wal-append" => {
            for i in 0..ARM_AT {
                apply_to_store(&store, i);
            }
            fault::set("state.wal.append", FaultAction::Kill);
            apply_to_store(&store, ARM_AT); // dies inside the append
            unreachable!("armed kill did not fire");
        }
        "install-torn" => {
            for i in 0..ARM_AT {
                apply_to_store(&store, i);
            }
            // Extract first (shards open hosted): the Drop is durable,
            // then the re-install tears between its chunk frames and
            // the marker — recovery must leave the shard empty.
            store
                .extract_shard(ShardId(INSTALL_SHARD))
                .expect("extract before torn install");
            fault::set("state.wal.install", FaultAction::Kill);
            store.install_shard(torn_install_snapshot()); // dies mid-install
            unreachable!("armed kill did not fire");
        }
        name if name.starts_with("ckpt-") => {
            for i in 0..FULL_OPS {
                apply_to_store(&store, i);
            }
            fault::set(sc.point.expect("armed scenario"), FaultAction::Kill);
            let _ = store.checkpoint(); // dies at the armed step
            unreachable!("armed kill did not fire");
        }
        name if name.starts_with("compact-") => {
            // Two checkpoints make two runs, the compactor's minimum.
            for i in 0..FULL_OPS {
                apply_to_store(&store, i);
                if i == FULL_OPS / 2 {
                    store.checkpoint().expect("first checkpoint");
                }
            }
            store.checkpoint().expect("second checkpoint");
            fault::set(sc.point.expect("armed scenario"), FaultAction::Kill);
            let _ = store.compact(); // dies at the armed step
            unreachable!("armed kill did not fire");
        }
        other => panic!("unhandled scenario {other}"),
    }
}

// ---------------------------------------------------------------------------
// Parent: one kill scenario = spawn, die, reopen, verify byte-exact.
// ---------------------------------------------------------------------------

struct KillResult {
    name: &'static str,
    surviving_entries: usize,
    recover_ms: f64,
}

fn run_kill_scenario(sc: &KillScenario, base: &Path) -> KillResult {
    let dir = base.join(sc.name);
    std::fs::create_dir_all(&dir).expect("scenario dir");
    let exe = std::env::current_exe().expect("own path");
    let status = std::process::Command::new(&exe)
        .arg("--child")
        .arg(&dir)
        .arg("--scenario")
        .arg(sc.name)
        .env_remove("ELASTICUTOR_FAILPOINTS")
        .status()
        .expect("spawn child");
    if sc.point.is_some() {
        assert!(
            !status.success(),
            "{}: the armed kill should have taken the child down",
            sc.name
        );
    } else {
        assert!(
            status.success(),
            "{}: clean child failed: {status}",
            sc.name
        );
    }

    let t0 = Instant::now();
    let store = StateStore::open_durable(KM_SHARDS, DurableOptions::new(dir.clone()).manual())
        .unwrap_or_else(|e| panic!("{}: recovery failed: {e}", sc.name));
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Byte-exact: per shard, exactly the model's keys with the model's
    // bytes — conservation and integrity in one comparison.
    let mut model = scripted_model(sc.surviving_ops);
    if sc.name == "install-torn" {
        // The child's durable Drop emptied this shard; the torn
        // re-install must not have brought anything back.
        model.retain(|k, _| km_shard(*k) != ShardId(INSTALL_SHARD));
    }
    let mut surviving_entries = 0usize;
    for s in 0..KM_SHARDS {
        let shard = ShardId(s);
        let expected: Vec<(Key, Bytes)> = model
            .iter()
            .filter(|(k, _)| km_shard(**k) == shard)
            .map(|(k, v)| (Key(*k), Bytes::from(v.clone())))
            .collect();
        let got = store
            .snapshot_shard(shard)
            .map(|snap| snap.entries)
            .unwrap_or_default();
        assert_eq!(
            got, expected,
            "{}: shard {shard} diverged after recovery",
            sc.name
        );
        surviving_entries += expected.len();
    }
    // The torn install must not have resurrected partial entries.
    if sc.name == "install-torn" {
        assert!(
            store
                .snapshot_shard(ShardId(INSTALL_SHARD))
                .is_none_or(|s| s.entries.iter().all(|(k, _)| k.0 < 1 << 40)),
            "install-torn: partial install leaked through recovery"
        );
    }
    // And the recovered store still takes writes + checkpoints.
    store.put(ShardId(0), Key(0), Bytes::from_static(b"post-recovery"));
    store.checkpoint().expect("post-recovery checkpoint");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    KillResult {
        name: sc.name,
        surviving_entries,
        recover_ms,
    }
}

// ---------------------------------------------------------------------------
// Throughput rows.
// ---------------------------------------------------------------------------

struct TputResult {
    mode: &'static str,
    ops: u64,
    mib_per_s: f64,
}

fn throughput_rows(base: &Path) -> Vec<TputResult> {
    let ops: u64 = if quick_mode() { 10_000 } else { 100_000 };
    const VALUE: usize = 256;
    let payload = vec![0xA5u8; VALUE];
    let total_mib = (ops * VALUE as u64) as f64 / (1 << 20) as f64;
    let mut rows = Vec::new();

    // WAL append: every put is one framed, checksummed append.
    let dir = base.join("tput");
    let store = StateStore::open_durable(KM_SHARDS, DurableOptions::new(dir.clone()).manual())
        .expect("tput open");
    let t0 = Instant::now();
    for i in 0..ops {
        store.put(
            km_shard(i % KM_KEYS),
            Key(i % 4096),
            Bytes::from(payload.clone()),
        );
    }
    rows.push(TputResult {
        mode: "wal_append",
        ops,
        mib_per_s: total_mib / t0.elapsed().as_secs_f64(),
    });

    // WAL replay: reopen with everything still in the log.
    drop(store);
    let t0 = Instant::now();
    let store = StateStore::open_durable(KM_SHARDS, DurableOptions::new(dir.clone()).manual())
        .expect("replay open");
    rows.push(TputResult {
        mode: "wal_replay",
        ops,
        mib_per_s: total_mib / t0.elapsed().as_secs_f64(),
    });

    // Checkpoint: spill the dirty shards to a sorted run.
    let t0 = Instant::now();
    assert!(store.checkpoint().expect("tput checkpoint"));
    rows.push(TputResult {
        mode: "checkpoint",
        ops,
        mib_per_s: total_mib / t0.elapsed().as_secs_f64(),
    });

    // Checkpoint load: reopen with everything in the run, WAL empty.
    drop(store);
    let t0 = Instant::now();
    let store = StateStore::open_durable(KM_SHARDS, DurableOptions::new(dir.clone()).manual())
        .expect("run-load open");
    rows.push(TputResult {
        mode: "run_load",
        ops,
        mib_per_s: total_mib / t0.elapsed().as_secs_f64(),
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

// ---------------------------------------------------------------------------
// Durable migration: pause-window bytes vs. the full stream.
// ---------------------------------------------------------------------------

struct MigResult {
    state_bytes: u64,
    wire_bytes: u64,
    sync_wire_bytes: u64,
    live_records: u64,
    drain_ms: f64,
    elapsed_ms: f64,
}

fn counting_op(fifo: Arc<FifoChecker>) -> impl Operator {
    move |r: &Record, s: &StateHandle| {
        fifo.observe(r.key, r.seq);
        s.update(r.key, |old| {
            let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        Vec::new()
    }
}

fn durable_migration(base: &Path) -> MigResult {
    const SHARDS: u32 = 16;
    let shard = ShardId(5);
    // ≥ 16 MiB of shard state: the acceptance floor, quick mode or not.
    const ENTRIES: u64 = 128;
    const VALUE: usize = 128 * 1024;

    let fifo_a = Arc::new(FifoChecker::new());
    let fifo_b = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(
        ExecutorConfig {
            num_shards: SHARDS,
            initial_tasks: 2,
            durability: Some(base.join("mig-sender")),
            ..ExecutorConfig::default()
        },
        counting_op(fifo_a.clone()),
    ));
    assert!(exec_a.state().is_durable());
    let exec_b = Arc::new(ElasticExecutor::start(
        ExecutorConfig {
            num_shards: SHARDS,
            initial_tasks: 2,
            durability: None,
            ..ExecutorConfig::default()
        },
        counting_op(fifo_b.clone()),
    ));
    for i in 0..ENTRIES {
        exec_a.state().put(
            shard,
            Key(1 << 32 | i),
            Bytes::from(vec![(i % 251) as u8; VALUE]),
        );
    }
    let state_bytes = ENTRIES * VALUE as u64;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let connector = {
        let exec_b = Arc::clone(&exec_b);
        std::thread::spawn(move || {
            MigrationEndpoint::connect_with(exec_b, addr.as_str(), MigrationConfig::default())
                .expect("connect receiver")
        })
    };
    let ep_a =
        MigrationEndpoint::accept_with(Arc::clone(&exec_a), &listener, MigrationConfig::default())
            .expect("accept link");
    let ep_b = connector.join().expect("connector thread");

    // Live writers during the migration: their puts ride the WAL tail
    // instead of stalling behind a paused full-state stream.
    let live_keys: Vec<Key> = (0u64..)
        .filter(|k| elasticutor_core::hash::key_to_shard(*k, SHARDS) == shard.0)
        .take(4)
        .map(Key)
        .collect();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let feeder = {
        let exec_a = Arc::clone(&exec_a);
        let keys = live_keys.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seq = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                seq += 1;
                for &k in &keys {
                    exec_a.ingest(Record::new(k, Bytes::new()).with_seq(seq));
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            seq * keys.len() as u64
        })
    };
    std::thread::sleep(Duration::from_millis(20)); // writers in flight
    let report = ep_a.migrate_out(shard).expect("durable migration");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let sent = feeder.join().expect("feeder thread");

    // The whole point: the pause window shipped the tail + control
    // frames, not the 16 MiB base — require at least a 10× separation.
    assert_eq!(report.entries as u64, ENTRIES + live_keys.len() as u64);
    assert!(
        report.sync_wire_bytes * 10 < report.wire_bytes,
        "pause-window bytes {} not a small fraction of the stream {}",
        report.sync_wire_bytes,
        report.wire_bytes
    );
    // Conservation across the handover: every live record processed
    // exactly once, on whichever side it landed.
    let deadline = Instant::now() + Duration::from_secs(60);
    while exec_a.processed_count() + exec_b.processed_count() < sent {
        assert!(Instant::now() < deadline, "live records lost in handover");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(exec_a.processed_count() + exec_b.processed_count(), sent);
    assert!(fifo_a.is_clean() && fifo_b.is_clean(), "FIFO violation");
    assert!(exec_b.state().hosts(shard) && !exec_a.state().hosts(shard));

    ep_a.close();
    ep_b.close();
    let _ = std::fs::remove_dir_all(base.join("mig-sender"));
    MigResult {
        state_bytes,
        wire_bytes: report.wire_bytes,
        sync_wire_bytes: report.sync_wire_bytes,
        live_records: sent,
        drain_ms: report.drain_ns as f64 / 1e6,
        elapsed_ms: report.elapsed_ns as f64 / 1e6,
    }
}

// ---------------------------------------------------------------------------
// Parent main.
// ---------------------------------------------------------------------------

fn parent_main() {
    let out_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_durability.json".to_string());
    let base = std::env::temp_dir().join(format!("elasticutor-durbench-{}", std::process::id()));
    std::fs::create_dir_all(&base).expect("bench dir");

    println!(
        "durability suite: {} kill scenarios + throughput + durable migration{}",
        KILL_MATRIX.len(),
        if quick_mode() { " (quick mode)" } else { "" }
    );

    let mut kill_results = Vec::new();
    for sc in &KILL_MATRIX {
        let res = run_kill_scenario(sc, &base);
        println!(
            "kill {:<18} entries={:<4} recover={:.2}ms byte-exact ok",
            res.name, res.surviving_entries, res.recover_ms
        );
        kill_results.push(res);
    }

    let tput = throughput_rows(&base);
    let mut table = Table::new(&["mode", "ops", "MiB/s"]);
    for r in &tput {
        table.row(vec![
            r.mode.to_string(),
            r.ops.to_string(),
            format!("{:.1}", r.mib_per_s),
        ]);
    }
    println!("\ndurable store throughput");
    table.print();

    let mig = durable_migration(&base);
    println!(
        "\ndurable migration: state={} wire={} pause-window={} ({}x smaller) live={} drain={:.2}ms",
        fmt_bytes(mig.state_bytes),
        fmt_bytes(mig.wire_bytes),
        fmt_bytes(mig.sync_wire_bytes),
        mig.wire_bytes / mig.sync_wire_bytes.max(1),
        mig.live_records,
        mig.drain_ms
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {},", quick_mode());
    let _ = writeln!(json, "  \"hardware_threads\": {},", hardware_threads());
    json.push_str("  \"kill_matrix\": [\n");
    for (i, r) in kill_results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"surviving_entries\": {}, \"recover_ms\": {:.3}}}",
            r.name, r.surviving_entries, r.recover_ms
        );
        json.push_str(if i + 1 < kill_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"throughput\": [\n");
    for (i, r) in tput.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"ops\": {}, \"mib_per_s\": {:.1}}}",
            r.mode, r.ops, r.mib_per_s
        );
        json.push_str(if i + 1 < tput.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"migration\": {{\"state_bytes\": {}, \"wire_bytes\": {}, \"sync_wire_bytes\": {}, \"live_records\": {}, \"drain_ms\": {:.2}, \"elapsed_ms\": {:.2}}}",
        mig.state_bytes, mig.wire_bytes, mig.sync_wire_bytes, mig.live_records, mig.drain_ms, mig.elapsed_ms
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write bench json");
    println!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&base);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
    };
    match flag("--child") {
        Some(dir) => child_main(PathBuf::from(dir), flag("--scenario").expect("--scenario")),
        None => parent_main(),
    }
}
