//! Figure 7 — instantaneous throughput (1-second sliding window) under
//! ω = 2, for static / RC / Elasticutor.
//!
//! Paper claims to reproduce: the static line is low but steady; both RC
//! and Elasticutor dip transiently at every key shuffle (every 30 s), but
//! RC's dips last ~10–20 s while Elasticutor's last ~1–3 s.

use elasticutor_bench::{fmt_rate, quick_mode, Table, SEC};
use elasticutor_cluster::config::{ClusterConfig, EngineMode, ExperimentConfig};
use elasticutor_cluster::ClusterEngine;
use elasticutor_metrics::TimeSeries;
use elasticutor_workload::MicroConfig;

fn main() {
    let quick = quick_mode();
    let rate = 200_000.0;
    let (duration, warmup) = if quick { (60, 30) } else { (150, 60) };

    println!("Figure 7: instantaneous throughput with omega = 2 (shuffle every 30 s)");
    println!("cluster: 32 nodes x 8 cores; offered rate {rate} tuples/s\n");

    let mut series: Vec<(String, TimeSeries, f64)> = Vec::new();
    for mode in [
        EngineMode::Static,
        EngineMode::ResourceCentric,
        EngineMode::Elastic,
    ] {
        let micro = MicroConfig {
            rate,
            omega: 2.0,
            generator_parallelism: 32,
            ..MicroConfig::default()
        };
        let mut cfg = ExperimentConfig::micro(mode, micro);
        cfg.cluster = ClusterConfig::small(32, 8);
        cfg.duration_ns = duration * SEC;
        cfg.warmup_ns = warmup * SEC;
        let report = ClusterEngine::new(cfg).run();
        series.push((
            report.mode.to_string(),
            report.throughput_series,
            report.throughput,
        ));
    }

    // Timeline (post-warmup seconds).
    let mut table = Table::new(&["t (s)", &series[0].0, &series[1].0, &series[2].0]);
    let n = series[0].1.len();
    for i in (warmup as usize)..n {
        let t = series[0].1.samples()[i].0 / SEC;
        table.row(vec![
            format!("{t}"),
            fmt_rate(series[0].1.samples()[i].1),
            fmt_rate(series[1].1.samples().get(i).map_or(0.0, |s| s.1)),
            fmt_rate(series[2].1.samples().get(i).map_or(0.0, |s| s.1)),
        ]);
    }
    table.print();

    // Dip analysis: transient degradations below 70% of the mode's own
    // steady throughput, post-warmup.
    println!("\nTransient degradation analysis (below 70% of steady rate):");
    let mut dips = Table::new(&["mode", "dips", "longest dip", "total dip time"]);
    for (name, ts, steady) in &series {
        let post_warmup: Vec<(u64, f64)> = ts
            .samples()
            .iter()
            .copied()
            .filter(|&(t, _)| t >= warmup * SEC)
            .collect();
        let mut trimmed = TimeSeries::new(name.clone());
        for (t, v) in post_warmup {
            trimmed.push(t, v);
        }
        let found = trimmed.dips_below(0.7 * steady);
        let longest = found
            .iter()
            .map(|&(a, b)| (b - a) / SEC + 1)
            .max()
            .unwrap_or(0);
        let total: u64 = found.iter().map(|&(a, b)| (b - a) / SEC + 1).sum();
        dips.row(vec![
            name.clone(),
            format!("{}", found.len()),
            format!("{longest}s"),
            format!("{total}s"),
        ]);
    }
    dips.print();
}
