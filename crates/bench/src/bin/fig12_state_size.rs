//! Figure 12 — throughput of a single elastic executor scaling out under
//! varying shard state sizes, at ω = 2 (a) and ω = 16 (b).
//!
//! Paper claims to reproduce (§5.2, Figure 12):
//! * "the elastic executor scales efficiently under all the shard state
//!   sizes but 32 MB" — with a large state, migration becomes the
//!   bottleneck and remote cores go underutilized;
//! * "as the workload dynamic ω increases to 16, the scalability under
//!   the large state size decreases considerably, due to the increased
//!   requirement of state migration".

use elasticutor_bench::scaling::{core_sweep, run_single_executor, ScalingOpts};
use elasticutor_bench::{fmt_bytes, fmt_rate, quick_mode, Table};

fn run_panel(omega: f64, cores: &[u32], sizes: &[u64], quick: bool) {
    println!(
        "Figure 12({}): single-executor throughput vs cores, omega = {omega}",
        if omega <= 2.0 { "a" } else { "b" }
    );
    println!("(tuple size 128 B, CPU cost 1 ms/tuple, varying shard state size)\n");
    let mut headers = vec!["cores".to_string()];
    headers.extend(sizes.iter().map(|&s| format!("state {}", fmt_bytes(s))));
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&hdr);
    for &k in cores {
        let mut row = vec![format!("{k}")];
        for &s in sizes {
            let report = run_single_executor(&ScalingOpts {
                cores: k,
                shard_state_bytes: s,
                omega,
                quick,
                ..ScalingOpts::paper_default(k)
            });
            row.push(fmt_rate(report.throughput));
        }
        t.row(row);
    }
    t.print();
    println!();
}

fn main() {
    let quick = quick_mode();
    let cores = core_sweep(quick);
    let sizes: Vec<u64> = if quick {
        vec![32 * 1024, 32 * 1024 * 1024]
    } else {
        vec![32 * 1024, 1024 * 1024, 8 * 1024 * 1024, 32 * 1024 * 1024]
    };

    run_panel(2.0, &cores, &sizes, quick);
    run_panel(16.0, &cores, &sizes, quick);
    println!(
        "paper: every state size scales but 32 MB; at omega = 16 the 32 MB curve degrades further"
    );
}
