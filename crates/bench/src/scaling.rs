//! Shared driver for the single-executor scalability experiments
//! (Figures 10, 11 and 12).
//!
//! The paper's setup (§5.2): *one* elastic executor for the calculator
//! operator on the full 32 × 8-core cluster; cores are granted manually
//! (local node first, remote beyond 8) and the executor's throughput and
//! tail latency are measured while data intensity (tuple size, CPU cost)
//! and elasticity cost (shard state size, ω) vary.

use elasticutor_cluster::config::{EngineMode, ExperimentConfig};
use elasticutor_cluster::{ClusterEngine, RunReport};
use elasticutor_workload::MicroConfig;

use crate::SEC;

/// Offered-rate ceiling, tuples/s. Keeps the event volume of the
/// cheapest-tuple sweeps tractable; well above every data-intensity wall
/// the experiments expose (~1.6 M tuples/s), so measured plateaus are
/// genuine bottlenecks, not the cap.
pub const OFFERED_CAP: f64 = 2_000_000.0;

/// Fraction of ideal service capacity offered to the executor. Below
/// saturation so queueing latency reflects service, matching the paper's
/// setup where latency stays flat until a resource wall is hit.
pub const OFFERED_FRACTION: f64 = 0.85;

/// One point of a scalability sweep.
#[derive(Clone, Debug)]
pub struct ScalingOpts {
    /// Cores granted to the single elastic executor (local first).
    pub cores: u32,
    /// Mean per-tuple CPU cost, ns.
    pub cpu_cost_ns: u64,
    /// Tuple payload size, bytes.
    pub tuple_bytes: u32,
    /// Per-shard state size, bytes.
    pub shard_state_bytes: u64,
    /// Key-shuffle rate ω, per minute.
    pub omega: f64,
    /// Shrink durations for smoke testing.
    pub quick: bool,
}

impl ScalingOpts {
    /// The paper's default scalability point: 1 ms tuples, 128 B
    /// payload, 32 KB shard state, ω = 2.
    pub fn paper_default(cores: u32) -> Self {
        Self {
            cores,
            cpu_cost_ns: 1_000_000,
            tuple_bytes: 128,
            shard_state_bytes: 32 * 1024,
            omega: 2.0,
            quick: false,
        }
    }

    /// Ideal service capacity of `cores` cores at this CPU cost,
    /// tuples/s.
    pub fn ideal_capacity(&self) -> f64 {
        self.cores as f64 * 1e9 / self.cpu_cost_ns as f64
    }

    /// The offered arrival rate for this point.
    pub fn offered_rate(&self) -> f64 {
        (self.ideal_capacity() * OFFERED_FRACTION).min(OFFERED_CAP)
    }

    /// Run length: enough completions for stable estimates without
    /// letting the cheap-tuple points dominate wall-clock time.
    fn duration_ns(&self) -> u64 {
        let target_completions = if self.quick { 2.0e5 } else { 1.5e6 };
        let (lo, hi) = if self.quick { (4.0, 20.0) } else { (6.0, 60.0) };
        let secs = (target_completions / self.offered_rate()).clamp(lo, hi);
        (secs * 1e9) as u64
    }
}

/// Runs one single-executor scalability point and returns its report.
pub fn run_single_executor(opts: &ScalingOpts) -> RunReport {
    let micro = MicroConfig {
        rate: opts.offered_rate(),
        omega: opts.omega,
        tuple_bytes: opts.tuple_bytes,
        cpu_cost_ns: opts.cpu_cost_ns,
        calculator_executors: 1,
        shards_per_executor: 256,
        ..MicroConfig::default()
    };
    let mut cfg = ExperimentConfig::micro(EngineMode::Elastic, micro);
    cfg.shard_state_bytes = opts.shard_state_bytes;
    cfg.manual_cores = Some(opts.cores);
    cfg.duration_ns = opts.duration_ns();
    cfg.warmup_ns = cfg.duration_ns / 4;
    // Tail latency needs several samples per window even at low rates.
    cfg.sample_period_ns = SEC;
    ClusterEngine::new(cfg).run()
}

/// The core counts swept on the x-axis of Figures 10–12.
pub fn core_sweep(quick: bool) -> Vec<u32> {
    if quick {
        vec![1, 8, 64, 256]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_rate_caps_and_scales() {
        let p1 = ScalingOpts::paper_default(1);
        assert!((p1.offered_rate() - 850.0).abs() < 1.0);
        let p256 = ScalingOpts {
            cpu_cost_ns: 10_000,
            ..ScalingOpts::paper_default(256)
        };
        // 256 cores at 0.01 ms → ideal 25.6 M/s, capped at 2 M/s.
        assert_eq!(p256.offered_rate(), OFFERED_CAP);
    }

    #[test]
    fn durations_bounded() {
        let cheap = ScalingOpts {
            cpu_cost_ns: 10_000,
            quick: true,
            ..ScalingOpts::paper_default(256)
        };
        let d = cheap.duration_ns();
        assert!((4 * SEC..=20 * SEC).contains(&d));
        let slow = ScalingOpts {
            cpu_cost_ns: 10_000_000,
            ..ScalingOpts::paper_default(1)
        };
        assert_eq!(slow.duration_ns(), 60 * SEC);
    }

    #[test]
    fn sweep_is_exponential() {
        assert_eq!(core_sweep(false).len(), 9);
        assert_eq!(core_sweep(true), vec![1, 8, 64, 256]);
    }
}
