//! Shared configuration for the SSE-application experiments (§5.4:
//! Figures 15–16, Tables 2–3).
//!
//! The paper drives the Figure 14 topology with a proprietary
//! Shanghai-Stock-Exchange order trace; we drive it with the synthetic
//! generator of `elasticutor_workload::sse` (see DESIGN.md §3 for the
//! substitution argument). The parameters below scale the offered load
//! with the cluster so that, as in the paper, the application saturates
//! the cluster and the four approaches differentiate.

use elasticutor_cluster::config::{ClusterConfig, EngineMode, ExperimentConfig};
use elasticutor_cluster::{ClusterEngine, RunReport};
use elasticutor_workload::SseConfig;

use crate::SEC;

/// Mean CPU cost of the transactor per order, ns. Kept moderate: the
/// per-key ordering requirement serializes each stock on one core, so
/// `top-stock rate × transactor cost` must stay below one core even at
/// the 32-node scale's order rates.
pub const TRANSACTOR_COST_NS: u64 = 500_000;

/// Mean CPU cost of each of the 11 analytics operators per record, ns.
pub const ANALYTICS_COST_NS: u64 = 200_000;

/// CPU demand of one order end-to-end, ms-core.
pub fn demand_ms_per_order() -> f64 {
    (TRANSACTOR_COST_NS as f64 + 11.0 * ANALYTICS_COST_NS as f64) / 1e6
}

/// Ideal order-processing capacity of a cluster, orders/s.
pub fn cluster_capacity(nodes: u32, cores_per_node: u32) -> f64 {
    f64::from(nodes * cores_per_node) / demand_ms_per_order() * 1000.0
}

/// An SSE workload scaled to stress a cluster of `nodes` nodes: the
/// long-run mean offered load (regime mean 1.25 × base) equals the
/// cluster's ideal capacity, so regime peaks (2×) saturate it and
/// troughs (0.5×) leave slack — the fluctuation profile of Figure 15.
pub fn stress_sse(nodes: u32, cores_per_node: u32) -> SseConfig {
    // The simulated substrate pins every task to a dedicated core (no
    // time-sharing, unlike Storm threads), so the 12 transform operators
    // must start with at most half the cluster's cores — the other half
    // is the headroom the dynamic scheduler reallocates.
    let y = (nodes * cores_per_node / 24).max(1);
    SseConfig {
        base_rate: cluster_capacity(nodes, cores_per_node) * 0.8,
        transactor_cost_ns: TRANSACTOR_COST_NS,
        analytics_cost_ns: ANALYTICS_COST_NS,
        // Wide, mildly skewed stock universe: the hottest stock stays
        // under one core of transactor demand at every cluster scale
        // (the per-key FIFO requirement makes a single stock
        // unparallelizable, in every system).
        num_stocks: 20_000,
        popularity_skew: 0.5,
        hot_boost: (1.5, 3.5),
        executors_per_operator: y,
        shards_per_executor: 64,
        // Compressed dynamics so a ~1-minute simulated run sees several
        // hot-set rotations and regime switches (the trace's intra-day
        // fluctuations, Figure 15).
        hot_rotation_period_ns: 15 * SEC,
        regime_period_ns: 30 * SEC,
        ..SseConfig::default()
    }
}

/// Runs one SSE experiment and returns its report.
pub fn run_sse(mode: EngineMode, nodes: u32, duration_s: u64, warmup_s: u64) -> RunReport {
    run_sse_scaled(mode, nodes, duration_s, warmup_s, 1.0)
}

/// [`run_sse`] with the offered load scaled by `factor`. Figure 16 uses
/// ~0.65: the paper's application saturates the cluster at regime
/// *peaks*, not on average — at mean-rate saturation every approach
/// accumulates unbounded arrival backlog and the comparison degenerates.
pub fn run_sse_scaled(
    mode: EngineMode,
    nodes: u32,
    duration_s: u64,
    warmup_s: u64,
    factor: f64,
) -> RunReport {
    let cores_per_node = 8;
    let mut sse = stress_sse(nodes, cores_per_node);
    sse.base_rate *= factor;
    let mut cfg = ExperimentConfig::sse(mode, sse);
    cfg.cluster = ClusterConfig::small(nodes, cores_per_node);
    cfg.duration_ns = duration_s * SEC;
    cfg.warmup_ns = warmup_s * SEC;
    cfg.sample_period_ns = 5 * SEC;
    ClusterEngine::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_and_capacity() {
        // 0.5 ms + 11 × 0.2 ms = 2.7 ms-core per order.
        assert!((demand_ms_per_order() - 2.7).abs() < 1e-9);
        let cap = cluster_capacity(32, 8);
        assert!((cap - 256_000.0 / 2.7).abs() < 1.0);
    }

    #[test]
    fn hottest_stock_fits_one_core_at_every_scale() {
        for nodes in [8, 16, 32] {
            let c = stress_sse(nodes, 8);
            // Zipf(0.5) over 20k stocks: top share ≈ 1/(2·√20000).
            let top_share = 1.0 / (2.0 * (c.num_stocks as f64).sqrt() - 1.46);
            let worst_rate = c.base_rate * c.regime_range.1 * top_share * c.hot_boost.1;
            let cores_needed = worst_rate * c.transactor_cost_ns as f64 / 1e9;
            assert!(
                cores_needed < 1.0,
                "{nodes} nodes: top stock needs {cores_needed:.2} cores"
            );
        }
    }

    #[test]
    fn stress_scales_with_nodes() {
        let c8 = stress_sse(8, 8);
        let c32 = stress_sse(32, 8);
        assert!((c32.base_rate / c8.base_rate - 4.0).abs() < 1e-9);
        assert_eq!(c8.transactor_cost_ns, TRANSACTOR_COST_NS);
    }
}
