//! Criterion micro-benchmarks for the hot paths of the framework:
//! the intra-executor load balancer, the Erlang-C performance model,
//! Algorithm 1, the state store, routing-table lookups, and the live
//! executor end to end.
//!
//! These are not paper figures (those live in `src/bin/`); they guard
//! the cost of the building blocks — e.g. Table 3's claim that a full
//! scheduling round stays in single-digit milliseconds rests on the
//! `algorithm1` and `erlang_c` costs measured here.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use elasticutor_core::balance::LoadBalancer;
use elasticutor_core::ids::{Key, NodeId, ShardId, TaskId};
use elasticutor_core::routing::RoutingTable;
use elasticutor_queueing::jackson::{ExecutorLoad, JacksonNetwork};
use elasticutor_queueing::{allocate, mmk, AllocationRequest};
use elasticutor_runtime::Ingest;
use elasticutor_scheduler::assignment::{Assignment, ClusterSpec};
use elasticutor_scheduler::scheduler::{DynamicScheduler, ExecutorMeasurement, SchedulerConfig};
use elasticutor_state::StateStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn bench_load_balancer(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_balancer_plan");
    for &(shards, tasks) in &[(256usize, 8usize), (1024, 32), (8192, 64)] {
        let mut rng = StdRng::seed_from_u64(1);
        let loads: Vec<f64> = (0..shards).map(|_| rng.gen_range(0.0..100.0)).collect();
        let assignment: Vec<TaskId> = (0..shards).map(|s| TaskId((s % tasks) as u32)).collect();
        let task_ids: Vec<TaskId> = (0..tasks as u32).map(TaskId).collect();
        let balancer = LoadBalancer::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{shards}shards_{tasks}tasks")),
            &(),
            |b, ()| {
                b.iter(|| {
                    black_box(balancer.plan(
                        black_box(&loads),
                        black_box(&assignment),
                        black_box(&task_ids),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_erlang_c(c: &mut Criterion) {
    c.bench_function("erlang_c_k64", |b| {
        b.iter(|| {
            black_box(mmk::erlang_c(
                black_box(50.0),
                black_box(1.0),
                black_box(64),
            ))
        })
    });
    let network = JacksonNetwork::new(
        10_000.0,
        (0..32)
            .map(|j| ExecutorLoad::new(300.0 + j as f64 * 10.0, 1_000.0))
            .collect(),
    );
    let k: Vec<u32> = (0..32).map(|j| 1 + (j % 4)).collect();
    c.bench_function("jackson_expected_latency_32execs", |b| {
        b.iter(|| black_box(network.expected_latency(black_box(&k))))
    });
    c.bench_function("greedy_allocate_32execs", |b| {
        b.iter(|| {
            black_box(allocate(&AllocationRequest {
                network: &network,
                latency_target: 0.01,
                available_cores: 256,
            }))
        })
    });
}

fn bench_algorithm1(c: &mut Criterion) {
    // A full scheduling round at paper scale: 32 executors on 32 nodes.
    let spec = ClusterSpec::uniform(32, 8);
    let mut assignment = Assignment::empty(32, 32);
    for j in 0..32 {
        assignment.grant(j, NodeId(j as u32), &spec);
    }
    let mut rng = StdRng::seed_from_u64(2);
    let measurements: Vec<ExecutorMeasurement> = (0..32)
        .map(|j| ExecutorMeasurement {
            lambda: rng.gen_range(500.0..4_000.0),
            mu: 1_000.0,
            state_bytes: 8.0 * 1024.0 * 1024.0,
            data_rate: rng.gen_range(1e4..1e6),
            local_node: NodeId(j as u32),
        })
        .collect();
    let scheduler = DynamicScheduler::new(SchedulerConfig::default());
    c.bench_function("scheduler_full_round_32x32", |b| {
        b.iter(|| {
            black_box(
                scheduler
                    .schedule(
                        black_box(&spec),
                        black_box(&assignment),
                        black_box(&measurements),
                        black_box(40_000.0),
                    )
                    .expect("feasible"),
            )
        })
    });
}

fn bench_state_store(c: &mut Criterion) {
    let store = Arc::new(StateStore::with_shards(256));
    let payload = Bytes::from(vec![0u8; 64]);
    for key in 0..10_000u64 {
        store.put(ShardId((key % 256) as u32), Key(key), payload.clone());
    }
    c.bench_function("state_store_get", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 7) % 10_000;
            black_box(store.get(ShardId((key % 256) as u32), Key(key)))
        })
    });
    c.bench_function("state_store_update", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 13) % 10_000;
            store.update(ShardId((key % 256) as u32), Key(key), |old| {
                old.map(|v| Bytes::copy_from_slice(v.as_ref()))
            })
        })
    });
    c.bench_function("state_store_extract_install_32kb_shard", |b| {
        // One shard holds ~39 keys x 64 B; measure the full migration
        // round-trip (what the reassignment protocol pays intra-process).
        b.iter(|| {
            let snap = store.extract_shard(ShardId(0)).expect("shard exists");
            store.install_shard(black_box(snap));
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let mut table: RoutingTable<u64> = RoutingTable::new(8_192, TaskId(0));
    for s in 0..8_192u32 {
        table.set_task(ShardId(s), TaskId(s % 64)).expect("fresh");
    }
    c.bench_function("routing_table_route_8192_shards", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
            black_box(table.route(Key(key), key))
        })
    });
}

fn bench_live_executor(c: &mut Criterion) {
    use elasticutor_runtime::{ElasticExecutor, ExecutorConfig, Record};
    use elasticutor_state::StateHandle;
    let mut group = c.benchmark_group("live_executor");
    group.sample_size(10);
    group.bench_function("submit_drain_10k_records_4_tasks", |b| {
        b.iter(|| {
            let exec = ElasticExecutor::start(
                ExecutorConfig {
                    num_shards: 64,
                    initial_tasks: 4,
                    ..ExecutorConfig::default()
                },
                |_r: &Record, _s: &StateHandle| Vec::new(),
            );
            for i in 0..10_000u64 {
                exec.ingest(Record::new(Key(i % 512), Bytes::new()));
            }
            exec.wait_for_processed(10_000);
            black_box(exec.shutdown());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_load_balancer,
    bench_erlang_c,
    bench_algorithm1,
    bench_state_store,
    bench_routing,
    bench_live_executor
);
criterion_main!(benches);
