//! The network model.
//!
//! Each node has one full-duplex NIC. Outbound messages **serialize on
//! the sender's egress**: a transfer of `b` bytes occupies the egress for
//! `b / bandwidth` seconds, and arrives one propagation latency after its
//! egress slot ends. Intra-node messages bypass the NIC and cost a small
//! constant. This first-order model captures the effects the paper
//! depends on: remote tasks consume sender bandwidth proportionally to
//! tuple size (Figures 10–11's data-intensity wall), and large state
//! migrations occupy links for `size / bandwidth` (Figure 9b).

use elasticutor_core::ids::NodeId;

use crate::config::ClusterConfig;

/// Classifies traffic for the byte-rate accounting of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Tuples flowing between operators (receiver → downstream receiver).
    InterOperator,
    /// Tuples between an executor's main process and its remote tasks.
    RemoteTask,
    /// Migrated shard state.
    StateMigration,
    /// Control-plane messages.
    Control,
}

/// Per-node egress bookkeeping plus global byte counters.
#[derive(Debug)]
pub struct Network {
    /// Earliest time each node's egress is free.
    egress_free_at: Vec<u64>,
    bandwidth: f64,
    link_latency_ns: u64,
    local_latency_ns: u64,
    /// Cumulative bytes by traffic class (remote transfers only; local
    /// hops are free and uncounted).
    bytes_inter_operator: u64,
    bytes_remote_task: u64,
    bytes_state_migration: u64,
    bytes_control: u64,
}

impl Network {
    /// Builds the network for a cluster.
    pub fn new(cfg: &ClusterConfig) -> Self {
        Self {
            egress_free_at: vec![0; cfg.nodes as usize],
            bandwidth: cfg.link_bandwidth,
            link_latency_ns: cfg.link_latency_ns,
            local_latency_ns: cfg.local_latency_ns,
            bytes_inter_operator: 0,
            bytes_remote_task: 0,
            bytes_state_migration: 0,
            bytes_control: 0,
        }
    }

    /// Schedules a transfer of `bytes` from `src` to `dst` starting no
    /// earlier than `now`. Returns the arrival time at `dst`.
    ///
    /// Cross-node transfers serialize on `src`'s egress and are charged
    /// to `class`. Intra-node messages cost `local_latency` and are not
    /// charged (memory bandwidth is not the bottleneck under study).
    pub fn send(
        &mut self,
        now: u64,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        class: TrafficClass,
    ) -> u64 {
        if src == dst {
            return now + self.local_latency_ns;
        }
        let wire_ns = (bytes as f64 / self.bandwidth * 1e9).ceil() as u64;
        let start = self.egress_free_at[src.index()].max(now);
        let egress_done = start + wire_ns;
        self.egress_free_at[src.index()] = egress_done;
        match class {
            TrafficClass::InterOperator => self.bytes_inter_operator += bytes,
            TrafficClass::RemoteTask => self.bytes_remote_task += bytes,
            TrafficClass::StateMigration => self.bytes_state_migration += bytes,
            TrafficClass::Control => self.bytes_control += bytes,
        }
        egress_done + self.link_latency_ns
    }

    /// Latency-only control message (bytes negligible). Still crosses the
    /// wire: costs one link latency between distinct nodes, local latency
    /// otherwise. Does not occupy egress.
    pub fn control_delay(&self, src: NodeId, dst: NodeId, control_latency_ns: u64) -> u64 {
        if src == dst {
            self.local_latency_ns
        } else {
            control_latency_ns
        }
    }

    /// Cumulative remote bytes carried between operators.
    pub fn bytes_inter_operator(&self) -> u64 {
        self.bytes_inter_operator
    }

    /// Cumulative remote bytes between main processes and remote tasks —
    /// the "remote data transfer" of Table 2.
    pub fn bytes_remote_task(&self) -> u64 {
        self.bytes_remote_task
    }

    /// Cumulative migrated-state bytes — the "state migration" of
    /// Table 2.
    pub fn bytes_state_migration(&self) -> u64 {
        self.bytes_state_migration
    }

    /// Cumulative control bytes.
    pub fn bytes_control(&self) -> u64 {
        self.bytes_control
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(&ClusterConfig {
            nodes: 4,
            cores_per_node: 2,
            link_bandwidth: 1000.0, // 1000 B/s → 1 ms per byte
            link_latency_ns: 1_000_000,
            local_latency_ns: 1_000,
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn local_messages_are_cheap_and_uncounted() {
        let mut n = net();
        let t = n.send(
            100,
            NodeId(0),
            NodeId(0),
            1_000_000,
            TrafficClass::InterOperator,
        );
        assert_eq!(t, 100 + 1_000);
        assert_eq!(n.bytes_inter_operator(), 0);
    }

    #[test]
    fn remote_transfer_time_is_bytes_over_bandwidth_plus_latency() {
        let mut n = net();
        // 500 bytes at 1000 B/s = 0.5 s = 5e8 ns, plus 1 ms latency.
        let t = n.send(0, NodeId(0), NodeId(1), 500, TrafficClass::StateMigration);
        assert_eq!(t, 500_000_000 + 1_000_000);
        assert_eq!(n.bytes_state_migration(), 500);
    }

    #[test]
    fn egress_serializes() {
        let mut n = net();
        let t1 = n.send(0, NodeId(0), NodeId(1), 100, TrafficClass::InterOperator);
        let t2 = n.send(0, NodeId(0), NodeId(2), 100, TrafficClass::InterOperator);
        // Second transfer waits for the first's egress slot.
        assert_eq!(t1, 100_000_000 + 1_000_000);
        assert_eq!(t2, 200_000_000 + 1_000_000);
        // Different sender: no interference.
        let t3 = n.send(0, NodeId(3), NodeId(1), 100, TrafficClass::InterOperator);
        assert_eq!(t3, 100_000_000 + 1_000_000);
    }

    #[test]
    fn idle_egress_starts_at_now() {
        let mut n = net();
        let t = n.send(
            5_000_000_000,
            NodeId(1),
            NodeId(2),
            10,
            TrafficClass::RemoteTask,
        );
        assert_eq!(t, 5_000_000_000 + 10_000_000 + 1_000_000);
        assert_eq!(n.bytes_remote_task(), 10);
    }

    #[test]
    fn traffic_classes_accumulate_separately() {
        let mut n = net();
        n.send(0, NodeId(0), NodeId(1), 10, TrafficClass::InterOperator);
        n.send(0, NodeId(0), NodeId(1), 20, TrafficClass::RemoteTask);
        n.send(0, NodeId(0), NodeId(1), 30, TrafficClass::StateMigration);
        n.send(0, NodeId(0), NodeId(1), 40, TrafficClass::Control);
        assert_eq!(n.bytes_inter_operator(), 10);
        assert_eq!(n.bytes_remote_task(), 20);
        assert_eq!(n.bytes_state_migration(), 30);
        assert_eq!(n.bytes_control(), 40);
    }

    #[test]
    fn control_delay_local_vs_remote() {
        let n = net();
        assert_eq!(n.control_delay(NodeId(0), NodeId(0), 500_000), 1_000);
        assert_eq!(n.control_delay(NodeId(0), NodeId(1), 500_000), 500_000);
    }
}
