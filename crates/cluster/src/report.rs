//! Run reports: everything an experiment harness needs to print a paper
//! table or figure series.

use elasticutor_metrics::{LatencyHistogram, TimeSeries};

/// Timing of one completed shard reassignment (elastic engines) or one
/// per-shard slice of an RC repartition — the data behind Figures 8/9.
#[derive(Clone, Debug)]
pub struct ReassignmentRecord {
    /// When the reassignment began, ns.
    pub started_ns: u64,
    /// Synchronization portion: pause → all pending tuples of the shard
    /// confirmed processed (labeling tuple dequeued, or for RC the global
    /// pause + drain + routing-update rounds), ns.
    pub sync_ns: u64,
    /// State-migration portion (0 for intra-process moves), ns.
    pub migration_ns: u64,
    /// Whether source and destination tasks were on the same node.
    pub intra_node: bool,
    /// Bytes of state moved (0 for intra-process).
    pub state_bytes: u64,
}

impl ReassignmentRecord {
    /// Total reassignment latency.
    pub fn total_ns(&self) -> u64 {
        self.sync_ns + self.migration_ns
    }
}

/// Mean sync/migration breakdown over a set of records.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReassignmentBreakdown {
    /// Number of records aggregated.
    pub count: usize,
    /// Mean synchronization time, ms.
    pub mean_sync_ms: f64,
    /// Mean state-migration time, ms.
    pub mean_migration_ms: f64,
}

/// Summarizes reassignment records, optionally filtering by locality.
pub fn breakdown(
    records: &[ReassignmentRecord],
    intra_node: Option<bool>,
) -> ReassignmentBreakdown {
    let filtered: Vec<&ReassignmentRecord> = records
        .iter()
        .filter(|r| intra_node.is_none_or(|want| r.intra_node == want))
        .collect();
    if filtered.is_empty() {
        return ReassignmentBreakdown::default();
    }
    let n = filtered.len() as f64;
    ReassignmentBreakdown {
        count: filtered.len(),
        mean_sync_ms: filtered.iter().map(|r| r.sync_ns as f64).sum::<f64>() / n / 1e6,
        mean_migration_ms: filtered.iter().map(|r| r.migration_ns as f64).sum::<f64>() / n / 1e6,
    }
}

/// The result of one simulated run.
#[derive(Debug)]
pub struct RunReport {
    /// Engine mode name (static / RC / Elasticutor / naive-EC).
    pub mode: &'static str,
    /// Simulated duration, ns.
    pub duration_ns: u64,
    /// Tuples completed at sink operators after warm-up.
    pub sink_completions: u64,
    /// Mean sink throughput after warm-up, tuples/s.
    pub throughput: f64,
    /// Tuples admitted by sources after warm-up.
    pub source_emissions: u64,
    /// End-to-end latency distribution (source emission → sink
    /// completion) after warm-up.
    pub latency: LatencyHistogram,
    /// Instantaneous sink throughput, sampled each `sample_period`.
    pub throughput_series: TimeSeries,
    /// Mean latency per sample window, ms.
    pub latency_series: TimeSeries,
    /// All shard reassignments performed.
    pub reassignments: Vec<ReassignmentRecord>,
    /// Total state bytes migrated across nodes.
    pub state_migration_bytes: u64,
    /// Total remote main-process ↔ remote-task bytes.
    pub remote_task_bytes: u64,
    /// Total inter-operator bytes crossing nodes.
    pub inter_operator_bytes: u64,
    /// Wall-clock microseconds spent inside scheduler invocations
    /// (real, not simulated — Table 3's "scheduling time").
    pub scheduler_wall_us: Vec<u64>,
    /// Number of scheduler rounds executed.
    pub scheduler_rounds: u64,
    /// Simulated events processed (sanity/perf diagnostics).
    pub events_processed: u64,
}

impl RunReport {
    /// Mean state-migration rate over the run, MB/s.
    pub fn state_migration_rate_mb_s(&self) -> f64 {
        self.state_migration_bytes as f64 / (self.duration_ns as f64 / 1e9) / (1024.0 * 1024.0)
    }

    /// Mean remote-task data rate over the run, MB/s.
    pub fn remote_transfer_rate_mb_s(&self) -> f64 {
        self.remote_task_bytes as f64 / (self.duration_ns as f64 / 1e9) / (1024.0 * 1024.0)
    }

    /// Mean scheduler wall time, ms.
    pub fn mean_scheduling_ms(&self) -> f64 {
        if self.scheduler_wall_us.is_empty() {
            return 0.0;
        }
        self.scheduler_wall_us.iter().sum::<u64>() as f64
            / self.scheduler_wall_us.len() as f64
            / 1000.0
    }

    /// Reassignment breakdown filtered by locality.
    pub fn reassignment_breakdown(&self, intra_node: Option<bool>) -> ReassignmentBreakdown {
        breakdown(&self.reassignments, intra_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(sync_ms: u64, mig_ms: u64, intra: bool) -> ReassignmentRecord {
        ReassignmentRecord {
            started_ns: 0,
            sync_ns: sync_ms * 1_000_000,
            migration_ns: mig_ms * 1_000_000,
            intra_node: intra,
            state_bytes: 0,
        }
    }

    #[test]
    fn breakdown_filters_by_locality() {
        let records = vec![rec(2, 0, true), rec(4, 10, false), rec(6, 20, false)];
        let all = breakdown(&records, None);
        assert_eq!(all.count, 3);
        assert!((all.mean_sync_ms - 4.0).abs() < 1e-9);
        let intra = breakdown(&records, Some(true));
        assert_eq!(intra.count, 1);
        assert!((intra.mean_migration_ms - 0.0).abs() < 1e-9);
        let inter = breakdown(&records, Some(false));
        assert_eq!(inter.count, 2);
        assert!((inter.mean_migration_ms - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = breakdown(&[], None);
        assert_eq!(b.count, 0);
        assert_eq!(b.mean_sync_ms, 0.0);
    }

    #[test]
    fn record_total() {
        let r = rec(3, 7, false);
        assert_eq!(r.total_ns(), 10_000_000);
    }
}
