//! The hybrid elasticity planner — the paper's §4.2 future-work sketch.
//!
//! Elastic executors give *rapid* elasticity, but the operator-level key
//! partition is static: under extreme skew one executor's key subspace
//! can outgrow what even a whole node's cores can serve, and when the
//! total workload collapses, idle executors pin nodes that could be
//! freed. The paper proposes a hybrid: keep elastic executors for
//! fast-path load balancing, and *infrequently* (minutes, not
//! milliseconds) fall back to operator-level repartitioning to split
//! persistently overloaded executors or merge persistently idle ones.
//!
//! This module implements that coarse-grained planner. It consumes
//! per-executor load history and produces [`HybridAction`]s; executing a
//! split/merge costs a full operator-level repartition (the expensive
//! RC-style protocol), which is why the planner demands *sustained*
//! evidence before acting:
//!
//! * **split** an executor whose demand exceeded `split_cores` cores for
//!   `sustain_windows` consecutive windows — beyond that point remote
//!   tasks dominate and per-shard balancing stops helping;
//! * **merge** the two least-loaded executors of an operator when their
//!   combined demand stayed under `merge_cores` cores — freeing one
//!   executor's worth of bookkeeping and (eventually) its node.
//!
//! Hysteresis: an executor must leave the trigger region to be eligible
//! again, so an executor oscillating around the threshold cannot cause
//! repartition churn.

use std::collections::HashMap;

/// Configuration of the hybrid planner.
#[derive(Clone, Debug)]
pub struct HybridConfig {
    /// Demand (in cores) above which an executor is split-eligible.
    pub split_cores: f64,
    /// Combined demand (in cores) below which a pair of executors of the
    /// same operator is merge-eligible.
    pub merge_cores: f64,
    /// Consecutive over/under-threshold windows required before acting.
    pub sustain_windows: u32,
    /// Minimum executors an operator must keep (merging never goes
    /// below this).
    pub min_executors_per_operator: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            split_cores: 16.0,
            merge_cores: 0.5,
            sustain_windows: 10,
            min_executors_per_operator: 1,
        }
    }
}

/// One executor's load sample for a planning window.
#[derive(Clone, Copy, Debug)]
pub struct LoadSample {
    /// Operator the executor belongs to.
    pub operator: u32,
    /// Executor's global id.
    pub executor: u32,
    /// Measured demand in cores (λ/μ).
    pub demand_cores: f64,
}

/// A coarse-grained restructuring decision.
#[derive(Clone, Debug, PartialEq)]
pub enum HybridAction {
    /// Split `executor` of `operator`: halve its key subspace, moving
    /// the upper half (and its shards' state) to a new executor.
    Split {
        /// Operator owning the executor.
        operator: u32,
        /// The persistently overloaded executor.
        executor: u32,
        /// Its mean demand over the sustained window, in cores.
        demand_cores: f64,
    },
    /// Merge `from` into `into` (both of `operator`): `from`'s key
    /// subspace and state move to `into`, and `from` is retired.
    Merge {
        /// Operator owning both executors.
        operator: u32,
        /// Executor to retire.
        from: u32,
        /// Executor that absorbs the key subspace.
        into: u32,
        /// Combined mean demand, in cores.
        demand_cores: f64,
    },
}

/// Tracks sustained evidence per executor/pair.
#[derive(Clone, Copy, Debug, Default)]
struct Streak {
    over: u32,
    under: u32,
    /// Set after an action fires; cleared once the executor leaves the
    /// trigger region (the hysteresis latch).
    latched: bool,
}

/// The hybrid split/merge planner (paper §4.2's coarse-granularity
/// "detect and split those overloaded executors ... every 10 minutes").
#[derive(Debug, Default)]
pub struct HybridPlanner {
    config: HybridConfig,
    streaks: HashMap<u32, Streak>,
    demand_sums: HashMap<u32, f64>,
}

impl HybridPlanner {
    /// Creates a planner.
    pub fn new(config: HybridConfig) -> Self {
        Self {
            config,
            streaks: HashMap::new(),
            demand_sums: HashMap::new(),
        }
    }

    /// Feeds one window of load samples and returns any actions that
    /// became due. Call once per coarse window (e.g. every 10 s–10 min;
    /// the paper suggests minutes).
    pub fn observe(&mut self, samples: &[LoadSample]) -> Vec<HybridAction> {
        let mut actions = Vec::new();

        // --- split detection (per executor) ---
        for s in samples {
            let streak = self.streaks.entry(s.executor).or_default();
            let sum = self.demand_sums.entry(s.executor).or_insert(0.0);
            if s.demand_cores > self.config.split_cores {
                if streak.latched {
                    continue; // acted already; wait for it to cool down
                }
                streak.over += 1;
                *sum += s.demand_cores;
                if streak.over >= self.config.sustain_windows {
                    actions.push(HybridAction::Split {
                        operator: s.operator,
                        executor: s.executor,
                        demand_cores: *sum / f64::from(streak.over),
                    });
                    streak.over = 0;
                    streak.latched = true;
                    *sum = 0.0;
                }
            } else {
                streak.over = 0;
                streak.latched = false;
                *sum = 0.0;
            }
        }

        // --- merge detection (per operator: two coldest executors) ---
        let mut by_op: HashMap<u32, Vec<&LoadSample>> = HashMap::new();
        for s in samples {
            by_op.entry(s.operator).or_default().push(s);
        }
        for (op, mut execs) in by_op {
            if execs.len() <= self.config.min_executors_per_operator || execs.len() < 2 {
                continue;
            }
            execs.sort_by(|a, b| {
                a.demand_cores
                    .partial_cmp(&b.demand_cores)
                    .expect("finite demand")
            });
            let (a, b) = (execs[0], execs[1]);
            let combined = a.demand_cores + b.demand_cores;
            // Track the pair's streak on the colder executor's id.
            let streak = self.streaks.entry(a.executor).or_default();
            if combined < self.config.merge_cores {
                if streak.latched {
                    continue;
                }
                streak.under += 1;
                if streak.under >= self.config.sustain_windows {
                    actions.push(HybridAction::Merge {
                        operator: op,
                        from: a.executor,
                        into: b.executor,
                        demand_cores: combined,
                    });
                    streak.under = 0;
                    streak.latched = true;
                }
            } else {
                streak.under = 0;
            }
        }

        actions
    }

    /// Forgets an executor's history (call after executing a split or
    /// merge, when ids are reassigned).
    pub fn forget(&mut self, executor: u32) {
        self.streaks.remove(&executor);
        self.demand_sums.remove(&executor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(op: u32, exec: u32, demand: f64) -> LoadSample {
        LoadSample {
            operator: op,
            executor: exec,
            demand_cores: demand,
        }
    }

    fn planner(sustain: u32) -> HybridPlanner {
        HybridPlanner::new(HybridConfig {
            split_cores: 16.0,
            merge_cores: 0.5,
            sustain_windows: sustain,
            min_executors_per_operator: 1,
        })
    }

    #[test]
    fn split_requires_sustained_overload() {
        let mut p = planner(3);
        // Two hot windows, one cool window: streak resets.
        assert!(p.observe(&[sample(0, 1, 20.0)]).is_empty());
        assert!(p.observe(&[sample(0, 1, 22.0)]).is_empty());
        assert!(p.observe(&[sample(0, 1, 2.0)]).is_empty());
        assert!(p.observe(&[sample(0, 1, 25.0)]).is_empty());
        assert!(p.observe(&[sample(0, 1, 25.0)]).is_empty());
        let actions = p.observe(&[sample(0, 1, 25.0)]);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            HybridAction::Split {
                operator,
                executor,
                demand_cores,
            } => {
                assert_eq!((*operator, *executor), (0, 1));
                assert!((demand_cores - 25.0).abs() < 1e-9);
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn split_latches_until_cooldown() {
        let mut p = planner(2);
        p.observe(&[sample(0, 7, 30.0)]);
        let fired = p.observe(&[sample(0, 7, 30.0)]);
        assert_eq!(fired.len(), 1);
        // Still hot: no duplicate action while latched.
        for _ in 0..5 {
            assert!(p.observe(&[sample(0, 7, 30.0)]).is_empty());
        }
        // Cools down, then reheats: eligible again.
        assert!(p.observe(&[sample(0, 7, 1.0)]).is_empty());
        p.observe(&[sample(0, 7, 30.0)]);
        assert_eq!(p.observe(&[sample(0, 7, 30.0)]).len(), 1);
    }

    #[test]
    fn merge_pairs_two_coldest() {
        let mut p = planner(2);
        let window = [sample(1, 10, 0.1), sample(1, 11, 0.2), sample(1, 12, 8.0)];
        assert!(p.observe(&window).is_empty());
        let actions = p.observe(&window);
        assert_eq!(
            actions,
            vec![HybridAction::Merge {
                operator: 1,
                from: 10,
                into: 11,
                demand_cores: 0.30000000000000004,
            }]
        );
    }

    #[test]
    fn merge_respects_minimum_parallelism() {
        let mut p = HybridPlanner::new(HybridConfig {
            sustain_windows: 1,
            min_executors_per_operator: 2,
            ..HybridConfig::default()
        });
        let window = [sample(0, 1, 0.1), sample(0, 2, 0.1)];
        assert!(
            p.observe(&window).is_empty(),
            "cannot merge below the operator's minimum"
        );
    }

    #[test]
    fn busy_operators_are_left_alone() {
        let mut p = planner(1);
        let window = [sample(0, 1, 4.0), sample(0, 2, 5.0), sample(0, 3, 6.0)];
        for _ in 0..10 {
            assert!(p.observe(&window).is_empty());
        }
    }

    #[test]
    fn forget_clears_history() {
        let mut p = planner(2);
        p.observe(&[sample(0, 1, 30.0)]);
        p.forget(1);
        // Streak restarted: needs the full sustain again.
        assert!(p.observe(&[sample(0, 1, 30.0)]).is_empty());
        assert_eq!(p.observe(&[sample(0, 1, 30.0)]).len(), 1);
    }

    #[test]
    fn independent_executors_tracked_separately() {
        let mut p = planner(2);
        p.observe(&[sample(0, 1, 30.0), sample(0, 2, 30.0)]);
        let actions = p.observe(&[sample(0, 1, 30.0), sample(0, 2, 30.0)]);
        assert_eq!(actions.len(), 2, "both hot executors split");
    }
}
