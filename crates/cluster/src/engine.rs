//! The event-driven cluster engine: data plane shared by all paradigms.
//!
//! One [`ClusterEngine`] simulates a whole cluster run: source executors
//! emit tuples (drawn from a [`TupleSource`]), tuples hop across the
//! [`Network`] to the receivers of downstream executors, receivers route
//! through two-tier [`RoutingTable`]s to task queues, tasks serve tuples
//! FCFS with per-operator service-time models, and emitters forward
//! outputs downstream. Sink completions feed the latency and throughput
//! metrics.
//!
//! Control-plane behaviour (dynamic scheduling, the consistent shard
//! reassignment protocol, RC's global repartitioning) lives in
//! `control.rs`; this file owns the structures and the data path.
//!
//! Simplifications, documented here once:
//! * Source executors do not consume scheduled CPU cores (generation is
//!   free); the measured operators compete for all `nodes × cores`.
//! * A "process" is (executor × node): tasks of one executor on one node
//!   share state (intra-process sharing); a reassignment between nodes
//!   always crosses processes.
//! * Backpressure is a global high/low watermark on queued tuples
//!   (Storm's max-spout-pending behaves the same at the modeled
//!   granularity).

use std::collections::{BTreeMap, VecDeque};

use elasticutor_core::balance::LoadBalancer;
use elasticutor_core::ids::{Key, NodeId, OperatorId, ShardId, TaskId};
use elasticutor_core::partition::{DynamicPartition, StaticHashPartition};
use elasticutor_core::reassign::ReassignmentTracker;
use elasticutor_core::routing::{RouteDecision, RoutingTable};
use elasticutor_core::topology::Topology;
use elasticutor_metrics::{LatencyHistogram, SlidingWindowCounter, TimeSeries};
use elasticutor_scheduler::assignment::{Assignment, ClusterSpec};
use elasticutor_scheduler::scheduler::{DynamicScheduler, SchedulerConfig};
use elasticutor_sim::{SimRng, Simulation};
use elasticutor_workload::profile::OperatorProfile;
use elasticutor_workload::{MicroWorkload, SseWorkload, TupleSource};

use crate::config::{EngineMode, ExperimentConfig, WorkloadKind};
use crate::net::{Network, TrafficClass};
use crate::report::{ReassignmentRecord, RunReport};

/// A tuple in flight through the simulated cluster.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SimTuple {
    /// Partitioning key.
    pub key: Key,
    /// Payload bytes (plus framing on the wire).
    pub payload: u32,
    /// Cost hint for `CostModel::FromTuple` operators.
    pub cost_hint: u64,
    /// Source emission time — the latency origin.
    pub created_ns: u64,
    /// Operator that will process this tuple (dense index).
    pub op: u32,
}

impl SimTuple {
    pub(crate) fn wire_bytes(&self) -> u64 {
        u64::from(self.payload) + 24
    }
}

/// Work items in a task's pending queue.
#[derive(Debug)]
pub(crate) enum Work {
    Tuple(SimTuple),
    /// The labeling tuple of the consistent-reassignment protocol
    /// (§3.3); carries the in-flight move's label minted by the shared
    /// [`ReassignmentTracker`].
    Label(u64),
}

/// One data-processing task (thread bound to a simulated core).
#[derive(Debug)]
pub(crate) struct TaskRt {
    pub node: NodeId,
    pub queue: VecDeque<Work>,
    pub busy: bool,
    /// Tuple currently being served (with its drawn service time).
    pub current: Option<(SimTuple, u64)>,
    /// True once the scheduler revoked this task's core: it drains its
    /// shards and queue, then disappears.
    pub retiring: bool,
}

impl TaskRt {
    fn new(node: NodeId) -> Self {
        Self {
            node,
            queue: VecDeque::new(),
            busy: false,
            current: None,
            retiring: false,
        }
    }
}

/// Runtime state of one transform executor.
pub(crate) struct ExecRt {
    pub op: OperatorId,
    pub local_node: NodeId,
    /// Two-tier routing: local shards → tasks (buffering while paused).
    pub routing: RoutingTable<SimTuple>,
    pub tasks: BTreeMap<TaskId, TaskRt>,
    pub next_task: u32,
    /// Per-local-shard accumulated service ns in the current window.
    pub shard_load_ns: Vec<f64>,
    /// Measurement window counters (reset every scheduling interval).
    pub arrivals: u64,
    /// EWMA-smoothed arrival rate (tuples/s) across windows; damps the
    /// pause/catch-up oscillation a raw window rate would feed back into
    /// the allocator.
    pub ewma_lambda: f64,
    pub served: u64,
    pub service_ns_sum: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    /// Whether this is a resource-centric executor (one task, shards
    /// assigned at operator level).
    pub is_rc: bool,
    /// RC only: which operator-global shard each local slot refers to
    /// (sorted ascending; parallel to `shard_load_ns`).
    pub rc_global_shards: Vec<u32>,
    /// True while this RC executor is being decommissioned.
    pub rc_retired: bool,
}

impl ExecRt {
    pub(crate) fn live_tasks(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|(_, t)| !t.retiring)
            .map(|(&id, _)| id)
            .collect()
    }

    pub(crate) fn total_queued(&self) -> usize {
        self.tasks
            .values()
            .map(|t| t.queue.len() + usize::from(t.busy))
            .sum::<usize>()
            + self.routing.buffered_tuples()
    }
}

/// Substrate-specific metadata riding on each in-flight reassignment in
/// the shared [`ReassignmentTracker`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReassignMeta {
    /// Global executor index the move belongs to.
    pub exec: usize,
    /// Whether source and destination tasks share a node (free state
    /// hand-off via intra-process sharing).
    pub intra_node: bool,
    /// Bytes of shard state crossing the wire (0 intra-node).
    pub state_bytes: u64,
}

/// Phases of an RC operator-level repartition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RepartPhase {
    /// Control round pausing all upstream executors.
    Pausing,
    /// Waiting for in-flight tuples to drain out of the operator.
    Draining,
    /// Shard state crossing the network.
    Migrating,
    /// Control round installing new routing tables upstream.
    Updating,
}

/// An in-flight RC repartition of one operator.
pub(crate) struct RepartRt {
    pub op: usize,
    pub phase: RepartPhase,
    pub started_ns: u64,
    pub drain_done_ns: u64,
    pub migrate_done_ns: u64,
    /// Planned global-shard moves: (shard, from_exec, to_exec) as global
    /// executor indices.
    pub moves: Vec<(u32, usize, usize)>,
    /// Executors being decommissioned by this repartition.
    pub retire_execs: Vec<usize>,
    /// Whether this is a bulk (executor-set resize) round — these get a
    /// post-round cooldown; single-shard balancing rounds chain freely.
    pub bulk: bool,
    /// Tuples buffered at upstream emitters while paused, with their
    /// origin node (order preserved).
    pub buffered: VecDeque<(NodeId, SimTuple)>,
}

/// Events of the cluster simulation.
pub(crate) enum Ev {
    /// The global source stream fires its next tuple.
    SourceEmit,
    /// A tuple arrives at an executor's main-process receiver.
    Ingest { exec: usize, tuple: SimTuple },
    /// A tuple arrives at a remote task's process.
    RemoteDeliver {
        exec: usize,
        task: TaskId,
        tuple: SimTuple,
    },
    /// The labeling tuple of a reassignment arrives at a remote source
    /// task. It rides the same main-process → task wire as data tuples
    /// (same egress ⇒ FIFO), so it cannot overtake in-flight tuples of
    /// its shard — the §3.3 correctness argument.
    LabelArrive {
        exec: usize,
        task: TaskId,
        reassign: u64,
    },
    /// A task finishes its current tuple.
    TaskDone { exec: usize, task: TaskId },
    /// An output tuple from a remote task reaches the main-process
    /// emitter and continues downstream.
    EmitterForward { exec: usize, tuple: SimTuple },
    /// Migrated shard state arrives at the destination process.
    StateArrived { reassign: u64 },
    /// Periodic scheduler / rebalancer invocation.
    SchedTick,
    /// Periodic metrics sample.
    Sample,
    /// RC repartition phase transition.
    Repart { id: usize, phase: RepartPhase },
    /// Poll whether an RC-draining operator has quiesced.
    DrainPoll { id: usize },
}

/// The paradigm-specific operator-level partitioning.
pub(crate) enum OpPartition {
    /// Static hash over the operator's executors (static + elastic).
    Static(StaticHashPartition),
    /// RC: dynamic shard→executor map (indices are positions in
    /// `op_execs[op]`, remapped on executor churn).
    Dynamic(DynamicPartition),
}

/// The simulated cluster engine. Construct with [`ClusterEngine::new`]
/// and drive with [`ClusterEngine::run`].
pub struct ClusterEngine {
    pub(crate) cfg: ExperimentConfig,
    pub(crate) topology: Topology,
    pub(crate) profiles: Vec<OperatorProfile>,
    /// Fallback mean service ns per operator (for μ when idle and for
    /// `FromTuple` operators).
    pub(crate) mean_service_ns: Vec<u64>,
    pub(crate) net: Network,
    pub(crate) sim: Simulation<Ev>,
    pub(crate) rng: SimRng,
    pub(crate) source: SourceImpl,
    pub(crate) source_nodes: Vec<NodeId>,
    pub(crate) next_source: usize,
    pub(crate) pending_emit: Option<(u64, SimTuple)>,
    pub(crate) emitter_scheduled: bool,
    /// The arrival process's own clock: tuple n arrives at Σ gaps,
    /// regardless of backpressure. Latency is measured from this arrival
    /// time, so time spent throttled at the source counts — the paper's
    /// "processing latency" includes it (that is where the 2-orders gap
    /// of Figures 6/16 comes from when a baseline cannot keep up).
    pub(crate) virtual_arrival_ns: u64,
    /// Transform executors (global dense indices).
    pub(crate) execs: Vec<ExecRt>,
    /// Operator (dense index) → global executor indices. Sources empty.
    pub(crate) op_execs: Vec<Vec<usize>>,
    pub(crate) op_partition: Vec<OpPartition>,
    /// Operator currently paused by an RC repartition (index into
    /// `reparts`), if any.
    pub(crate) op_repart: Vec<Option<usize>>,
    /// Scheduler ticks remaining before an operator may repartition
    /// again (RC cooldown after each repartition).
    pub(crate) op_repart_cooldown: Vec<u32>,
    // --- Control plane ---
    pub(crate) scheduler: DynamicScheduler,
    pub(crate) cluster_spec: ClusterSpec,
    /// Elastic modes: scheduler-facing assignment (executor × node).
    pub(crate) assignment: Assignment,
    pub(crate) balancer: LoadBalancer,
    /// Per-node cores used (RC + static bookkeeping).
    pub(crate) node_used: Vec<u32>,
    /// In-flight shard moves, tracked by the shared §3.3 state machine.
    pub(crate) reassigns: ReassignmentTracker<ReassignMeta>,
    pub(crate) reparts: Vec<RepartRt>,
    // --- Backpressure ---
    pub(crate) queued_total: usize,
    pub(crate) sources_paused: bool,
    /// When the current pause began (None while flowing).
    pub(crate) paused_since: Option<u64>,
    /// Paused nanoseconds accumulated in the current scheduling window.
    pub(crate) paused_ns_window: u64,
    // --- Metrics ---
    pub(crate) sink_window: SlidingWindowCounter,
    pub(crate) latency_hist: LatencyHistogram,
    pub(crate) window_hist: LatencyHistogram,
    pub(crate) throughput_series: TimeSeries,
    pub(crate) latency_series: TimeSeries,
    pub(crate) sink_completions: u64,
    pub(crate) source_emissions: u64,
    /// Source emissions in the current scheduling interval (λ0 input).
    pub(crate) interval_source_emissions: u64,
    pub(crate) records: Vec<ReassignmentRecord>,
    pub(crate) scheduler_wall_us: Vec<u64>,
    pub(crate) scheduler_rounds: u64,
    pub(crate) warmup_ns: u64,
}

/// The workload source behind the engine (concrete to avoid dyn-dispatch
/// in the hot path).
pub(crate) enum SourceImpl {
    Micro(MicroWorkload),
    Sse(SseWorkload),
}

impl SourceImpl {
    fn next_tuple(&mut self, now: u64) -> (u64, elasticutor_core::tuple::Tuple) {
        match self {
            SourceImpl::Micro(w) => w.next_tuple(now),
            SourceImpl::Sse(w) => w.next_tuple(now),
        }
    }

    pub(crate) fn nominal_rate(&self) -> f64 {
        match self {
            SourceImpl::Micro(w) => w.nominal_rate(),
            SourceImpl::Sse(w) => w.nominal_rate(),
        }
    }
}

impl ClusterEngine {
    /// Builds an engine for the experiment.
    ///
    /// # Panics
    ///
    /// Panics when the config is invalid — in particular when the
    /// topology's initial transform executors outnumber the cluster's
    /// cores: the simulated substrate pins each executor's first task to
    /// a dedicated core (no time-sharing), so `Σ parallelism` of
    /// transform operators must not exceed `nodes × cores_per_node`.
    pub fn new(cfg: ExperimentConfig) -> Self {
        cfg.validate().expect("invalid experiment config");
        let mut rng = SimRng::new(cfg.seed);
        let total_cores = cfg.cluster.total_cores();

        // Topology + profiles + source.
        let (topology, profiles, source, source_parallelism) = match &cfg.workload {
            WorkloadKind::Micro(mc) => {
                let mut mc = mc.clone();
                if cfg.mode == EngineMode::Static {
                    // Static: enough single-core executors to use every
                    // core (paper §5: "we create enough executors ... to
                    // fully utilize all CPU cores").
                    mc.calculator_executors = total_cores;
                    mc.shards_per_executor = 1;
                }
                // RC keeps the configured y: the partition granularity is
                // y·z operator-global shards (§5: "the granularity of the
                // key space repartitioning in the RC approach is 8192
                // shards per operator, the same as in Elasticutor"), and
                // RC starts with y executors, growing/shrinking from
                // there.
                let topo = mc.topology();
                let profiles = vec![
                    OperatorProfile {
                        cost: elasticutor_workload::CostModel::Deterministic { ns: 1 },
                        output_bytes: mc.tuple_bytes,
                        state_write_bytes: 0,
                    },
                    OperatorProfile {
                        cost: elasticutor_workload::CostModel::FromTuple,
                        output_bytes: 0,
                        state_write_bytes: 0,
                    },
                ];
                let gen_par = mc.generator_parallelism;
                let mean = mc.cpu_cost_ns;
                let w = MicroWorkload::new(mc, rng.next_u64());
                (
                    topo,
                    profiles,
                    SourceImpl::Micro(w),
                    (gen_par, vec![1u64, mean]),
                )
            }
            WorkloadKind::Sse(sc) => {
                let mut sc = sc.clone();
                let transforms = 12u32; // transactor + 11 analytics
                if cfg.mode == EngineMode::Static {
                    sc.executors_per_operator = (total_cores / transforms).max(1);
                    sc.shards_per_executor = 1;
                }
                let topo = sc.topology();
                let profiles = sc.profiles();
                let mut means = vec![1u64];
                means.push(sc.transactor_cost_ns);
                for _ in 0..11 {
                    means.push(sc.analytics_cost_ns);
                }
                let par = sc.source_parallelism;
                let w = SseWorkload::new(sc, rng.next_u64());
                (topo, profiles, SourceImpl::Sse(w), (par, means))
            }
        };
        let (source_parallelism, mean_service_ns) = source_parallelism;

        // Source executor placement: round-robin over nodes.
        let source_nodes: Vec<NodeId> = (0..source_parallelism)
            .map(|i| NodeId(i % cfg.cluster.nodes))
            .collect();

        let cluster_spec = ClusterSpec::uniform(cfg.cluster.nodes, cfg.cluster.cores_per_node);

        // The substrate pins one core per initial executor; fail loudly
        // up front rather than panicking mid-grant.
        if cfg.mode != EngineMode::Static {
            let initial_executors: u32 = topology
                .operators()
                .iter()
                .filter(|op| !topology.upstream(op.id).is_empty())
                .map(|op| op.parallelism)
                .sum();
            assert!(
                initial_executors <= total_cores,
                "topology starts {initial_executors} transform executors but the cluster \
                 has only {total_cores} cores; lower the per-operator parallelism"
            );
        }

        let mut engine = Self {
            net: Network::new(&cfg.cluster),
            sim: Simulation::new(),
            source,
            source_nodes,
            next_source: 0,
            pending_emit: None,
            emitter_scheduled: false,
            virtual_arrival_ns: 0,
            execs: Vec::new(),
            op_execs: vec![Vec::new(); topology.operators().len()],
            op_partition: Vec::new(),
            op_repart: vec![None; topology.operators().len()],
            op_repart_cooldown: vec![0; topology.operators().len()],
            scheduler: DynamicScheduler::new(SchedulerConfig {
                latency_target: cfg.latency_target_s,
                policy: cfg.mode.policy(),
                phi_base: cfg.phi_base,
                ..SchedulerConfig::default()
            }),
            cluster_spec,
            assignment: Assignment::empty(1, cfg.cluster.nodes as usize),
            balancer: LoadBalancer {
                imbalance_threshold: cfg.imbalance_threshold,
                ..LoadBalancer::default()
            },
            node_used: vec![0; cfg.cluster.nodes as usize],
            reassigns: ReassignmentTracker::new(),
            reparts: Vec::new(),
            queued_total: 0,
            sources_paused: false,
            paused_since: None,
            paused_ns_window: 0,
            sink_window: SlidingWindowCounter::one_second(),
            latency_hist: LatencyHistogram::new(),
            window_hist: LatencyHistogram::new(),
            throughput_series: TimeSeries::new("throughput_tuples_per_s"),
            latency_series: TimeSeries::new("latency_ms"),
            sink_completions: 0,
            source_emissions: 0,
            interval_source_emissions: 0,
            records: Vec::new(),
            scheduler_wall_us: Vec::new(),
            scheduler_rounds: 0,
            warmup_ns: cfg.warmup_ns,
            mean_service_ns,
            profiles,
            rng,
            topology,
            cfg,
        };
        engine.init_executors();
        engine
    }

    /// Places initial executors and partitions per the engine mode.
    fn init_executors(&mut self) {
        let nodes = self.cfg.cluster.nodes;
        let ops: Vec<_> = self.topology.operators().to_vec();
        let mut next_node = 0u32;
        for spec in &ops {
            if self.topology.upstream(spec.id).is_empty() {
                // Source operator: no transform executors.
                self.op_partition
                    .push(OpPartition::Static(StaticHashPartition::new(1)));
                continue;
            }
            match self.cfg.mode {
                EngineMode::Static | EngineMode::Elastic | EngineMode::NaiveElastic => {
                    self.op_partition
                        .push(OpPartition::Static(StaticHashPartition::new(
                            spec.parallelism,
                        )));
                    for i in 0..spec.parallelism {
                        let node = NodeId(next_node % nodes);
                        next_node += 1;
                        let _ = i;
                        self.spawn_executor(spec.id, node, spec.shards_per_executor, Vec::new());
                    }
                }
                EngineMode::ResourceCentric => {
                    // Start with the configured y executors; the RC
                    // scheduler resizes from there. Shards = y·z global.
                    let initial = spec.parallelism;
                    let global_shards = spec.parallelism * spec.shards_per_executor;
                    let partition = DynamicPartition::new(global_shards, initial);
                    // Executor i owns the shards the round-robin layout
                    // gives it.
                    for i in 0..initial {
                        let node = NodeId(next_node % nodes);
                        next_node += 1;
                        let owned: Vec<u32> =
                            (0..global_shards).filter(|s| s % initial == i).collect();
                        let _ = i;
                        self.spawn_executor(spec.id, node, owned.len() as u32, owned);
                    }
                    self.op_partition.push(OpPartition::Dynamic(partition));
                }
            }
        }

        // Core bookkeeping + scheduler assignment.
        match self.cfg.mode {
            EngineMode::Elastic | EngineMode::NaiveElastic => {
                let m = self.execs.len();
                let mut x = Assignment::empty(m, nodes as usize);
                if let Some(k) = self.cfg.manual_cores {
                    // Figures 10–12: a single transform executor granted k
                    // cores, local node first, then round-robin remote.
                    assert_eq!(m, 1, "manual_cores requires exactly one transform executor");
                    assert!(
                        k <= self.cfg.cluster.total_cores(),
                        "manual_cores exceeds cluster capacity"
                    );
                    let local = self.execs[0].local_node;
                    let per_node = self.cfg.cluster.cores_per_node;
                    let mut granted = 0u32;
                    let mut node_iter = (0..nodes).cycle().filter(|&n| NodeId(n) != local);
                    while granted < k {
                        let node = if granted < per_node {
                            local
                        } else {
                            NodeId(node_iter.next().expect("nodes"))
                        };
                        if x.used_on_node(node) < per_node {
                            x.grant(0, node, &self.cluster_spec);
                            granted += 1;
                        }
                    }
                } else {
                    for (j, e) in self.execs.iter().enumerate() {
                        x.grant(j, e.local_node, &self.cluster_spec);
                    }
                }
                // Materialize tasks per the assignment.
                for j in 0..m {
                    for i in 0..nodes {
                        let node = NodeId(i);
                        for _ in 0..x.on_node(j, node) {
                            self.add_task(j, node);
                        }
                    }
                    self.rebalance_initial(j);
                }
                self.assignment = x;
            }
            EngineMode::Static | EngineMode::ResourceCentric => {
                // One core per executor, bookkeeping only.
                for j in 0..self.execs.len() {
                    let node = self.execs[j].local_node;
                    self.node_used[node.index()] += 1;
                    self.add_task(j, node);
                    self.rebalance_initial(j);
                }
            }
        }

        // Prime the event loop.
        self.schedule_source_emit();
        self.sim
            .schedule_after(self.cfg.sample_period_ns, Ev::Sample);
        if self.cfg.mode != EngineMode::Static {
            self.sim
                .schedule_after(self.cfg.scheduling_interval_ns, Ev::SchedTick);
        }
    }

    fn spawn_executor(
        &mut self,
        op: OperatorId,
        node: NodeId,
        num_shards: u32,
        rc_global_shards: Vec<u32>,
    ) -> usize {
        let idx = self.execs.len();
        let is_rc = matches!(self.cfg.mode, EngineMode::ResourceCentric);
        self.execs.push(ExecRt {
            op,
            is_rc,
            local_node: node,
            routing: RoutingTable::new(num_shards.max(1), TaskId(0)),
            tasks: BTreeMap::new(),
            next_task: 0,
            shard_load_ns: vec![0.0; num_shards.max(1) as usize],
            arrivals: 0,
            ewma_lambda: 0.0,
            served: 0,
            service_ns_sum: 0,
            bytes_in: 0,
            bytes_out: 0,
            rc_global_shards,
            rc_retired: false,
        });
        self.op_execs[op.index()].push(idx);
        idx
    }

    pub(crate) fn add_task(&mut self, exec: usize, node: NodeId) -> TaskId {
        let e = &mut self.execs[exec];
        let id = TaskId(e.next_task);
        e.next_task += 1;
        e.tasks.insert(id, TaskRt::new(node));
        id
    }

    /// Spreads shards evenly across a fresh executor's tasks (no protocol
    /// needed before the run starts).
    fn rebalance_initial(&mut self, exec: usize) {
        let e = &mut self.execs[exec];
        let tasks: Vec<TaskId> = e.tasks.keys().copied().collect();
        if tasks.is_empty() {
            return;
        }
        let n = e.routing.num_shards();
        for s in 0..n {
            let t = tasks[(s as usize) % tasks.len()];
            e.routing.set_task(ShardId(s), t).expect("fresh shard");
        }
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Runs the simulation to `duration_ns` and returns the report.
    pub fn run(mut self) -> RunReport {
        let deadline = self.cfg.duration_ns;
        while let Some(ev) = self.sim.pop_until(deadline) {
            self.handle(ev);
        }
        self.build_report()
    }

    /// Like [`Self::run`], printing a one-line engine state dump each
    /// simulated second (development diagnostics).
    pub fn run_debug(mut self) -> RunReport {
        let deadline = self.cfg.duration_ns;
        let mut next_dump = 0u64;
        while let Some(ev) = self.sim.pop_until(deadline) {
            self.handle(ev);
            if self.sim.now() >= next_dump {
                next_dump += 1_000_000_000;
                let tasks: Vec<usize> = self.execs.iter().map(|e| e.tasks.len()).collect();
                let queues: Vec<usize> = self.execs.iter().map(|e| e.total_queued()).collect();
                let live = self.execs.iter().filter(|e| !e.rc_retired).count();
                let reparts_live = self.op_repart.iter().filter(|r| r.is_some()).count();
                eprintln!(
                    "t={:3}s queued={:6} paused={} emissions={:6} execs={} reparts={} tasks={:?} queues={:?}",
                    self.sim.now() / 1_000_000_000,
                    self.queued_total,
                    self.sources_paused,
                    self.interval_source_emissions,
                    live,
                    reparts_live,
                    tasks,
                    queues,
                );
            }
        }
        self.build_report()
    }

    pub(crate) fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::SourceEmit => self.on_source_emit(),
            Ev::Ingest { exec, tuple } => self.on_ingest(exec, tuple),
            Ev::RemoteDeliver { exec, task, tuple } => {
                // The tuple was counted while on the wire; enqueue_task
                // re-counts it in the task queue.
                self.queued_total -= 1;
                self.enqueue_task(exec, task, Work::Tuple(tuple));
            }
            Ev::TaskDone { exec, task } => self.on_task_done(exec, task),
            Ev::LabelArrive {
                exec,
                task,
                reassign,
            } => self.on_label_arrive(exec, task, reassign),
            Ev::EmitterForward { exec, tuple } => self.forward_downstream(exec, tuple),
            Ev::StateArrived { reassign } => self.on_state_arrived(reassign),
            Ev::SchedTick => self.on_sched_tick(),
            Ev::Sample => self.on_sample(),
            Ev::Repart { id, phase } => self.on_repart_phase(id, phase),
            Ev::DrainPoll { id } => self.on_drain_poll(id),
        }
    }

    // ------------------------------------------------------------------
    // Sources
    // ------------------------------------------------------------------

    fn schedule_source_emit(&mut self) {
        let now = self.sim.now();
        if self.pending_emit.is_none() {
            // Draw the next arrival on the virtual clock: the outside
            // world does not stop producing while we are backpressured.
            let (gap, t) = self.source.next_tuple(self.virtual_arrival_ns);
            self.virtual_arrival_ns += gap;
            let tuple = SimTuple {
                key: t.key,
                payload: t.payload_bytes,
                cost_hint: t.cpu_cost_ns,
                created_ns: self.virtual_arrival_ns,
                op: 0, // set per downstream edge at emission
            };
            self.pending_emit = Some((self.virtual_arrival_ns, tuple));
        }
        let (at, _) = self.pending_emit.expect("just set");
        self.sim.schedule_at(at.max(now), Ev::SourceEmit);
        self.emitter_scheduled = true;
    }

    fn on_source_emit(&mut self) {
        if self.sources_paused {
            self.emitter_scheduled = false;
            return;
        }
        let Some((_, tuple)) = self.pending_emit.take() else {
            return;
        };
        let now = self.sim.now();
        let src_node = self.source_nodes[self.next_source % self.source_nodes.len()];
        self.next_source += 1;
        if now >= self.warmup_ns {
            self.source_emissions += 1;
        }
        self.interval_source_emissions += 1;
        // Sources are operator 0 by construction (single-source
        // topologies in this evaluation).
        let source_op = self
            .topology
            .sources()
            .next()
            .expect("topology has a source")
            .id;
        let downstream: Vec<OperatorId> = self.topology.downstream(source_op).to_vec();
        for down in downstream {
            let mut t = tuple;
            t.op = down.0;
            self.route_to_operator(src_node, down, t);
        }
        self.schedule_source_emit();
    }

    pub(crate) fn pause_sources_if_needed(&mut self) {
        if !self.sources_paused && self.queued_total > self.cfg.backpressure_high {
            self.sources_paused = true;
            self.paused_since = Some(self.sim.now());
        }
    }

    pub(crate) fn resume_sources_if_possible(&mut self) {
        if self.sources_paused && self.queued_total < self.cfg.backpressure_low {
            self.sources_paused = false;
            if let Some(since) = self.paused_since.take() {
                self.paused_ns_window += self.sim.now().saturating_sub(since);
            }
            if !self.emitter_scheduled {
                // Resume emission; the pending tuple (if any) goes out now.
                self.schedule_source_emit();
            }
        }
    }

    /// Demand-inflation factor for the closing scheduling window. Under
    /// backpressure the *admitted* rate is censored at current capacity:
    /// if sources were paused for a fraction `p` of the window, the true
    /// offered rate is at least `admitted / (1 - p)`. Feeding the raw
    /// (censored) rate to the performance model would make it believe the
    /// current allocation suffices, freezing a saturated system at its
    /// current size; de-censoring lets the allocation converge in a few
    /// rounds. Capped to damp noise from transient pauses.
    pub(crate) fn take_window_demand_inflation(&mut self) -> f64 {
        let now = self.sim.now();
        if let Some(since) = self.paused_since {
            self.paused_ns_window += now.saturating_sub(since);
            self.paused_since = Some(now);
        }
        let p = (self.paused_ns_window as f64 / self.cfg.scheduling_interval_ns as f64)
            .clamp(0.0, 0.95);
        self.paused_ns_window = 0;
        (1.0 / (1.0 - p)).min(4.0)
    }

    // ------------------------------------------------------------------
    // Routing + data plane
    // ------------------------------------------------------------------

    /// Sends `tuple` from `from_node` to the owning executor of operator
    /// `op` for its key (or buffers it if the operator is mid-repartition).
    pub(crate) fn route_to_operator(&mut self, from_node: NodeId, op: OperatorId, tuple: SimTuple) {
        if let Some(rid) = self.op_repart[op.index()] {
            self.reparts[rid].buffered.push_back((from_node, tuple));
            self.queued_total += 1;
            self.pause_sources_if_needed();
            return;
        }
        let exec = match &self.op_partition[op.index()] {
            OpPartition::Static(p) => {
                let e = p.executor_for(tuple.key);
                self.op_execs[op.index()][e.index()]
            }
            OpPartition::Dynamic(p) => {
                let e = p.executor_for(tuple.key);
                self.op_execs[op.index()][e.index()]
            }
        };
        let dst = self.execs[exec].local_node;
        let now = self.sim.now();
        // Tuples on the inter-operator wire count toward backpressure
        // (Storm's max-spout-pending tracks every unacked tuple): without
        // this, a source resuming after a pause could flood an unbounded
        // in-flight batch before the first one lands in a queue.
        self.queued_total += 1;
        self.pause_sources_if_needed();
        let arrival = self.net.send(
            now,
            from_node,
            dst,
            tuple.wire_bytes(),
            TrafficClass::InterOperator,
        );
        self.sim.schedule_at(arrival, Ev::Ingest { exec, tuple });
    }

    fn on_ingest(&mut self, exec: usize, tuple: SimTuple) {
        // Off the wire; the routing decision below re-counts it (queue,
        // pause buffer, or remote-task hop).
        self.queued_total -= 1;
        let now = self.sim.now();
        let is_rc = self.execs[exec].is_rc;
        {
            let e = &mut self.execs[exec];
            e.arrivals += 1;
            e.bytes_in += tuple.wire_bytes();
        }
        if is_rc {
            // RC executors have exactly one task on their local node;
            // the receiver hands tuples straight to it. If the tuple's
            // global shard moved away while in flight (stale routing
            // right after a repartition), bounce it back through the
            // partition.
            let global = match &self.op_partition[self.execs[exec].op.index()] {
                OpPartition::Dynamic(p) => p.shard_for(tuple.key).0,
                OpPartition::Static(_) => unreachable!("RC exec under static partition"),
            };
            match self.execs[exec].rc_global_shards.binary_search(&global) {
                Err(_) => {
                    let op = self.execs[exec].op;
                    let node = self.execs[exec].local_node;
                    self.route_to_operator(node, op, tuple);
                    return;
                }
                Ok(slot) => {
                    let demand = self.expected_cost_ns(&tuple);
                    self.execs[exec].shard_load_ns[slot] += demand;
                }
            }
            let task = *self.execs[exec].tasks.keys().next().expect("RC task");
            self.enqueue_task(exec, task, Work::Tuple(tuple));
            return;
        }

        let local_shard = self.execs[exec].routing.shard_for(tuple.key);
        let demand = self.expected_cost_ns(&tuple);
        self.execs[exec].shard_load_ns[local_shard.index()] += demand;
        let decision = self.execs[exec].routing.route_shard(local_shard, tuple);
        match decision {
            RouteDecision::Buffered(_) => {
                self.queued_total += 1;
                self.pause_sources_if_needed();
            }
            RouteDecision::Deliver(task, tuple) => {
                let task_node = self.execs[exec]
                    .tasks
                    .get(&task)
                    .expect("routed to live task")
                    .node;
                let local = self.execs[exec].local_node;
                if task_node == local {
                    self.enqueue_task(exec, task, Work::Tuple(tuple));
                } else {
                    // Count wire-bound tuples toward backpressure: under
                    // data-intensive workloads (Figures 10–11) the remote
                    // egress is the bottleneck and an uncounted wire
                    // backlog would grow without bound.
                    self.queued_total += 1;
                    self.pause_sources_if_needed();
                    let arrival = self.net.send(
                        now,
                        local,
                        task_node,
                        tuple.wire_bytes(),
                        TrafficClass::RemoteTask,
                    );
                    self.sim
                        .schedule_at(arrival, Ev::RemoteDeliver { exec, task, tuple });
                }
            }
        }
    }

    /// Expected service demand of `tuple` at its operator — the
    /// *demand-true* load signal used for shard-load accounting. Unlike
    /// consumed service time, it is not capped by a saturated core.
    fn expected_cost_ns(&self, tuple: &SimTuple) -> f64 {
        match self.profiles[tuple.op as usize].cost {
            elasticutor_workload::CostModel::FromTuple => tuple.cost_hint.max(1) as f64,
            elasticutor_workload::CostModel::Exponential { mean_ns } => mean_ns as f64,
            elasticutor_workload::CostModel::Deterministic { ns } => ns.max(1) as f64,
        }
    }

    pub(crate) fn enqueue_task(&mut self, exec: usize, task: TaskId, work: Work) {
        if matches!(work, Work::Tuple(_)) {
            self.queued_total += 1;
            self.pause_sources_if_needed();
        }
        let needs_start = {
            let e = &mut self.execs[exec];
            let t = e.tasks.get_mut(&task).expect("enqueue to live task");
            t.queue.push_back(work);
            !t.busy
        };
        if needs_start {
            self.start_service(exec, task);
        }
    }

    /// Pops work until the task is busy on a tuple or idle.
    pub(crate) fn start_service(&mut self, exec: usize, task: TaskId) {
        loop {
            let e = &mut self.execs[exec];
            let Some(t) = e.tasks.get_mut(&task) else {
                return; // removed while handling a label
            };
            if t.busy {
                // A label handled below can transitively re-enter
                // start_service for this very task (label → finish
                // reassignment → deliver buffered → enqueue here). The
                // inner call already started service; nothing to do.
                return;
            }
            match t.queue.pop_front() {
                None => return,
                Some(Work::Tuple(tuple)) => {
                    let cost = self.profiles[tuple.op as usize].cost;
                    let core_tuple = elasticutor_core::tuple::Tuple::new(
                        tuple.key,
                        tuple.payload,
                        tuple.cost_hint,
                        tuple.created_ns,
                    );
                    let service = cost.draw(&core_tuple, &mut self.rng);
                    let t = self.execs[exec].tasks.get_mut(&task).expect("live");
                    t.busy = true;
                    t.current = Some((tuple, service));
                    self.sim
                        .schedule_after(service, Ev::TaskDone { exec, task });
                    return;
                }
                Some(Work::Label(rid)) => {
                    self.on_label_reached(rid);
                    // Loop re-checks existence and busy state: the label
                    // may have drained this retiring task away, or
                    // re-entered service on it.
                }
            }
        }
    }

    fn on_task_done(&mut self, exec: usize, task: TaskId) {
        let now = self.sim.now();
        let (tuple, service) = {
            let e = &mut self.execs[exec];
            let t = e.tasks.get_mut(&task).expect("done on live task");
            t.busy = false;
            t.current.take().expect("task was serving")
        };
        self.queued_total -= 1;

        // Accounting (shard demand is charged at ingest; here we only
        // track μ inputs).
        {
            let e = &mut self.execs[exec];
            e.served += 1;
            e.service_ns_sum += service;
        }

        // Emit downstream or complete at sink.
        let op = OperatorId(tuple.op);
        let downstream: Vec<OperatorId> = self.topology.downstream(op).to_vec();
        if downstream.is_empty() {
            if now >= self.warmup_ns {
                let latency = now.saturating_sub(tuple.created_ns);
                self.latency_hist.record(latency);
                self.window_hist.record(latency);
                self.sink_window.record_at(now, 1);
                self.sink_completions += 1;
            } else {
                self.sink_window.record_at(now, 1);
            }
        } else {
            let out_bytes = self.profiles[tuple.op as usize].output_bytes;
            let task_node = self.execs[exec].tasks[&task].node;
            let local_node = self.execs[exec].local_node;
            let mut out = tuple;
            out.payload = out_bytes;
            self.execs[exec].bytes_out += out.wire_bytes() * downstream.len() as u64;
            if task_node == local_node {
                for &d in &downstream {
                    let mut t = out;
                    t.op = d.0;
                    self.route_to_operator(local_node, d, t);
                }
            } else {
                // Remote task: outputs hop back to the main-process
                // emitter first (§3.3: remote processes only talk to the
                // receiver/emitter of the main process). The hop counts
                // as in-flight.
                for &d in &downstream {
                    let mut t = out;
                    t.op = d.0;
                    self.queued_total += 1;
                    self.pause_sources_if_needed();
                    let arrival = self.net.send(
                        now,
                        task_node,
                        local_node,
                        t.wire_bytes(),
                        TrafficClass::RemoteTask,
                    );
                    self.sim
                        .schedule_at(arrival, Ev::EmitterForward { exec, tuple: t });
                }
            }
        }

        self.resume_sources_if_possible();

        // Next unit of work (or retire).
        let (queue_empty, retiring, owns_shards) = {
            let e = &self.execs[exec];
            let t = e.tasks.get(&task).expect("live");
            (
                t.queue.is_empty(),
                t.retiring,
                !e.routing.shards_of(task).is_empty(),
            )
        };
        if queue_empty && retiring && !owns_shards {
            self.execs[exec].tasks.remove(&task);
            return;
        }
        if !queue_empty {
            self.start_service(exec, task);
        }
    }

    fn forward_downstream(&mut self, exec: usize, tuple: SimTuple) {
        // Off the remote-task hop; route_to_operator re-counts it.
        self.queued_total -= 1;
        let node = self.execs[exec].local_node;
        let op = OperatorId(tuple.op);
        self.route_to_operator(node, op, tuple);
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    fn on_sample(&mut self) {
        let now = self.sim.now();
        let rate = self.sink_window.rate_at(now);
        self.throughput_series.push(now, rate);
        let mean_ms = self.window_hist.mean_ns() / 1e6;
        self.latency_series.push(now, mean_ms);
        self.window_hist.clear();
        self.sim
            .schedule_after(self.cfg.sample_period_ns, Ev::Sample);
    }

    fn build_report(self) -> RunReport {
        let measured_ns = self.cfg.duration_ns.saturating_sub(self.warmup_ns);
        let throughput = if measured_ns > 0 {
            self.sink_completions as f64 * 1e9 / measured_ns as f64
        } else {
            0.0
        };
        RunReport {
            mode: self.cfg.mode.name(),
            duration_ns: self.cfg.duration_ns,
            sink_completions: self.sink_completions,
            throughput,
            source_emissions: self.source_emissions,
            latency: self.latency_hist,
            throughput_series: self.throughput_series,
            latency_series: self.latency_series,
            reassignments: self.records,
            state_migration_bytes: self.net.bytes_state_migration(),
            remote_task_bytes: self.net.bytes_remote_task(),
            inter_operator_bytes: self.net.bytes_inter_operator(),
            scheduler_wall_us: self.scheduler_wall_us,
            scheduler_rounds: self.scheduler_rounds,
            events_processed: self.sim.processed(),
        }
    }
}
