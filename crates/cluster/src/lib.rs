//! # elasticutor-cluster
//!
//! A discrete-event-simulated cluster running the three execution
//! paradigms of the paper on identical substrates:
//!
//! * **static** — one single-threaded executor per CPU core, static
//!   operator-level key partitioning, no elasticity;
//! * **resource-centric (RC)** — executors bound one-to-one to cores,
//!   elasticity via operator-level key repartitioning with the expensive
//!   4-phase global synchronization protocol;
//! * **executor-centric (Elasticutor)** — static operator-level
//!   partitioning, elastic executors with shards/tasks, intra-executor
//!   load balancing, the labeling-tuple consistent-reassignment protocol,
//!   and the model-based dynamic scheduler (plus the *naive-EC* ablation
//!   that disables the scheduler's cost/locality optimizations).
//!
//! The algorithms under test — routing tables, the FFD load balancer,
//! Algorithm 1, the queueing model — are the *same library code* the live
//! runtime uses; only CPU cores and network links are simulated. See
//! DESIGN.md §3 for why this substitution preserves the paper's effects.
//!
//! Modules:
//! * [`config`] — cluster + experiment configuration (defaults mirror the
//!   paper's 32×8-core EC2 testbed with 1 Gbps links).
//! * [`net`] — the network model: per-node egress serialization,
//!   bandwidth, propagation latency, byte accounting.
//! * [`engine`] — the event-driven data plane and control protocols.
//! * [`report`] — run reports: throughput/latency series, reassignment
//!   timing breakdowns, migration and remote-transfer rates.

#![warn(missing_docs)]

pub mod config;
mod control;
pub mod engine;
pub mod hybrid;
pub mod net;
pub mod report;

pub use config::{ClusterConfig, EngineMode, ExperimentConfig, WorkloadKind};
pub use engine::ClusterEngine;
pub use hybrid::{HybridAction, HybridConfig, HybridPlanner, LoadSample};
pub use report::{ReassignmentRecord, RunReport};
