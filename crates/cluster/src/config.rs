//! Cluster and experiment configuration.

use elasticutor_scheduler::SchedulerPolicy;
use elasticutor_workload::{MicroConfig, SseConfig};

/// Physical-cluster parameters. Defaults mirror the paper's testbed: 32
/// EC2 `t2.2xlarge` nodes × 8 cores, 1 Gbps Ethernet.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: u32,
    /// CPU cores per node.
    pub cores_per_node: u32,
    /// Link bandwidth in bytes/s (1 Gbps ≈ 125 MB/s).
    pub link_bandwidth: f64,
    /// One-way network propagation + stack latency, ns.
    pub link_latency_ns: u64,
    /// Latency of an intra-node (inter-process / inter-thread) message.
    pub local_latency_ns: u64,
    /// One-way latency of a control message (master ↔ worker). Control
    /// messages ride the same network but are small; only latency counts.
    pub control_latency_ns: u64,
    /// Master-side processing cost per upstream executor during RC's
    /// pause/update rounds (routing-table rewrite, serialization of the
    /// new partition map, per-connection coordination). Calibrated
    /// against Figure 9(a): RC synchronization grows from tens to
    /// hundreds of ms over 1→32 upstream executors.
    pub master_per_executor_ns: u64,
    /// Per-byte serialization + deserialization CPU cost for state
    /// migration (in addition to wire time).
    pub state_serde_ns_per_byte: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 32,
            cores_per_node: 8,
            link_bandwidth: 125.0e6,
            link_latency_ns: 100_000,          // 100 µs one-way
            local_latency_ns: 5_000,           // 5 µs intra-node hop
            control_latency_ns: 500_000,       // 0.5 ms master↔worker
            master_per_executor_ns: 4_000_000, // 4 ms per upstream executor
            state_serde_ns_per_byte: 2.0,
        }
    }
}

impl ClusterConfig {
    /// A smaller cluster for quick experiments.
    pub fn small(nodes: u32, cores_per_node: u32) -> Self {
        Self {
            nodes,
            cores_per_node,
            ..Self::default()
        }
    }

    /// Total cores.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }
}

/// Which execution paradigm the engine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// Fixed executors, one core each, no elasticity (default Storm).
    Static,
    /// Resource-centric: operator-level key repartitioning with global
    /// synchronization.
    ResourceCentric,
    /// Executor-centric with the full dynamic scheduler.
    Elastic,
    /// Executor-centric with cost/locality optimizations disabled
    /// (naive-EC, §5.4).
    NaiveElastic,
}

impl EngineMode {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            EngineMode::Static => "static",
            EngineMode::ResourceCentric => "RC",
            EngineMode::Elastic => "Elasticutor",
            EngineMode::NaiveElastic => "naive-EC",
        }
    }

    /// The scheduler policy for elastic modes.
    pub fn policy(&self) -> SchedulerPolicy {
        match self {
            EngineMode::NaiveElastic => SchedulerPolicy::Naive,
            _ => SchedulerPolicy::Optimized,
        }
    }
}

/// Which workload feeds the topology.
#[derive(Clone, Debug)]
pub enum WorkloadKind {
    /// The §5.1 micro-benchmark (generator → calculator).
    Micro(MicroConfig),
    /// The §5.4 SSE application.
    Sse(SseConfig),
}

/// A full experiment specification.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// The simulated cluster.
    pub cluster: ClusterConfig,
    /// Execution paradigm.
    pub mode: EngineMode,
    /// Workload.
    pub workload: WorkloadKind,
    /// Per-shard state size in bytes (paper default: 32 KB; Figures 9b
    /// and 12 sweep this).
    pub shard_state_bytes: u64,
    /// Simulated run length, ns.
    pub duration_ns: u64,
    /// Warm-up period excluded from summary metrics, ns.
    pub warmup_ns: u64,
    /// Sampling period for timeline series, ns.
    pub sample_period_ns: u64,
    /// Scheduling / rebalancing interval, ns.
    pub scheduling_interval_ns: u64,
    /// Latency target handed to the performance model, seconds.
    pub latency_target_s: f64,
    /// Backpressure high watermark: sources pause when the total queued
    /// tuples exceed this.
    pub backpressure_high: usize,
    /// Backpressure low watermark: sources resume below this.
    pub backpressure_low: usize,
    /// For the single-executor scalability experiments (Figures 10–12):
    /// bypass the model and pin this many cores on the (single) transform
    /// executor, local cores first.
    pub manual_cores: Option<u32>,
    /// `θ` — intra-executor imbalance threshold for the shard balancer
    /// (paper default 1.2; the θ-ablation bench sweeps this).
    pub imbalance_threshold: f64,
    /// `φ̃` — base data-intensity threshold in bytes/s for the
    /// scheduler's locality constraint (paper default 512 KB/s; the
    /// φ-ablation bench sweeps this).
    pub phi_base: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A default micro-benchmark experiment in the given mode.
    pub fn micro(mode: EngineMode, micro: MicroConfig) -> Self {
        Self {
            cluster: ClusterConfig::default(),
            mode,
            workload: WorkloadKind::Micro(micro),
            shard_state_bytes: 32 * 1024,
            duration_ns: 60 * 1_000_000_000,
            warmup_ns: 10 * 1_000_000_000,
            sample_period_ns: 1_000_000_000,
            scheduling_interval_ns: 1_000_000_000,
            // Tight target: the allocator keeps adding cores while the
            // modeled E[T] exceeds this, so it also bounds the steady
            // queueing latency the elastic engines settle at.
            latency_target_s: 0.01,
            // Storm-style max-spout-pending: a few thousand tuples in
            // flight keeps saturated-queue latency bounded while leaving
            // enough concurrency to fill every core.
            backpressure_high: 8_192,
            backpressure_low: 4_096,
            manual_cores: None,
            imbalance_threshold: 1.2,
            phi_base: 512.0 * 1024.0,
            seed: 0xE1A5_71C0,
        }
    }

    /// A default SSE experiment in the given mode.
    pub fn sse(mode: EngineMode, sse: SseConfig) -> Self {
        Self {
            workload: WorkloadKind::Sse(sse),
            ..Self::micro(mode, MicroConfig::default())
        }
    }

    /// Validates watermarks and durations.
    pub fn validate(&self) -> Result<(), String> {
        if self.backpressure_low >= self.backpressure_high {
            return Err("backpressure_low must be below backpressure_high".into());
        }
        if self.warmup_ns >= self.duration_ns {
            return Err("warmup must be shorter than the run".into());
        }
        if self.sample_period_ns == 0 || self.scheduling_interval_ns == 0 {
            return Err("periods must be positive".into());
        }
        if self.imbalance_threshold < 1.0 {
            return Err("imbalance threshold theta must be >= 1.0".into());
        }
        if self.phi_base <= 0.0 {
            return Err("phi_base must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_testbed() {
        let c = ClusterConfig::default();
        assert_eq!(c.nodes, 32);
        assert_eq!(c.cores_per_node, 8);
        assert_eq!(c.total_cores(), 256);
        assert!((c.link_bandwidth - 125.0e6).abs() < 1.0);
    }

    #[test]
    fn mode_names_and_policies() {
        assert_eq!(EngineMode::Static.name(), "static");
        assert_eq!(EngineMode::ResourceCentric.name(), "RC");
        assert_eq!(EngineMode::Elastic.name(), "Elasticutor");
        assert_eq!(EngineMode::NaiveElastic.name(), "naive-EC");
        assert_eq!(EngineMode::NaiveElastic.policy(), SchedulerPolicy::Naive);
        assert_eq!(EngineMode::Elastic.policy(), SchedulerPolicy::Optimized);
    }

    #[test]
    fn experiment_validation() {
        let mut e = ExperimentConfig::micro(EngineMode::Elastic, MicroConfig::default());
        e.validate().unwrap();
        e.backpressure_low = e.backpressure_high;
        assert!(e.validate().is_err());

        let mut e = ExperimentConfig::micro(EngineMode::Static, MicroConfig::default());
        e.warmup_ns = e.duration_ns;
        assert!(e.validate().is_err());
    }
}
