//! Control plane: dynamic scheduling, the consistent shard-reassignment
//! protocol (elastic engines), and RC's operator-level repartitioning.

use std::time::Instant;

use elasticutor_core::ids::{NodeId, ShardId, TaskId};
use elasticutor_queueing::jackson::{ExecutorLoad, JacksonNetwork};
use elasticutor_queueing::{allocate, AllocationRequest};
use elasticutor_scheduler::scheduler::ExecutorMeasurement;
use elasticutor_sim::MILLIS;

use crate::config::EngineMode;
use crate::engine::{ClusterEngine, Ev, OpPartition, ReassignMeta, RepartPhase, RepartRt, Work};
use crate::net::TrafficClass;
use crate::report::ReassignmentRecord;

/// Exponential decay applied to per-shard load counters at each tick
/// (fresh window weight dominates, stale signal fades).
const LOAD_DECAY: f64 = 0.25;

/// Poll period while waiting for an RC operator to drain.
const DRAIN_POLL_NS: u64 = MILLIS;

/// RC's imbalance trigger: a balancing repartition starts only once the
/// executor-level δ exceeds this. Paired with the lower
/// [`RC_IMBALANCE_TARGET`] it forms a hysteresis band, so measurement
/// noise around the target cannot cause perpetual repartition churn at
/// ω = 0.
const RC_IMBALANCE_TRIGGER: f64 = 1.15;

/// Once triggered, RC rebalances down to this δ (the same spread the
/// elastic balancer aims for, per §5's "RC uses the same load balancing
/// algorithm").
const RC_IMBALANCE_TARGET: f64 = 1.05;

/// Wire size of a labeling tuple (header-sized control message).
const LABEL_WIRE_BYTES: u64 = 24;

/// Minimum mean per-executor demand signal (ns of service demand per
/// window) for an RC imbalance measurement to be trusted. Repartition
/// pauses starve the window; acting on the resulting sparse, noisy δ
/// estimates would chain rounds forever (pause → sparse signal → noisy
/// δ → pause ...). 100 ms ≈ 10% utilization: anything healthy clears it.
const RC_MIN_SIGNAL_NS: f64 = 1e8;

/// Shard moves per RC balancing round. Each round is a full 4-phase
/// global synchronization (pause → drain → migrate → update), so the
/// paper's *per-shard* sync cost of ~300 ms (Figure 8) implies one shard
/// per protocol round; a post-shuffle rebalance of a dozen shards then
/// takes 10+ seconds of repeated pauses — exactly Figure 7's RC
/// transients. Executor-set resizes still move their shards in bulk.
const RC_MOVES_PER_ROUND: usize = 1;

impl ClusterEngine {
    // ==================================================================
    // Scheduler ticks
    // ==================================================================

    pub(crate) fn on_sched_tick(&mut self) {
        let inflation = self.take_window_demand_inflation();
        match self.cfg.mode {
            EngineMode::Static => unreachable!("static mode schedules no ticks"),
            EngineMode::Elastic | EngineMode::NaiveElastic => self.elastic_tick(inflation),
            EngineMode::ResourceCentric => self.rc_tick(inflation),
        }
        // Fold the window into the EWMA, then reset the counters.
        let window_s = self.cfg.scheduling_interval_ns as f64 / 1e9;
        for e in &mut self.execs {
            let window_rate = e.arrivals as f64 / window_s * inflation;
            e.ewma_lambda = if e.ewma_lambda == 0.0 {
                window_rate
            } else {
                0.5 * e.ewma_lambda + 0.5 * window_rate
            };
            e.arrivals = 0;
            e.served = 0;
            e.service_ns_sum = 0;
            e.bytes_in = 0;
            e.bytes_out = 0;
            for l in &mut e.shard_load_ns {
                *l *= LOAD_DECAY;
            }
        }
        self.interval_source_emissions = 0;
        self.sim
            .schedule_after(self.cfg.scheduling_interval_ns, Ev::SchedTick);
    }

    fn window_seconds(&self) -> f64 {
        self.cfg.scheduling_interval_ns as f64 / 1e9
    }

    /// Measured per-core service rate of executor `j`, with a fallback to
    /// the operator's configured mean when the window saw little traffic.
    fn measured_mu(&self, j: usize) -> f64 {
        let e = &self.execs[j];
        if e.served >= 10 && e.service_ns_sum > 0 {
            e.served as f64 * 1e9 / e.service_ns_sum as f64
        } else {
            1e9 / self.mean_service_ns[e.op.index()].max(1) as f64
        }
    }

    // ------------------------------------------------------------------
    // Elastic (Elasticutor / naive-EC)
    // ------------------------------------------------------------------

    fn elastic_tick(&mut self, inflation: f64) {
        if self.cfg.manual_cores.is_none() {
            self.run_global_scheduler(inflation);
        }
        for j in 0..self.execs.len() {
            self.rebalance_executor(j);
        }
    }

    fn run_global_scheduler(&mut self, inflation: f64) {
        let window_s = self.window_seconds();
        let measurements: Vec<ExecutorMeasurement> = (0..self.execs.len())
            .map(|j| {
                let e = &self.execs[j];
                ExecutorMeasurement {
                    // Demand = smoothed de-censored arrivals + standing
                    // backlog. Both terms matter under backpressure: the
                    // admitted rate is capped at current capacity, so a
                    // backlog-blind, censored model would believe the
                    // minimum allocation suffices and the queue would
                    // never drain.
                    lambda: 0.5 * (e.arrivals as f64 / window_s * inflation)
                        + 0.5 * e.ewma_lambda
                        + e.total_queued() as f64 / window_s,
                    mu: self.measured_mu(j),
                    state_bytes: (e.routing.num_shards() as u64 * self.cfg.shard_state_bytes)
                        as f64,
                    data_rate: (e.bytes_in + e.bytes_out) as f64 / window_s,
                    local_node: e.local_node,
                }
            })
            .collect();
        let lambda0 = (self.interval_source_emissions as f64 / window_s * inflation)
            .max(self.source_nominal_rate() * 0.01)
            .max(1.0);

        let wall = Instant::now();
        let decision =
            self.scheduler
                .schedule(&self.cluster_spec, &self.assignment, &measurements, lambda0);
        self.scheduler_wall_us
            .push(wall.elapsed().as_micros() as u64);
        self.scheduler_rounds += 1;

        let Ok(decision) = decision else {
            return; // infeasible round: keep the current assignment
        };

        // Apply grants before revocations so drained shards can land on
        // the replacement tasks directly (avoids double migration).
        for d in decision.deltas.iter().filter(|d| d.delta > 0) {
            for _ in 0..d.delta {
                self.add_task(d.executor, d.node);
            }
        }
        for d in decision.deltas.iter().filter(|d| d.delta < 0) {
            for _ in 0..(-d.delta) {
                self.retire_task_on_node(d.executor, d.node);
            }
        }
        self.assignment = decision.plan.assignment;
    }

    /// Marks one task of `exec` on `node` as retiring and plans the moves
    /// that drain its shards.
    fn retire_task_on_node(&mut self, exec: usize, node: NodeId) {
        let victim = {
            let e = &self.execs[exec];
            e.tasks
                .iter()
                .filter(|(_, t)| !t.retiring && t.node == node)
                .map(|(&id, _)| id)
                .next_back()
        };
        let Some(victim) = victim else {
            return; // already drained by an earlier revocation
        };
        let survivors: Vec<TaskId> = {
            let e = &self.execs[exec];
            e.tasks
                .iter()
                .filter(|(&id, t)| !t.retiring && id != victim)
                .map(|(&id, _)| id)
                .collect()
        };
        if survivors.is_empty() {
            return; // never strand an executor at zero tasks
        }
        self.execs[exec]
            .tasks
            .get_mut(&victim)
            .expect("victim exists")
            .retiring = true;

        let (loads, assignment) = {
            let e = &self.execs[exec];
            (e.shard_load_ns.clone(), e.routing.assignment().to_vec())
        };
        let moves = self
            .balancer
            .plan_task_removal(&loads, &assignment, victim, &survivors);
        for m in moves {
            let _ = self.start_reassignment(exec, m.shard, m.to);
        }
        self.maybe_remove_retired_task(exec, victim);
    }

    /// Removes a retiring task once it owns no shards and has no work.
    pub(crate) fn maybe_remove_retired_task(&mut self, exec: usize, task: TaskId) {
        let removable = {
            let e = &self.execs[exec];
            match e.tasks.get(&task) {
                Some(t) => {
                    t.retiring
                        && !t.busy
                        && t.queue.is_empty()
                        && e.routing.shards_of(task).is_empty()
                }
                None => false,
            }
        };
        if removable {
            self.execs[exec].tasks.remove(&task);
        }
    }

    /// Intra-executor load balancing (paper §3.1): plan single-shard
    /// moves and execute each via the consistent-reassignment protocol.
    fn rebalance_executor(&mut self, exec: usize) {
        let (loads, assignment, live) = {
            let e = &self.execs[exec];
            let live = e.live_tasks();
            if live.len() <= 1 {
                return;
            }
            (
                e.shard_load_ns.clone(),
                e.routing.assignment().to_vec(),
                live,
            )
        };
        let plan = self.balancer.plan(&loads, &assignment, &live);
        for m in plan.moves {
            if !live.contains(&m.to) {
                continue;
            }
            let _ = self.start_reassignment(exec, m.shard, m.to);
        }
    }

    // ==================================================================
    // Consistent shard reassignment (paper §3.3)
    // ==================================================================

    /// Begins reassigning `shard` of `exec` to task `to`. Fails silently
    /// (returns `false`) when the shard is already in flight, the move is
    /// a no-op, or the destination is gone — callers re-plan next tick.
    pub(crate) fn start_reassignment(&mut self, exec: usize, shard: ShardId, to: TaskId) -> bool {
        let now = self.sim.now();
        let (from, intra_node) = {
            let e = &self.execs[exec];
            if e.routing.is_paused(shard) {
                return false;
            }
            let Ok(from) = e.routing.task_of(shard) else {
                return false;
            };
            if from == to || !e.tasks.contains_key(&to) || !e.tasks.contains_key(&from) {
                return false;
            }
            let intra = e.tasks[&from].node == e.tasks[&to].node;
            (from, intra)
        };
        self.execs[exec]
            .routing
            .pause(shard)
            .expect("checked not paused");
        let rid = self.reassigns.begin(
            shard,
            from,
            to,
            now,
            ReassignMeta {
                exec,
                intra_node,
                state_bytes: if intra_node {
                    0
                } else {
                    self.cfg.shard_state_bytes
                },
            },
        );
        // The labeling tuple rides the same channel as data — directly
        // into a local task's queue, or over the main-process → remote
        // wire (same egress ⇒ FIFO behind in-flight tuples). When the
        // source task dequeues it, every pending tuple of the shard has
        // been processed.
        let (local, from_node) = {
            let e = &self.execs[exec];
            (e.local_node, e.tasks[&from].node)
        };
        if from_node == local {
            self.enqueue_task(exec, from, Work::Label(rid));
        } else {
            let arrival = self.net.send(
                now,
                local,
                from_node,
                LABEL_WIRE_BYTES,
                TrafficClass::Control,
            );
            self.sim.schedule_at(
                arrival,
                Ev::LabelArrive {
                    exec,
                    task: from,
                    reassign: rid,
                },
            );
        }
        true
    }

    /// A labeling tuple reached a remote source task's process.
    pub(crate) fn on_label_arrive(&mut self, exec: usize, task: TaskId, rid: u64) {
        if self.execs[exec].tasks.contains_key(&task) {
            self.enqueue_task(exec, task, Work::Label(rid));
        } else {
            // The source task vanished while the label was in flight
            // (can only happen if it was force-retired); routing resumes
            // to the current owner.
            self.abort_reassignment(rid);
        }
    }

    /// The labeling tuple surfaced at the source task.
    pub(crate) fn on_label_reached(&mut self, rid: u64) {
        let now = self.sim.now();
        let inflight = self
            .reassigns
            .mark_label_reached(rid, now)
            .expect("label consumed exactly once");
        let (exec, from, to) = (inflight.meta.exec, inflight.from, inflight.to);
        let (from_node, to_ok) = {
            let e = &self.execs[exec];
            (
                e.tasks.get(&from).map(|t| t.node),
                e.tasks.contains_key(&to),
            )
        };
        let Some(from_node) = from_node else {
            self.abort_reassignment(rid);
            return;
        };
        if !to_ok {
            self.abort_reassignment(rid);
            return;
        }
        let to_node = self.execs[exec].tasks[&to].node;
        if from_node == to_node {
            // Intra-process: state sharing makes migration free (§3.2).
            self.finish_reassignment(rid);
        } else {
            let bytes = self.cfg.shard_state_bytes;
            let serde_ns = (bytes as f64 * self.cfg.cluster.state_serde_ns_per_byte) as u64;
            let arrival = self.net.send(
                now + serde_ns,
                from_node,
                to_node,
                bytes,
                TrafficClass::StateMigration,
            );
            self.sim
                .schedule_at(arrival, Ev::StateArrived { reassign: rid });
        }
    }

    pub(crate) fn on_state_arrived(&mut self, rid: u64) {
        let to_alive = {
            let r = self.reassigns.get(rid).expect("state arrival has a move");
            self.execs[r.meta.exec].tasks.contains_key(&r.to)
        };
        if to_alive {
            self.finish_reassignment(rid);
        } else {
            self.abort_reassignment(rid);
        }
    }

    fn finish_reassignment(&mut self, rid: u64) {
        let now = self.sim.now();
        let completion = self
            .reassigns
            .complete(rid, now)
            .expect("completes exactly once");
        let exec = completion.meta.exec;
        let buffered = self.execs[exec]
            .routing
            .finish_reassignment(completion.shard, completion.to)
            .expect("shard was paused");
        // Warm-up reassignments (the startup provisioning storm) are not
        // representative; report steady-state records only.
        if completion.started_ns >= self.warmup_ns {
            self.records.push(ReassignmentRecord {
                started_ns: completion.started_ns,
                sync_ns: completion.sync_ns,
                migration_ns: completion.total_ns - completion.sync_ns,
                intra_node: completion.meta.intra_node,
                state_bytes: completion.meta.state_bytes,
            });
        }
        self.deliver_buffered(exec, completion.to, buffered);
        self.maybe_remove_retired_task(exec, completion.from);
    }

    fn abort_reassignment(&mut self, rid: u64) {
        let inflight = self.reassigns.abort(rid).expect("aborts exactly once");
        let exec = inflight.meta.exec;
        let buffered = self.execs[exec]
            .routing
            .abort_reassignment(inflight.shard)
            .expect("shard was paused");
        self.deliver_buffered(exec, inflight.from, buffered);
    }

    /// Delivers tuples buffered during a pause to their (new) task,
    /// preserving arrival order.
    fn deliver_buffered(
        &mut self,
        exec: usize,
        task: TaskId,
        buffered: Vec<crate::engine::SimTuple>,
    ) {
        if buffered.is_empty() {
            return;
        }
        let now = self.sim.now();
        let (local, task_node) = {
            let e = &self.execs[exec];
            (e.local_node, e.tasks[&task].node)
        };
        for tuple in buffered {
            // Buffered tuples were already counted into `queued_total`
            // when the receiver parked them. Local hand-over re-counts
            // via enqueue_task; remote hand-over stays counted on the
            // wire (the RemoteDeliver handler decrements on arrival).
            if task_node == local {
                self.queued_total -= 1;
                self.enqueue_task(exec, task, Work::Tuple(tuple));
            } else {
                let arrival = self.net.send(
                    now,
                    local,
                    task_node,
                    tuple.wire_bytes(),
                    TrafficClass::RemoteTask,
                );
                self.sim
                    .schedule_at(arrival, Ev::RemoteDeliver { exec, task, tuple });
            }
        }
    }

    // ==================================================================
    // Resource-centric repartitioning (paper §1/§2.2 protocol)
    // ==================================================================

    fn rc_tick(&mut self, inflation: f64) {
        let window_s = self.window_seconds();
        // Per-operator measurements (stations of the Jackson network).
        let transform_ops: Vec<usize> = (0..self.topology.operators().len())
            .filter(|&op| {
                !self
                    .topology
                    .upstream(elasticutor_core::ids::OperatorId(op as u32))
                    .is_empty()
            })
            .collect();
        let mut loads = Vec::with_capacity(transform_ops.len());
        for &op in &transform_ops {
            let mut arrivals = 0u64;
            let mut served = 0u64;
            let mut service_ns = 0u64;
            for &j in &self.op_execs[op] {
                let e = &self.execs[j];
                if e.rc_retired {
                    continue;
                }
                arrivals += e.arrivals;
                served += e.served;
                service_ns += e.service_ns_sum;
            }
            let ewma: f64 = self.op_execs[op]
                .iter()
                .filter(|&&j| !self.execs[j].rc_retired)
                .map(|&j| self.execs[j].ewma_lambda)
                .sum();
            let backlog: usize = self.op_execs[op]
                .iter()
                .filter(|&&j| !self.execs[j].rc_retired)
                .map(|&j| self.execs[j].total_queued())
                .sum();
            let lambda = 0.5 * (arrivals as f64 / window_s * inflation)
                + 0.5 * ewma
                + backlog as f64 / window_s;
            let mu = if served >= 10 && service_ns > 0 {
                served as f64 * 1e9 / service_ns as f64
            } else {
                1e9 / self.mean_service_ns[op].max(1) as f64
            };
            loads.push(ExecutorLoad::new(lambda, mu));
        }
        let lambda0 = (self.interval_source_emissions as f64 / window_s * inflation)
            .max(self.source_nominal_rate() * 0.01)
            .max(1.0);

        let wall = Instant::now();
        let network = JacksonNetwork::new(lambda0, loads);
        let alloc = allocate(&AllocationRequest {
            network: &network,
            latency_target: self.cfg.latency_target_s,
            available_cores: self.cfg.cluster.total_cores(),
        });
        self.scheduler_wall_us
            .push(wall.elapsed().as_micros() as u64);
        self.scheduler_rounds += 1;

        for (i, &op) in transform_ops.iter().enumerate() {
            if self.op_repart[op].is_some() {
                continue; // repartition already in flight
            }
            if self.op_repart_cooldown[op] > 0 {
                self.op_repart_cooldown[op] -= 1;
                continue; // let measurements settle after the last one
            }
            self.plan_rc_repartition(op, alloc.cores[i], false);
        }
    }

    /// Live (non-retired) executor positions of an RC operator.
    fn rc_live_positions(&self, op: usize) -> Vec<u32> {
        self.op_execs[op]
            .iter()
            .enumerate()
            .filter(|(_, &j)| !self.execs[j].rc_retired)
            .map(|(pos, _)| pos as u32)
            .collect()
    }

    /// Plans (and starts) one RC repartition round. `chained` marks a
    /// continuation round fired straight after a completed balancing
    /// round (back-to-back single-shard rounds are what stretch RC's
    /// post-shuffle transients into seconds).
    fn plan_rc_repartition(&mut self, op: usize, target_cores: u32, chained: bool) {
        let live = self.rc_live_positions(op);
        let current = live.len() as u32;
        let num_shards = match &self.op_partition[op] {
            OpPartition::Dynamic(p) => p.num_shards(),
            OpPartition::Static(_) => unreachable!("RC operator uses a dynamic partition"),
        };
        // One core per executor: more executors than shards (or than the
        // cluster's cores) is meaningless.
        let mut target = target_cores
            .max(1)
            .min(num_shards)
            .min(self.cfg.cluster.total_cores());
        // Resize hysteresis, asymmetric: growth chases demand promptly
        // (standing backlog keeps hurting until capacity covers it),
        // while shrinking waits for a clear (≥ 25%) surplus — every
        // executor-count change costs a global repartition, and the
        // pause/catch-up cycle itself injects noise into the next
        // window's measurements.
        if target > current && target - current < 2.max(current / 16) {
            target = current;
        }
        if target < current && current - target < 2.max(current / 4) {
            target = current;
        }

        // --- Decide the executor set ---
        let mut new_execs = Vec::new();
        let mut retire_execs = Vec::new();
        if target > current {
            for _ in 0..(target - current) {
                let Some(node) = self.find_free_core_node() else {
                    break;
                };
                let pos = self.op_execs[op].len() as u32;
                let j = self.spawn_rc_executor(op, pos, node);
                self.node_used[node.index()] += 1;
                new_execs.push(j);
            }
        } else if target < current {
            // Retire the executors with the least load (cheapest drains).
            let mut by_load: Vec<u32> = live.clone();
            by_load.sort_by(|&a, &b| {
                let la: f64 = self.execs[self.op_execs[op][a as usize]]
                    .shard_load_ns
                    .iter()
                    .sum();
                let lb: f64 = self.execs[self.op_execs[op][b as usize]]
                    .shard_load_ns
                    .iter()
                    .sum();
                la.partial_cmp(&lb).unwrap()
            });
            for &pos in by_load.iter().take((current - target) as usize) {
                retire_execs.push(self.op_execs[op][pos as usize]);
            }
        }

        // --- Plan the shard assignment over the surviving set ---
        let OpPartition::Dynamic(partition) = &self.op_partition[op] else {
            unreachable!("RC operator uses a dynamic partition");
        };
        // Per-global-shard loads from the executors' local slots.
        let mut shard_loads = vec![0.0f64; num_shards as usize];
        for &j in &self.op_execs[op] {
            let e = &self.execs[j];
            for (slot, &g) in e.rc_global_shards.iter().enumerate() {
                shard_loads[g as usize] = e.shard_load_ns[slot];
            }
        }
        let retired_positions: Vec<u32> = retire_execs
            .iter()
            .map(|&j| {
                self.op_execs[op]
                    .iter()
                    .position(|&x| x == j)
                    .expect("retiree is in op") as u32
            })
            .collect();
        let final_positions: Vec<TaskId> = (0..self.op_execs[op].len() as u32)
            .chain(new_execs.iter().map(|&j| {
                self.op_execs[op]
                    .iter()
                    .position(|&x| x == j)
                    .expect("spawned into op") as u32
            }))
            .filter(|pos| {
                !retired_positions.contains(pos)
                    && !self.execs[self.op_execs[op][*pos as usize]].rc_retired
            })
            .map(TaskId)
            .collect();
        let mut final_positions = final_positions;
        final_positions.sort_unstable();
        final_positions.dedup();

        // Current assignment in TaskId space (position indices).
        let current_assignment: Vec<TaskId> =
            partition.assignment().iter().map(|e| TaskId(e.0)).collect();

        if final_positions.is_empty() {
            return;
        }
        let is_resize = !new_execs.is_empty() || !retire_execs.is_empty();
        let moves = if is_resize {
            // Executor-set change: one shed-and-pack pass covers both
            // retiree drains (their shards' owners are absent from
            // `final_positions`) and re-spreading onto the new set.
            // Resizes are rare, heavyweight events; they move shards in
            // bulk under a single pause.
            self.balancer
                .rebalance_unbounded(&shard_loads, &current_assignment, &final_positions)
        } else {
            // Pure load balancing. Only act outside the hysteresis band:
            // executor-level δ must exceed the trigger.
            let mut exec_load = vec![0.0f64; self.op_execs[op].len()];
            for (shard, &owner) in current_assignment.iter().enumerate() {
                exec_load[owner.index()] += shard_loads[shard];
            }
            let live_loads: Vec<f64> = final_positions
                .iter()
                .map(|p| exec_load[p.index()])
                .collect();
            let total: f64 = live_loads.iter().sum();
            let max = live_loads.iter().cloned().fold(0.0, f64::max);
            let avg = total / live_loads.len() as f64;
            // Both fresh and chained rounds gate on the trigger: with
            // hundreds of executors, window-to-window Poisson noise keeps
            // the measured δ a few per-cent above 1, so chaining down to
            // a tighter bound would repartition forever. The planner
            // below still *plans* each move toward the tighter target.
            let _ = chained;
            if total <= 0.0 || avg < RC_MIN_SIGNAL_NS || max <= avg * RC_IMBALANCE_TRIGGER {
                return;
            }
            // RC has no intra-executor lever, so every move is an
            // operator-level repartition paying the full global
            // synchronization — the paper's per-shard sync cost
            // (Figure 8). One shard per round: a post-shuffle rebalance
            // of a dozen shards stretches into Figure 7's 10–20 s RC
            // transient.
            let rc_balancer = elasticutor_core::balance::LoadBalancer {
                imbalance_threshold: RC_IMBALANCE_TARGET,
                max_moves: RC_MOVES_PER_ROUND,
            };
            rc_balancer
                .plan(&shard_loads, &current_assignment, &final_positions)
                .moves
        };

        if moves.is_empty() && !is_resize {
            return;
        }

        // Convert position-space moves to executor-index moves.
        let op_exec_list = self.op_execs[op].clone();
        let shard_moves: Vec<(u32, usize, usize)> = moves
            .iter()
            .map(|m| {
                (
                    m.shard.0,
                    op_exec_list[m.from.index()],
                    op_exec_list[m.to.index()],
                )
            })
            .collect();

        // --- Start the 4-phase protocol ---
        let rid = self.reparts.len();
        let now = self.sim.now();
        self.reparts.push(RepartRt {
            op,
            phase: RepartPhase::Pausing,
            started_ns: now,
            drain_done_ns: 0,
            migrate_done_ns: 0,
            moves: shard_moves,
            retire_execs,
            bulk: is_resize,
            buffered: std::collections::VecDeque::new(),
        });
        self.op_repart[op] = Some(rid);
        let pause_ns = self.control_round_ns(op);
        self.sim.schedule_after(
            pause_ns,
            Ev::Repart {
                id: rid,
                phase: RepartPhase::Draining,
            },
        );
    }

    /// Cost of one synchronization round with every upstream executor:
    /// a control round trip plus per-executor master-side processing.
    /// This is the cost Figure 9(a) measures growing with fan-in.
    fn control_round_ns(&self, op: usize) -> u64 {
        // Count *live* upstream executors: RC transform operators resize
        // dynamically, and the synchronization bill scales with whoever
        // must actually be paused/updated (Figure 9a's x-axis).
        let op_id = elasticutor_core::ids::OperatorId(op as u32);
        let mut upstream = 0u64;
        for &u in self.topology.upstream(op_id) {
            let execs = &self.op_execs[u.index()];
            if execs.is_empty() {
                // Source operator: its parallelism is fixed.
                upstream += u64::from(self.topology.operator(u).expect("known op").parallelism);
            } else {
                upstream += execs.iter().filter(|&&j| !self.execs[j].rc_retired).count() as u64;
            }
        }
        2 * self.cfg.cluster.control_latency_ns + upstream * self.cfg.cluster.master_per_executor_ns
    }

    fn spawn_rc_executor(&mut self, op: usize, _pos: u32, node: NodeId) -> usize {
        let op_id = elasticutor_core::ids::OperatorId(op as u32);
        let idx = self.execs.len();
        // Mirrors `spawn_executor`, but with RC bookkeeping: one task,
        // empty shard set until the repartition's Migrating phase.
        self.execs.push(crate::engine::ExecRt {
            op: op_id,
            local_node: node,
            routing: elasticutor_core::routing::RoutingTable::new(1, TaskId(0)),
            tasks: std::collections::BTreeMap::new(),
            next_task: 0,
            shard_load_ns: Vec::new(),
            arrivals: 0,
            ewma_lambda: 0.0,
            served: 0,
            service_ns_sum: 0,
            bytes_in: 0,
            bytes_out: 0,
            is_rc: true,
            rc_global_shards: Vec::new(), // receives shards at Migrating
            rc_retired: false,
        });
        self.op_execs[op].push(idx);
        // Grow the dynamic partition's executor space.
        if let OpPartition::Dynamic(p) = &mut self.op_partition[op] {
            p.resize_executors(self.op_execs[op].len() as u32);
        }
        self.add_task(idx, node);
        idx
    }

    fn find_free_core_node(&self) -> Option<NodeId> {
        (0..self.cfg.cluster.nodes)
            .map(NodeId)
            .find(|n| self.node_used[n.index()] < self.cfg.cluster.cores_per_node)
    }

    pub(crate) fn on_repart_phase(&mut self, id: usize, phase: RepartPhase) {
        match phase {
            RepartPhase::Pausing => unreachable!("initial phase is set at plan time"),
            RepartPhase::Draining => {
                self.reparts[id].phase = RepartPhase::Draining;
                self.on_drain_poll(id);
            }
            RepartPhase::Migrating => unreachable!("entered inline from drain"),
            RepartPhase::Updating => self.rc_finish(id),
        }
    }

    pub(crate) fn on_drain_poll(&mut self, id: usize) {
        let op = self.reparts[id].op;
        let drained = self.op_execs[op]
            .iter()
            .all(|&j| self.execs[j].total_queued() == 0);
        if !drained {
            self.sim.schedule_after(DRAIN_POLL_NS, Ev::DrainPoll { id });
            return;
        }
        let now = self.sim.now();
        self.reparts[id].drain_done_ns = now;
        self.rc_migrate(id);
    }

    /// Phase C: move shard state and install the new shard→executor map.
    fn rc_migrate(&mut self, id: usize) {
        self.reparts[id].phase = RepartPhase::Migrating;
        let now = self.sim.now();
        let op = self.reparts[id].op;
        let moves = self.reparts[id].moves.clone();
        let drain_done = self.reparts[id].drain_done_ns;
        let started = self.reparts[id].started_ns;
        let serde_per_byte = self.cfg.cluster.state_serde_ns_per_byte;
        let bytes_per_shard = self.cfg.shard_state_bytes;

        // The post-migration routing-update round is part of every
        // shard's synchronization bill (Figure 9a's quantity): the
        // operator stays paused until all upstream routing tables are
        // rewritten.
        let update_ns = self.control_round_ns(op);
        let mut last_arrival = now;
        for &(shard, from, to) in &moves {
            let from_node = self.execs[from].local_node;
            let to_node = self.execs[to].local_node;
            let (migration_ns, state_bytes) = if from_node == to_node {
                (0, 0) // intra-process state sharing (same as Elasticutor)
            } else {
                let serde_ns = (bytes_per_shard as f64 * serde_per_byte) as u64;
                let arrival = self.net.send(
                    now + serde_ns,
                    from_node,
                    to_node,
                    bytes_per_shard,
                    TrafficClass::StateMigration,
                );
                last_arrival = last_arrival.max(arrival);
                (arrival - drain_done, bytes_per_shard)
            };
            if started >= self.warmup_ns {
                self.records.push(ReassignmentRecord {
                    started_ns: started,
                    // RC's per-shard synchronization bill: global pause +
                    // drain + the routing-update round (every shard waits
                    // for all of it).
                    sync_ns: drain_done - started + update_ns,
                    migration_ns,
                    intra_node: from_node == to_node,
                    state_bytes,
                });
            }
            let _ = shard;
        }

        // Install the new mapping while the operator is quiesced.
        self.rc_apply_moves(op, &moves);

        // Phase D (routing-table update round) starts when the last
        // migrated shard has landed.
        let update_ns = self.control_round_ns(op);
        self.reparts[id].migrate_done_ns = last_arrival;
        self.reparts[id].phase = RepartPhase::Updating;
        let fire_at = last_arrival.max(now) + update_ns;
        let delay = fire_at - now;
        self.sim.schedule_after(
            delay,
            Ev::Repart {
                id,
                phase: RepartPhase::Updating,
            },
        );
    }

    fn rc_apply_moves(&mut self, op: usize, moves: &[(u32, usize, usize)]) {
        // Update the partition's shard→position map.
        let position_of: std::collections::HashMap<usize, u32> = self.op_execs[op]
            .iter()
            .enumerate()
            .map(|(pos, &j)| (j, pos as u32))
            .collect();
        if let OpPartition::Dynamic(p) = &mut self.op_partition[op] {
            let mut assignment: Vec<elasticutor_core::ids::ExecutorId> = p.assignment().to_vec();
            for &(shard, _from, to) in moves {
                assignment[shard as usize] = elasticutor_core::ids::ExecutorId(position_of[&to]);
            }
            p.repartition(&assignment);
        }
        // Update each executor's owned-shard slots (sorted), carrying the
        // shard's accumulated load signal with it so the next round's δ
        // estimate reflects the move.
        for &(shard, from, to) in moves {
            let mut carried = 0.0;
            let e = &mut self.execs[from];
            if let Ok(slot) = e.rc_global_shards.binary_search(&shard) {
                e.rc_global_shards.remove(slot);
                if slot < e.shard_load_ns.len() {
                    carried = e.shard_load_ns.remove(slot);
                }
            }
            let e = &mut self.execs[to];
            if let Err(slot) = e.rc_global_shards.binary_search(&shard) {
                e.rc_global_shards.insert(slot, shard);
                e.shard_load_ns.insert(slot, carried);
            }
        }
    }

    /// Phase D complete: resume the operator and flush buffered traffic.
    fn rc_finish(&mut self, id: usize) {
        let op = self.reparts[id].op;
        // Finalize retirements: free cores, drop empty executors.
        let retirees = self.reparts[id].retire_execs.clone();
        for j in retirees {
            let node = self.execs[j].local_node;
            if !self.execs[j].rc_retired {
                self.execs[j].rc_retired = true;
                self.node_used[node.index()] -= 1;
            }
        }
        self.op_repart[op] = None;
        // Cooldown after bulk resizes only: their catch-up burst distorts
        // the next window's measurements. Single-shard balancing rounds
        // chain tick after tick — RC's continuous repartitioning under
        // dynamics is the behaviour under study.
        self.op_repart_cooldown[op] = if self.reparts[id].bulk { 2 } else { 0 };
        let buffered = std::mem::take(&mut self.reparts[id].buffered);
        let op_id = elasticutor_core::ids::OperatorId(op as u32);
        for (from_node, tuple) in buffered {
            self.queued_total -= 1;
            self.route_to_operator(from_node, op_id, tuple);
        }
        self.resume_sources_if_possible();
        // A completed balancing round chains straight into the next
        // single-shard round until δ is back inside the band: the paper's
        // RC transient is exactly this back-to-back sequence of global
        // pauses, stretching a post-shuffle rebalance into 10–20 s
        // (Figure 7).
        if !self.reparts[id].bulk {
            let live = self.rc_live_positions(op).len() as u32;
            self.plan_rc_repartition(op, live, true);
        }
    }

    fn source_nominal_rate(&self) -> f64 {
        self.source.nominal_rate()
    }
}
