//! End-to-end tests of the simulated cluster engines.

use elasticutor_cluster::config::{ClusterConfig, EngineMode, ExperimentConfig, WorkloadKind};
use elasticutor_cluster::ClusterEngine;
use elasticutor_workload::{MicroConfig, SseConfig};

const SEC: u64 = 1_000_000_000;

/// A small, fast experiment: 4 nodes × 4 cores, modest load.
fn quick_micro(mode: EngineMode, rate: f64, omega: f64) -> ExperimentConfig {
    let micro = MicroConfig {
        rate,
        omega,
        cpu_cost_ns: 1_000_000,
        num_keys: 1000,
        calculator_executors: 8,
        shards_per_executor: 16,
        generator_parallelism: 2,
        ..MicroConfig::default()
    };
    let mut cfg = ExperimentConfig::micro(mode, micro);
    cfg.cluster = ClusterConfig::small(4, 4);
    cfg.duration_ns = 10 * SEC;
    cfg.warmup_ns = 2 * SEC;
    cfg.seed = 7;
    cfg
}

#[test]
fn static_engine_processes_at_offered_rate() {
    // 2 000 tuples/s × 1 ms = 2 cores of demand over 16 static
    // executors: easily sustained.
    let report = ClusterEngine::new(quick_micro(EngineMode::Static, 2_000.0, 0.0)).run();
    assert!(report.sink_completions > 0);
    let ratio = report.throughput / 2_000.0;
    assert!(
        (0.85..=1.1).contains(&ratio),
        "static throughput {} vs offered 2000",
        report.throughput
    );
    // No elasticity machinery may run in static mode.
    assert_eq!(report.scheduler_rounds, 0);
    assert!(report.reassignments.is_empty());
    assert_eq!(report.state_migration_bytes, 0);
}

#[test]
fn elastic_engine_sustains_and_balances() {
    // 5 000/s × 1 ms over 4 executors ≈ 1.25 cores per executor: the
    // scheduler must grant multiple cores, and ω = 16 shuffles the hot
    // keys every 3.75 s so the balancer keeps moving shards. Few, skewed
    // keys make each shuffle actually shift shard loads; the warmup
    // excludes the provisioning ramp (whose labeling tuples legitimately
    // queue behind the startup backlog).
    let mut cfg = quick_micro(EngineMode::Elastic, 5_000.0, 16.0);
    if let WorkloadKind::Micro(m) = &mut cfg.workload {
        m.calculator_executors = 4;
        m.num_keys = 200;
        m.skew = 0.9;
    }
    cfg.duration_ns = 20 * SEC;
    cfg.warmup_ns = 8 * SEC;
    let report = ClusterEngine::new(cfg).run();
    let ratio = report.throughput / 5_000.0;
    assert!(
        (0.85..=1.1).contains(&ratio),
        "elastic throughput {} vs offered 5000",
        report.throughput
    );
    assert!(report.scheduler_rounds > 0, "scheduler must tick");
    assert!(
        !report.reassignments.is_empty(),
        "expected intra-executor reassignments under a shifting workload"
    );
    // Elastic sync is local (no global synchronization): a labeling
    // tuple through one task queue at moderate utilization — tens of ms
    // at the very worst, not RC's hundreds (Figure 8).
    let b = report.reassignment_breakdown(None);
    assert!(
        b.mean_sync_ms < 50.0,
        "elastic sync should be fast, got {} ms",
        b.mean_sync_ms
    );
}

#[test]
fn rc_engine_repartitions_with_global_sync() {
    let report = ClusterEngine::new(quick_micro(EngineMode::ResourceCentric, 2_000.0, 4.0)).run();
    assert!(report.sink_completions > 0, "RC must make progress");
    assert!(report.scheduler_rounds > 0);
    if let Some(first) = report.reassignments.first() {
        // RC synchronization includes the global pause rounds: with 2
        // upstream executors the control rounds alone cost
        // 2·(2·0.5 ms + 2·4 ms) = 18 ms.
        assert!(
            first.sync_ns >= 2_000_000,
            "RC sync must include pause rounds, got {} ns",
            first.sync_ns
        );
    }
}

#[test]
fn naive_elastic_runs_and_migrates_more_than_optimized() {
    let opt = ClusterEngine::new(quick_micro(EngineMode::Elastic, 2_500.0, 8.0)).run();
    let naive = ClusterEngine::new(quick_micro(EngineMode::NaiveElastic, 2_500.0, 8.0)).run();
    assert!(naive.sink_completions > 0);
    assert!(opt.sink_completions > 0);
    // The naive scheduler ignores migration cost; over a dynamic run it
    // must not migrate *less* state than the optimized one.
    assert!(
        naive.state_migration_bytes >= opt.state_migration_bytes,
        "naive {} vs optimized {}",
        naive.state_migration_bytes,
        opt.state_migration_bytes
    );
}

#[test]
fn deterministic_given_seed() {
    let a = ClusterEngine::new(quick_micro(EngineMode::Elastic, 1_500.0, 2.0)).run();
    let b = ClusterEngine::new(quick_micro(EngineMode::Elastic, 1_500.0, 2.0)).run();
    assert_eq!(a.sink_completions, b.sink_completions);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.state_migration_bytes, b.state_migration_bytes);
    assert_eq!(a.reassignments.len(), b.reassignments.len());
}

#[test]
fn backpressure_bounds_admission_under_overload() {
    // Offered 20 000/s × 1 ms = 20 cores of demand on a 8-core cluster:
    // impossible. Backpressure must throttle sources near capacity.
    let micro = MicroConfig {
        rate: 20_000.0,
        cpu_cost_ns: 1_000_000,
        num_keys: 1000,
        calculator_executors: 4,
        shards_per_executor: 16,
        generator_parallelism: 2,
        ..MicroConfig::default()
    };
    let mut cfg = ExperimentConfig::micro(EngineMode::Elastic, micro);
    cfg.cluster = ClusterConfig::small(2, 4);
    cfg.duration_ns = 10 * SEC;
    cfg.warmup_ns = 2 * SEC;
    cfg.backpressure_high = 2_000;
    cfg.backpressure_low = 1_000;
    let report = ClusterEngine::new(cfg).run();
    // Sink rate ≈ capacity (8 cores → 8 000 tuples/s), clearly below the
    // offered 20 000/s.
    assert!(
        report.throughput < 10_000.0,
        "throughput {} should be capacity-bound",
        report.throughput
    );
    assert!(
        report.throughput > 5_000.0,
        "throughput {} should be near capacity",
        report.throughput
    );
    // Admission tracked completion (no unbounded queues).
    let admitted = report.source_emissions as f64;
    let completed = report.sink_completions as f64;
    assert!(
        (admitted - completed).abs() / completed < 0.25,
        "admitted {admitted} vs completed {completed}"
    );
}

#[test]
fn single_executor_scales_with_manual_cores() {
    let run = |cores: u32| {
        let micro = MicroConfig {
            rate: 50_000.0, // saturating
            cpu_cost_ns: 1_000_000,
            num_keys: 1000,
            calculator_executors: 1,
            shards_per_executor: 64,
            generator_parallelism: 2,
            ..MicroConfig::default()
        };
        let mut cfg = ExperimentConfig::micro(EngineMode::Elastic, micro);
        cfg.cluster = ClusterConfig::small(4, 4);
        cfg.duration_ns = 8 * SEC;
        cfg.warmup_ns = 2 * SEC;
        cfg.manual_cores = Some(cores);
        cfg.backpressure_high = 4_000;
        cfg.backpressure_low = 2_000;
        ClusterEngine::new(cfg).run()
    };
    let t1 = run(1).throughput;
    let t4 = run(4).throughput;
    let t8 = run(8).throughput;
    assert!(t1 > 500.0, "1 core ≈ 1 000/s, got {t1}");
    assert!(t4 > 2.5 * t1, "4 cores should near-quadruple: {t1} → {t4}");
    assert!(t8 > 1.5 * t4, "8 cores should keep scaling: {t4} → {t8}");
}

#[test]
fn sse_topology_runs_end_to_end() {
    let sse = SseConfig {
        base_rate: 500.0,
        num_stocks: 200,
        executors_per_operator: 2,
        shards_per_executor: 8,
        source_parallelism: 2,
        transactor_cost_ns: 200_000,
        analytics_cost_ns: 50_000,
        ..SseConfig::default()
    };
    let mut cfg = ExperimentConfig {
        workload: WorkloadKind::Sse(sse),
        ..ExperimentConfig::micro(EngineMode::Elastic, MicroConfig::default())
    };
    cfg.cluster = ClusterConfig::small(4, 8);
    cfg.duration_ns = 8 * SEC;
    cfg.warmup_ns = 2 * SEC;
    let report = ClusterEngine::new(cfg).run();
    // 500 orders/s × 11 sink operators ≈ 5 500 completions/s.
    assert!(
        report.throughput > 3_000.0,
        "SSE sink throughput {} too low",
        report.throughput
    );
    assert!(report.latency.count() > 0);
    assert!(report.latency.p99_ns() > 0.0);
}

#[test]
fn timeline_series_are_recorded() {
    let report = ClusterEngine::new(quick_micro(EngineMode::Elastic, 1_000.0, 0.0)).run();
    // 10 s run with 1 s samples → ~10 samples.
    assert!(report.throughput_series.len() >= 8);
    assert!(report.latency_series.len() >= 8);
    assert!(report.throughput_series.mean() > 0.0);
}
