//! Integration tests for the live multithreaded elastic executor.
//!
//! These exercise the paper's §3 mechanisms under real concurrency: task
//! threads, online scaling, the labeling-tuple reassignment protocol, and
//! intra-process state sharing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId, TaskId};
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{ElasticExecutor, ExecutorConfig, Operator, Record};
use elasticutor_state::StateHandle;

/// Counts per-key occurrences into state and asserts per-key sequence
/// numbers arrive strictly increasing — the stateful-ordering requirement
/// of paper §2.1.
struct OrderChecker {
    violations: Arc<AtomicU64>,
}

impl Operator for OrderChecker {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        state.update(record.key, |old| {
            let last = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
            if record.seq <= last {
                self.violations.fetch_add(1, Ordering::Relaxed);
            }
            Some(Bytes::copy_from_slice(&record.seq.to_le_bytes()))
        });
        Vec::new()
    }
}

fn config(shards: u32, tasks: u32) -> ExecutorConfig {
    ExecutorConfig {
        num_shards: shards,
        initial_tasks: tasks,
        ..ExecutorConfig::default()
    }
}

#[test]
fn processes_and_counts() {
    let exec = ElasticExecutor::start(config(16, 2), |r: &Record, s: &StateHandle| {
        s.update(r.key, |old| {
            let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        Vec::new()
    });
    for i in 0..1000u64 {
        exec.ingest(Record::new(Key(i % 10), Bytes::new()));
    }
    exec.wait_for_processed(1000);
    // Every key was counted exactly 100 times, wherever its shard lives.
    let state = Arc::clone(exec.state());
    let mut total = 0u64;
    for k in 0..10u64 {
        let shard = exec.assignment().len() as u32;
        let _ = shard;
        // Find the shard via the same hash the router used.
        let sid = ShardId(elasticutor_core::hash::key_to_shard(k, 16));
        let v = state.get(sid, Key(k)).expect("key counted");
        total += u64::from_le_bytes(v.as_ref().try_into().unwrap());
    }
    assert_eq!(total, 1000);
    let stats = exec.shutdown();
    assert_eq!(stats.processed, 1000);
    assert!(stats.latency.count() >= 1000);
}

#[test]
fn operator_outputs_are_emitted() {
    let exec = ElasticExecutor::start(config(8, 2), |r: &Record, _s: &StateHandle| {
        vec![Record::new(r.key, Bytes::from_static(b"out"))]
    });
    for i in 0..100u64 {
        exec.ingest(Record::new(Key(i), Bytes::new()));
    }
    exec.wait_for_processed(100);
    let mut outs = 0;
    while let Ok(batch) = exec.outputs().try_recv() {
        outs += batch.len();
    }
    assert_eq!(outs, 100);
    exec.shutdown();
}

#[test]
fn per_key_order_survives_concurrent_reassignments() {
    let violations = Arc::new(AtomicU64::new(0));
    let exec = Arc::new(ElasticExecutor::start(
        config(32, 4),
        OrderChecker {
            violations: Arc::clone(&violations),
        },
    ));

    // A feeder thread pumps keyed records with per-key sequence numbers
    // while the main thread storms reassignments.
    let feeder = {
        let exec = Arc::clone(&exec);
        std::thread::spawn(move || {
            let mut seqs = [0u64; 64];
            for i in 0..50_000u64 {
                let key = (i * 31) % 64;
                seqs[key as usize] += 1;
                exec.ingest(Record::new(Key(key), Bytes::new()).with_seq(seqs[key as usize]));
            }
        })
    };

    // Storm: move every shard around repeatedly while records flow.
    let tasks = exec.tasks();
    for round in 0..20 {
        for s in 0..32u32 {
            let to = tasks[(s as usize + round) % tasks.len()];
            let _ = exec.reassign_shard(ShardId(s), to);
        }
        std::thread::yield_now();
    }

    feeder.join().unwrap();
    exec.wait_for_processed(50_000);
    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "per-key order must hold through reassignments"
    );
    let exec = Arc::try_unwrap(exec).unwrap_or_else(|_| panic!("sole owner"));
    let stats = exec.shutdown();
    assert_eq!(stats.processed, 50_000);
    assert!(!stats.reassignments.is_empty());
}

#[test]
fn scale_up_then_down_preserves_work() {
    let exec = ElasticExecutor::start(config(64, 1), |r: &Record, s: &StateHandle| {
        s.update(r.key, |old| {
            let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        Vec::new()
    });
    for i in 0..5_000u64 {
        exec.ingest(Record::new(Key(i % 100), Bytes::new()));
    }
    // Scale out to 4 tasks and spread the load.
    let t1 = exec.add_task().unwrap();
    let t2 = exec.add_task().unwrap();
    let t3 = exec.add_task().unwrap();
    exec.rebalance();
    for i in 0..5_000u64 {
        exec.ingest(Record::new(Key(i % 100), Bytes::new()));
    }
    // Scale back in.
    exec.remove_task(t1).unwrap();
    exec.remove_task(t3).unwrap();
    for i in 0..5_000u64 {
        exec.ingest(Record::new(Key(i % 100), Bytes::new()));
    }
    exec.wait_for_processed(15_000);
    assert_eq!(exec.tasks().len(), 2);
    assert!(exec.tasks().contains(&t2));
    // State survived every move: intra-process sharing means totals add
    // up regardless of which task touched which shard when.
    let mut total = 0u64;
    for k in 0..100u64 {
        let sid = ShardId(elasticutor_core::hash::key_to_shard(k, 64));
        let v = exec.state().get(sid, Key(k)).expect("counted");
        total += u64::from_le_bytes(v.as_ref().try_into().unwrap());
    }
    assert_eq!(total, 15_000);
    exec.shutdown();
}

#[test]
fn remove_last_task_is_rejected() {
    let exec = ElasticExecutor::start(config(4, 1), |_: &Record, _: &StateHandle| Vec::new());
    let t = exec.tasks()[0];
    assert!(exec.remove_task(t).is_err());
    exec.shutdown();
}

#[test]
fn remove_unknown_task_is_rejected() {
    let exec = ElasticExecutor::start(config(4, 2), |_: &Record, _: &StateHandle| Vec::new());
    assert!(exec.remove_task(TaskId(99)).is_err());
    exec.shutdown();
}

#[test]
fn reassign_rejects_noop_and_unknown() {
    let exec = ElasticExecutor::start(config(4, 2), |_: &Record, _: &StateHandle| Vec::new());
    let owner = exec.assignment()[0];
    assert!(exec.reassign_shard(ShardId(0), owner).is_err(), "no-op");
    assert!(
        exec.reassign_shard(ShardId(0), TaskId(42)).is_err(),
        "unknown destination"
    );
    exec.shutdown();
}

#[test]
fn rebalance_spreads_hot_load() {
    // Uniform traffic over many keys lands on one task (single core);
    // after adding tasks and rebalancing, the shards must spread.
    let exec = ElasticExecutor::start(config(16, 1), |_: &Record, _: &StateHandle| Vec::new());
    for i in 0..1_000u64 {
        exec.ingest(Record::new(Key(i % 64), Bytes::new()));
    }
    exec.add_task().unwrap();
    exec.add_task().unwrap();
    exec.add_task().unwrap();
    let moves = exec.rebalance();
    assert!(moves > 0, "rebalance must move shards to new tasks");
    exec.wait_for_processed(1_000);
    // Reassignments complete asynchronously (labeling tuples drain
    // through the source task's queue); wait for all initiated moves.
    while exec.stats().reassignments.len() < moves {
        std::thread::yield_now();
    }
    let assignment = exec.assignment();
    let mut owners: Vec<TaskId> = assignment.clone();
    owners.sort_unstable();
    owners.dedup();
    assert!(owners.len() > 1, "shards spread over multiple tasks");
    exec.shutdown();
}

#[test]
fn reassignment_sync_time_is_small_when_idle() {
    // Fig. 8's elastic claim: synchronization is a couple of control
    // messages through an (idle) queue — microseconds to low ms live.
    let exec = ElasticExecutor::start(config(8, 2), |_: &Record, _: &StateHandle| Vec::new());
    let to = exec.tasks()[1];
    for s in 0..8u32 {
        let _ = exec.reassign_shard(ShardId(s), to);
    }
    // Wait for all to complete.
    loop {
        if exec.stats().reassignments.len() >= 4 {
            break;
        }
        std::thread::yield_now();
    }
    let stats = exec.shutdown();
    for (sync_ns, total_ns) in &stats.reassignments {
        assert!(
            *sync_ns < 100_000_000,
            "idle sync should be far under 100 ms, got {} ns",
            sync_ns
        );
        assert!(total_ns >= sync_ns);
    }
}

#[test]
fn state_is_shared_not_migrated() {
    // Write through one task, move the shard, read through another: the
    // bytes never left the process store.
    let exec = ElasticExecutor::start(config(4, 2), |r: &Record, s: &StateHandle| {
        s.put(r.key, r.payload.clone());
        Vec::new()
    });
    let key = Key(3);
    let shard = ShardId(elasticutor_core::hash::key_to_shard(3, 4));
    exec.ingest(Record::new(key, Bytes::from_static(b"payload")));
    exec.wait_for_processed(1);
    let before = exec.state().total_bytes();
    let owner = exec.assignment()[shard.index()];
    let other = exec
        .tasks()
        .into_iter()
        .find(|&t| t != owner)
        .expect("two tasks");
    exec.reassign_shard(shard, other).unwrap();
    loop {
        if exec.assignment()[shard.index()] == other {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(exec.state().total_bytes(), before, "no state moved");
    assert_eq!(
        exec.state().get(shard, key),
        Some(Bytes::from_static(b"payload"))
    );
    exec.shutdown();
}

#[test]
fn operator_panic_does_not_kill_the_executor() {
    // A poison record (key 13) panics the operator. The task thread must
    // survive, later records must process normally, and state written for
    // other keys must be intact.
    let exec = ElasticExecutor::start(config(8, 2), |r: &Record, s: &StateHandle| {
        assert!(r.key != Key(13), "poison record");
        s.update(r.key, |old| {
            let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        Vec::new()
    });
    let total = 2_000u64;
    let mut poisons = 0u64;
    for i in 0..total {
        let key = i % 20;
        if key == 13 {
            poisons += 1;
        }
        exec.ingest(Record::new(Key(key), Bytes::new()));
    }
    exec.wait_for_processed(total);
    // Healthy keys were all counted despite interleaved panics.
    let mut counted = 0u64;
    for k in 0..20u64 {
        if k == 13 {
            continue;
        }
        let sid = ShardId(elasticutor_core::hash::key_to_shard(k, 8));
        let v = exec.state().get(sid, Key(k)).expect("healthy key counted");
        counted += u64::from_le_bytes(v.as_ref().try_into().unwrap());
    }
    assert_eq!(counted, total - poisons);
    let stats = exec.shutdown();
    assert_eq!(stats.processed, total);
    assert_eq!(stats.operator_panics, poisons);
}

#[test]
fn executor_scales_after_panics() {
    // Elasticity operations still work on an executor that has absorbed
    // operator panics: the reassignment protocol rides the same queues.
    let exec = ElasticExecutor::start(config(8, 1), |r: &Record, _s: &StateHandle| {
        assert!(r.key.value() % 7 != 3, "poison class");
        Vec::new()
    });
    for i in 0..1_000u64 {
        exec.ingest(Record::new(Key(i), Bytes::new()));
    }
    exec.add_task().expect("grow after panics");
    let moves = exec.rebalance();
    exec.wait_for_processed(1_000);
    while exec.stats().reassignments.len() < moves {
        std::thread::yield_now();
    }
    let stats = exec.shutdown();
    assert_eq!(stats.processed, 1_000);
    assert!(stats.operator_panics > 0, "poison class must have fired");
}
