//! Wire-level chaos against the migration protocol: a live STATE
//! stream truncated, bit-flipped, or short-read at arbitrary byte
//! offsets must surface as a **typed** error and leave the executor
//! consistent — never a panic, never a half-installed shard.
//!
//! The corruption loop is deterministic (a fixed xorshift seed picks
//! the offsets), so a failure reproduces exactly.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_core::hash::key_to_shard;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_core::wire::{self, Checksum};
use elasticutor_runtime::migrate::{MSG_ACCEPT, MSG_COMMIT, MSG_OFFER, MSG_STATE};
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{
    ElasticExecutor, ExecutorConfig, FifoChecker, MigrateError, MigrationEndpoint, Operator, Record,
};
use elasticutor_state::{ShardSnapshot, StateHandle};

const NUM_SHARDS: u32 = 8;
const SHARD: u32 = 2;

fn config() -> ExecutorConfig {
    ExecutorConfig {
        num_shards: NUM_SHARDS,
        initial_tasks: 2,
        ..ExecutorConfig::default()
    }
}

fn counting_op(fifo: Arc<FifoChecker>) -> impl Operator {
    move |r: &Record, s: &StateHandle| {
        fifo.observe(r.key, r.seq);
        s.update(r.key, |old| {
            let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        Vec::new()
    }
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    cond()
}

/// A deterministic xorshift64* — no RNG dependency, same offsets every
/// run.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn migration_snapshot() -> ShardSnapshot {
    ShardSnapshot {
        shard: ShardId(SHARD),
        entries: (0..48u64)
            .map(|i| {
                (
                    Key((1 << 32) + i),
                    Bytes::from(vec![i as u8 ^ 0x5A; 40 + (i as usize % 17)]),
                )
            })
            .collect(),
    }
}

fn digest_of(snap: &ShardSnapshot) -> u64 {
    let mut c = Checksum::new();
    snap.fold_checksum(&mut c);
    c.finish()
}

/// The exact byte stream a well-behaved sender produces for one full
/// migration of [`migration_snapshot`]: OFFER, chunked STATE, COMMIT.
fn sender_stream(snap: &ShardSnapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut offer = Vec::new();
    wire::put_u32(&mut offer, snap.shard.0);
    wire::put_u64(&mut offer, snap.len() as u64);
    wire::put_u64(&mut offer, snap.value_bytes());
    wire::write_frame(&mut buf, MSG_OFFER, &offer).expect("offer frame");
    let mut end_to_end = Checksum::new();
    for chunk in snap.chunks(512) {
        chunk.fold_checksum(&mut end_to_end);
        wire::write_frame(&mut buf, MSG_STATE, &chunk.encode()).expect("state frame");
    }
    let mut commit = Vec::new();
    wire::put_u32(&mut commit, snap.shard.0);
    wire::put_u64(&mut commit, snap.len() as u64);
    wire::put_u64(&mut commit, snap.value_bytes());
    wire::put_u64(&mut commit, end_to_end.finish());
    wire::write_frame(&mut buf, MSG_COMMIT, &commit).expect("commit frame");
    buf
}

enum Corruption {
    /// Send only the first `n` bytes, then close (short read).
    Truncate(usize),
    /// Flip one bit at byte `n`, send everything.
    BitFlip(usize),
}

/// Feeds one (possibly corrupted) sender stream into a fresh receiver
/// endpoint over real TCP and checks the all-or-nothing invariant:
/// afterwards the executor either fully owns the shard with the exact
/// end-to-end digest, or shows no trace of it — and it still processes
/// live records either way.
fn run_receiver_trial(stream_bytes: &[u8], corruption: &Corruption) {
    let snap = migration_snapshot();
    let fifo = Arc::new(FifoChecker::new());
    let exec = Arc::new(ElasticExecutor::start(config(), counting_op(fifo)));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let accept = {
        let exec = Arc::clone(&exec);
        std::thread::spawn(move || MigrationEndpoint::accept(exec, &listener).expect("accept"))
    };
    let mut sock = TcpStream::connect(addr).expect("connect");
    let endpoint = accept.join().expect("accept thread");

    let mut bytes = stream_bytes.to_vec();
    let complete = match *corruption {
        Corruption::Truncate(n) => {
            bytes.truncate(n);
            n >= stream_bytes.len()
        }
        Corruption::BitFlip(n) => {
            bytes[n] ^= 1 << (n % 8);
            false
        }
    };
    sock.write_all(&bytes).expect("send stream");
    sock.shutdown(std::net::Shutdown::Write).expect("shutdown");
    // The receiver sees EOF after our bytes: its reader exits, failing
    // the link (and finishing the adoption if — and only if — the
    // commit verified).
    assert!(
        wait_until(Duration::from_secs(20), || !endpoint.is_alive()),
        "receiver link did not wind down"
    );

    // All-or-nothing: either the verified snapshot installed in full
    // (only possible for the uncorrupted stream) or the store shows no
    // trace of the transfer — never a partial entry set.
    let got = exec
        .state()
        .snapshot_shard(ShardId(SHARD))
        .filter(|s| !s.is_empty());
    if let Some(got) = got {
        assert_eq!(
            digest_of(&got),
            digest_of(&snap),
            "partial or corrupted install leaked into the store"
        );
        assert!(
            complete,
            "a corrupted stream must not produce a full install"
        );
    } else {
        assert!(!complete, "the clean stream must install");
    }
    // No panic took the executor down: live records still flow.
    let probe = (0u64..)
        .find(|k| key_to_shard(*k, NUM_SHARDS) == 0)
        .unwrap();
    exec.ingest(Record::new(Key(probe), Bytes::new()).with_seq(1));
    assert!(
        wait_until(Duration::from_secs(10), || exec.processed_count() >= 1),
        "executor wedged after corrupted stream"
    );
    drop(sock);
    endpoint.close();
}

/// Truncation at a deterministic spread of offsets — frame boundaries,
/// mid-header, mid-payload, and the empty stream.
#[test]
fn truncated_state_stream_never_half_installs() {
    let stream = sender_stream(&migration_snapshot());
    let mut offsets = vec![0, 1, 4, stream.len() / 2, stream.len() - 1, stream.len()];
    let mut rng = XorShift(0xE1A5_71C0_70E5);
    offsets.extend((0..8).map(|_| (rng.next() as usize) % stream.len()));
    for n in offsets {
        run_receiver_trial(&stream, &Corruption::Truncate(n));
    }
}

/// Single-bit flips at a deterministic spread of offsets: headers,
/// lengths, payload bytes, checksums. Whatever the bit hits, the
/// receiver must end the stream with a typed refusal, not state.
#[test]
fn bit_flipped_state_stream_never_half_installs() {
    let stream = sender_stream(&migration_snapshot());
    let mut offsets = vec![0, 5, stream.len() / 3, stream.len() - 9, stream.len() - 1];
    let mut rng = XorShift(0x00DD_BA11_CAFE);
    offsets.extend((0..10).map(|_| (rng.next() as usize) % stream.len()));
    for n in offsets {
        run_receiver_trial(&stream, &Corruption::BitFlip(n));
    }
}

/// The sender side of the same coin: a peer that answers the OFFER
/// with garbage (truncated ACCEPT, unknown frame type) or hangs up
/// mid-read must yield a typed [`MigrateError`] — and the shard stays
/// local, intact, and serving.
#[test]
fn sender_survives_garbage_replies() {
    // Each script runs against a fresh sender endpoint.
    type Script = Box<dyn Fn(&mut TcpStream) + Send>;
    let scripts: Vec<(&str, Script)> = vec![
        (
            "truncated accept payload",
            Box::new(|s: &mut TcpStream| {
                let (_, _) = wire::read_frame(s).expect("offer");
                wire::write_frame(s, MSG_ACCEPT, &[0u8; 2]).expect("short accept");
            }),
        ),
        (
            "unknown frame type",
            Box::new(|s: &mut TcpStream| {
                let (_, _) = wire::read_frame(s).expect("offer");
                wire::write_frame(s, 0xEE, b"nonsense").expect("bogus frame");
            }),
        ),
        (
            "hangup before reply",
            Box::new(|s: &mut TcpStream| {
                let (_, _) = wire::read_frame(s).expect("offer");
                let _ = s.shutdown(std::net::Shutdown::Both);
            }),
        ),
    ];
    for (name, script) in scripts {
        let shard = ShardId(SHARD);
        let key = (0u64..)
            .find(|k| key_to_shard(*k, NUM_SHARDS) == SHARD)
            .unwrap();
        let fifo = Arc::new(FifoChecker::new());
        let exec = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
        exec.state()
            .put(shard, Key(1 << 33), Bytes::from_static(b"keep me"));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let peer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            script(&mut s);
        });
        let endpoint = MigrationEndpoint::connect(Arc::clone(&exec), addr).expect("connect");
        let err = endpoint
            .migrate_out(shard)
            .expect_err("garbage reply must fail the migration");
        assert!(
            matches!(
                err,
                MigrateError::PeerDisconnected | MigrateError::Wire(_) | MigrateError::Timeout
            ),
            "{name}: untyped failure {err}"
        );
        peer.join().expect("peer thread");
        // The abort path restored the shard: still local, still intact,
        // still serving.
        assert!(exec.owns_shard(shard), "{name}: shard lost");
        assert_eq!(
            exec.state().get(shard, Key(1 << 33)),
            Some(Bytes::from_static(b"keep me")),
            "{name}: state lost"
        );
        for seq in 1..=3u64 {
            exec.ingest(Record::new(Key(key), Bytes::new()).with_seq(seq));
        }
        assert!(
            wait_until(Duration::from_secs(10), || exec
                .state()
                .get(shard, Key(key))
                .map(|v| u64::from_le_bytes(v.as_ref().try_into().unwrap()))
                == Some(3)),
            "{name}: restored shard not serving"
        );
        assert!(fifo.is_clean());
        endpoint.close();
    }
}
