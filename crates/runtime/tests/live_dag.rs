//! Integration tests for the live DAG layer: fan-out conservation per
//! grouping, per-upstream-edge FIFO through fan-in merges under
//! concurrent branch load, topology rejection at build time, and
//! quiescence + graceful teardown on a diamond.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use elasticutor_core::error::Error;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_runtime::dag::LiveDag;
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{ExecutorConfig, FifoChecker, Operator, Record};
use elasticutor_state::StateHandle;

fn small(shards: u32) -> ExecutorConfig {
    ExecutorConfig {
        num_shards: shards,
        initial_tasks: 1,
        ..ExecutorConfig::default()
    }
}

fn passthrough() -> impl Operator {
    |r: &Record, _s: &StateHandle| vec![r.clone()]
}

/// Counts every processed record and emits nothing (a terminal sink).
struct Counting(Arc<AtomicU64>);

impl Operator for Counting {
    fn process(&self, _record: &Record, _state: &StateHandle) -> Vec<Record> {
        self.0.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }
}

#[test]
fn fan_out_key_edges_deliver_one_copy_per_target() {
    // source → {left, right}: every record must reach BOTH consumers
    // exactly once (fan-out is replication across consumers; the key
    // grouping routes each copy within its consumer).
    let left_n = Arc::new(AtomicU64::new(0));
    let right_n = Arc::new(AtomicU64::new(0));
    let mut b = LiveDag::builder();
    let source = b.source("source", small(16), passthrough());
    let left = b.operator("left", small(32), Counting(Arc::clone(&left_n)));
    let right = b.operator("right", small(8), Counting(Arc::clone(&right_n)));
    b.key_edge(source, left).key_edge(source, right);
    let dag = b.build().expect("valid fan-out topology");

    const N: u64 = 2_000;
    for i in 0..N {
        dag.port(source)
            .ingest(Record::new(Key(i % 31), Bytes::new()).with_seq(i));
    }
    dag.drain();
    assert_eq!(left_n.load(Ordering::Relaxed), N);
    assert_eq!(right_n.load(Ordering::Relaxed), N);
    let stats = dag.shutdown();
    assert_eq!(stats[left.index()].stats.processed, N);
    assert_eq!(stats[right.index()].stats.processed, N);
    assert_eq!(stats[source.index()].stats.processed, N);
}

#[test]
fn broadcast_edge_replicates_to_every_shard() {
    // Every record must reach every one of the consumer's shards — the
    // grouping's target set is the whole shard space.
    const SHARDS: u32 = 8;
    let seen = Arc::new(AtomicU64::new(0));
    let mut b = LiveDag::builder();
    let source = b.source("source", small(4), passthrough());
    let all = b.operator("all", small(SHARDS), Counting(Arc::clone(&seen)));
    b.broadcast_edge(source, all);
    let dag = b.build().expect("valid broadcast topology");

    const N: u64 = 500;
    for i in 0..N {
        // One fixed key: only the broadcast replication may spread it.
        dag.port(source)
            .ingest(Record::new(Key(7), Bytes::new()).with_seq(i));
    }
    dag.drain();
    assert_eq!(
        seen.load(Ordering::Relaxed),
        N * u64::from(SHARDS),
        "each record must be delivered once per consumer shard"
    );
    let stats = dag.shutdown();
    assert_eq!(stats[all.index()].stats.processed, N * u64::from(SHARDS));
}

#[test]
fn shuffle_edge_spreads_one_copy_across_shards() {
    const SHARDS: u32 = 8;
    let seen = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&seen);
    let mut b = LiveDag::builder();
    let source = b.source("source", small(4), passthrough());
    // Writes state under the record's key: with a single key, the state
    // entry lands in whichever shard the shuffle routed the record to —
    // so distinct shards holding the key prove the spread.
    let spread = b.operator(
        "spread",
        small(SHARDS),
        move |r: &Record, s: &StateHandle| {
            counter.fetch_add(1, Ordering::Relaxed);
            s.update(r.key, |_| Some(Bytes::from_static(b"x")));
            Vec::new()
        },
    );
    b.shuffle_edge(source, spread);
    let dag = b.build().expect("valid shuffle topology");

    const N: u64 = 800;
    for i in 0..N {
        dag.port(source)
            .ingest(Record::new(Key(1), Bytes::new()).with_seq(i));
    }
    dag.drain();
    assert_eq!(seen.load(Ordering::Relaxed), N, "shuffle sends one copy");
    // Each shard's state lives at its owning instance (one store per
    // instance when the group runs with parallelism > 1), so collect
    // every instance's store before shutdown.
    let group = dag.group(spread);
    let states: Vec<_> = (0..group.num_slots() as u32)
        .map(|id| Arc::clone(group.instance(id).state()))
        .collect();
    let stats = dag.shutdown();
    assert_eq!(stats[spread.index()].stats.processed, N);
    let covered = (0..SHARDS)
        .filter(|&s| states.iter().any(|st| st.shard_keys(ShardId(s)) > 0))
        .count();
    assert_eq!(
        covered, SHARDS as usize,
        "round-robin must cover every shard of the consumer"
    );
}

/// A fan-in sink that checks per-(edge, key) FIFO: the upstream branch
/// writes its marker into the payload, and the checker namespaces keys
/// by marker so each inbound edge's stream is verified independently.
struct MergeSink {
    order: Arc<FifoChecker>,
    delivered: Arc<AtomicU64>,
}

impl Operator for MergeSink {
    fn process(&self, record: &Record, _state: &StateHandle) -> Vec<Record> {
        let marker = u64::from(record.payload.as_ref().first().copied().unwrap_or(0));
        self.order
            .observe(Key(record.key.value() * 8 + marker), record.seq);
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }
}

/// Tags records with a branch marker so the merge can attribute them.
struct Tag(u8);

impl Operator for Tag {
    fn process(&self, record: &Record, _state: &StateHandle) -> Vec<Record> {
        let mut tagged = record.clone();
        tagged.payload = Bytes::copy_from_slice(&[self.0]);
        vec![tagged]
    }
}

#[test]
fn fan_in_holds_per_edge_fifo_under_concurrent_branch_load() {
    // Two independent sources race into one merge operator while the
    // merge is scaled up, rebalanced, and scaled down mid-stream: the
    // interleaving across edges is free, but within each edge per-key
    // order must hold bit-for-bit.
    let order = Arc::new(FifoChecker::new());
    let delivered = Arc::new(AtomicU64::new(0));
    let mut b = LiveDag::builder();
    let s1 = b.source("s1", small(16), Tag(1));
    let s2 = b.source("s2", small(16), Tag(2));
    let merge = b.operator(
        "merge",
        ExecutorConfig {
            num_shards: 64,
            initial_tasks: 1,
            ..ExecutorConfig::default()
        },
        MergeSink {
            order: Arc::clone(&order),
            delivered: Arc::clone(&delivered),
        },
    );
    b.key_edge(s1, merge).key_edge(s2, merge);
    let dag = Arc::new(b.build().expect("valid fan-in topology"));

    const PER_SOURCE: u64 = 8_000;
    const KEYS: u64 = 37;
    let submitters: Vec<_> = [s1, s2]
        .into_iter()
        .map(|source| {
            let dag = Arc::clone(&dag);
            std::thread::spawn(move || {
                let mut seqs = [0u64; KEYS as usize];
                for i in 0..PER_SOURCE {
                    let key = i % KEYS;
                    seqs[key as usize] += 1;
                    dag.port(source)
                        .ingest(Record::new(Key(key), Bytes::new()).with_seq(seqs[key as usize]));
                }
            })
        })
        .collect();
    // Stress the merge's routing while the branches race: grow, move
    // shards, shrink — the §3.3 protocol must keep each edge's order.
    let merge_exec = Arc::clone(dag.executor(merge));
    let churn = std::thread::spawn(move || {
        for _ in 0..6 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let added = merge_exec.add_task();
            merge_exec.rebalance();
            std::thread::sleep(std::time::Duration::from_millis(20));
            if let Ok(task) = added {
                let _ = merge_exec.remove_task(task);
            }
        }
    });
    for t in submitters {
        t.join().expect("submitter finishes");
    }
    churn.join().expect("churn finishes");
    dag.drain();
    assert_eq!(delivered.load(Ordering::Relaxed), 2 * PER_SOURCE);
    assert!(
        order.is_clean(),
        "per-edge per-key FIFO violated: {:?}",
        order.violations()
    );
    let dag = Arc::try_unwrap(dag).expect("all clones dropped");
    let stats = dag.shutdown();
    assert_eq!(stats[merge.index()].stats.processed, 2 * PER_SOURCE);
}

#[test]
fn diamond_reaches_quiescence_and_conserves_records() {
    // source → {a, b} → merge: every source record arrives at the merge
    // exactly twice (once per branch), per-edge FIFO intact.
    let order = Arc::new(FifoChecker::new());
    let delivered = Arc::new(AtomicU64::new(0));
    let mut b = LiveDag::builder();
    let source = b.source("source", small(16), passthrough());
    let left = b.operator("a", small(32), Tag(1));
    let right = b.operator("b", small(32), Tag(2));
    let merge = b.operator(
        "merge",
        small(32),
        MergeSink {
            order: Arc::clone(&order),
            delivered: Arc::clone(&delivered),
        },
    );
    b.key_edge(source, left)
        .key_edge(source, right)
        .key_edge(left, merge)
        .key_edge(right, merge);
    let dag = b.build().expect("valid diamond");

    const N: u64 = 5_000;
    const KEYS: u64 = 23;
    let mut seqs = [0u64; KEYS as usize];
    for i in 0..N {
        let key = i % KEYS;
        seqs[key as usize] += 1;
        dag.port(source)
            .ingest(Record::new(Key(key), Bytes::new()).with_seq(seqs[key as usize]));
    }
    dag.drain();
    assert!(dag.is_quiescent(), "drain must leave the DAG quiescent");
    assert_eq!(delivered.load(Ordering::Relaxed), 2 * N);
    assert!(
        order.is_clean(),
        "per-edge per-key FIFO violated on the diamond: {:?}",
        order.violations()
    );
    let stats = dag.shutdown();
    assert_eq!(stats[source.index()].stats.processed, N);
    assert_eq!(stats[left.index()].stats.processed, N);
    assert_eq!(stats[right.index()].stats.processed, N);
    assert_eq!(stats[merge.index()].stats.processed, 2 * N);
}

#[test]
fn diamond_shutdown_survives_retained_branch_handle() {
    let merged = Arc::new(AtomicU64::new(0));
    let mut b = LiveDag::builder();
    let source = b.source("source", small(8), passthrough());
    let left = b.operator("a", small(8), passthrough());
    let right = b.operator("b", small(8), passthrough());
    let merge = b.operator("merge", small(8), Counting(Arc::clone(&merged)));
    b.key_edge(source, left)
        .key_edge(source, right)
        .key_edge(left, merge)
        .key_edge(right, merge);
    let dag = b.build().expect("valid diamond");
    for i in 0..1_000u64 {
        dag.port(source)
            .ingest(Record::new(Key(i % 13), Bytes::new()));
    }
    dag.drain();
    // A clone of one branch's handle outlives the DAG: teardown must
    // degrade (halt in place, detach dependents), not panic or hang.
    let retained = Arc::clone(dag.executor(left));
    let stats = dag.shutdown();
    assert_eq!(merged.load(Ordering::Relaxed), 2_000);
    assert_eq!(stats[merge.index()].stats.processed, 2_000);
    assert_eq!(retained.tasks().len(), 0, "tasks were halted in place");
    drop(retained);
}

#[test]
fn outputs_are_exposed_for_sinks_only() {
    let mut b = LiveDag::builder();
    let source = b.source("source", small(4), passthrough());
    let mid = b.operator("mid", small(4), passthrough());
    let sink = b.operator("sink", small(4), passthrough());
    b.key_edge(source, mid).key_edge(mid, sink);
    let dag = b.build().expect("valid chain");
    assert!(dag.outputs(source).is_none());
    assert!(dag.outputs(mid).is_none());
    let rx = dag.outputs(sink).expect("sink exposes outputs");
    dag.port(source).ingest(Record::new(Key(1), Bytes::new()));
    dag.drain();
    assert_eq!(rx.try_iter().flatten().count(), 1);
    dag.shutdown();
}

#[test]
fn build_rejects_invalid_topologies() {
    // Cycle.
    let mut b = LiveDag::builder();
    let s = b.source("s", small(4), passthrough());
    let x = b.operator("x", small(4), passthrough());
    let y = b.operator("y", small(4), passthrough());
    b.key_edge(s, x).key_edge(x, y).key_edge(y, x);
    assert!(matches!(
        b.build(),
        Err(Error::InvalidTopology(msg)) if msg.contains("cycle")
    ));

    // Key + Shuffle mixed into one operator.
    let mut b = LiveDag::builder();
    let s1 = b.source("s1", small(4), passthrough());
    let s2 = b.source("s2", small(4), passthrough());
    let m = b.operator("m", small(4), passthrough());
    b.key_edge(s1, m).shuffle_edge(s2, m);
    assert!(matches!(
        b.build(),
        Err(Error::InvalidTopology(msg)) if msg.contains("mixes Key and Shuffle")
    ));

    // Duplicate edge.
    let mut b = LiveDag::builder();
    let s = b.source("s", small(4), passthrough());
    let x = b.operator("x", small(4), passthrough());
    b.key_edge(s, x).key_edge(s, x);
    assert!(matches!(
        b.build(),
        Err(Error::InvalidTopology(msg)) if msg.contains("duplicate edge")
    ));

    // Budget override for an edge that does not exist.
    let mut b = LiveDag::builder();
    let s = b.source("s", small(4), passthrough());
    let x = b.operator("x", small(4), passthrough());
    b.key_edge(s, x).edge_capacity(x, s, 128);
    assert!(matches!(
        b.build(),
        Err(Error::InvalidTopology(msg)) if msg.contains("nonexistent edge")
    ));

    // Orphan transform (unreachable from any source).
    let mut b = LiveDag::builder();
    b.source("s", small(4), passthrough());
    b.operator("lonely", small(4), passthrough());
    assert!(b.build().is_err());
}

#[test]
fn per_edge_budget_overrides_apply() {
    // A tiny budget on one branch must not deadlock the DAG or lose
    // records — the forwarder just blocks more often on that edge.
    let left_n = Arc::new(AtomicU64::new(0));
    let right_n = Arc::new(AtomicU64::new(0));
    let mut b = LiveDag::builder();
    let source = b.source("source", small(8), passthrough());
    let left = b.operator("left", small(8), Counting(Arc::clone(&left_n)));
    let right = b.operator("right", small(8), Counting(Arc::clone(&right_n)));
    b.key_edge(source, left)
        .key_edge(source, right)
        .edge_capacity(source, right, 2);
    let dag = b.build().expect("valid topology with edge override");
    for i in 0..3_000u64 {
        dag.port(source)
            .ingest(Record::new(Key(i % 11), Bytes::new()));
    }
    dag.drain();
    assert_eq!(left_n.load(Ordering::Relaxed), 3_000);
    assert_eq!(right_n.load(Ordering::Relaxed), 3_000);
    dag.shutdown();
}

/// Fan-out batches are Arc-shared across branches: a branch that
/// "mutates" its records (emitting rewritten payloads) must never leak
/// the mutation into the sibling branch — payload mutation is
/// copy-on-write by construction (`Bytes` is immutable; a new payload
/// is a new allocation), so the shared originals stay bit-identical.
#[test]
fn arc_shared_fanout_never_leaks_cross_branch_mutation() {
    const N: u64 = 4_000;
    const PAYLOAD: &[u8] = b"original payload bytes, shared by reference across branches";
    let intact = Arc::new(AtomicU64::new(0));
    let corrupted = Arc::new(AtomicU64::new(0));

    // `mutator` rewrites every record's payload; `auditor` (the
    // sibling branch) asserts it still observes the original bytes.
    let mutator = |r: &Record, _s: &StateHandle| {
        let mut rewritten = r.payload.to_vec();
        for b in &mut rewritten {
            *b ^= 0xFF;
        }
        vec![Record::new_at(r.key, Bytes::from(rewritten), r.created_ns).with_seq(r.seq)]
    };
    let audit = {
        let intact = Arc::clone(&intact);
        let corrupted = Arc::clone(&corrupted);
        move |r: &Record, _s: &StateHandle| {
            if r.payload.as_ref() == PAYLOAD {
                intact.fetch_add(1, Ordering::Relaxed);
            } else {
                corrupted.fetch_add(1, Ordering::Relaxed);
            }
            Vec::<Record>::new()
        }
    };

    let mut b = LiveDag::builder();
    let source = b.source("source", small(8), passthrough());
    let mutating = b.operator("mutating", small(8), mutator);
    let auditing = b.operator("auditing", small(8), audit);
    b.key_edge(source, mutating).key_edge(source, auditing);
    let dag = b.build().expect("valid fan-out topology");
    let mut batch = Vec::new();
    for i in 0..N {
        batch.push(Record::new(Key(i % 13), Bytes::from_static(PAYLOAD)).with_seq(i));
        if batch.len() == 64 {
            dag.port(source).ingest_batch(std::mem::take(&mut batch));
        }
    }
    dag.port(source).ingest_batch(batch);
    dag.drain();
    assert_eq!(
        corrupted.load(Ordering::Relaxed),
        0,
        "cross-branch mutation observed"
    );
    assert_eq!(intact.load(Ordering::Relaxed), N);
    let stats = dag.shutdown();
    assert_eq!(stats[mutating.index()].stats.processed, N);
    assert_eq!(stats[auditing.index()].stats.processed, N);
}

/// Broadcast over an Arc-shared edge: every consumer shard sees every
/// record with its payload intact, and conservation is exact
/// (records × shards), even with a mutating sibling branch in the way.
#[test]
fn broadcast_shares_payloads_across_all_shards() {
    const N: u64 = 1_000;
    const SHARDS: u32 = 8;
    const PAYLOAD: &[u8] = b"broadcast body";
    let intact = Arc::new(AtomicU64::new(0));
    let mutate_count = Arc::new(AtomicU64::new(0));

    let audit = {
        let intact = Arc::clone(&intact);
        move |r: &Record, _s: &StateHandle| {
            assert_eq!(r.payload.as_ref(), PAYLOAD, "broadcast copy corrupted");
            intact.fetch_add(1, Ordering::Relaxed);
            Vec::<Record>::new()
        }
    };
    let mutator = {
        let n = Arc::clone(&mutate_count);
        move |r: &Record, _s: &StateHandle| {
            n.fetch_add(1, Ordering::Relaxed);
            vec![Record::new(r.key, Bytes::from(vec![0u8; 4]))]
        }
    };

    let mut b = LiveDag::builder();
    let source = b.source("source", small(4), passthrough());
    let fanout = b.operator("fanout", small(SHARDS), audit);
    let twist = b.operator("twist", small(4), mutator);
    b.broadcast_edge(source, fanout).key_edge(source, twist);
    let dag = b.build().expect("valid broadcast fan-out");
    for i in 0..N {
        dag.port(source)
            .ingest(Record::new(Key(i), Bytes::from_static(PAYLOAD)));
    }
    dag.drain();
    assert_eq!(intact.load(Ordering::Relaxed), N * u64::from(SHARDS));
    assert_eq!(mutate_count.load(Ordering::Relaxed), N);
    let stats = dag.shutdown();
    assert_eq!(stats[fanout.index()].stats.processed, N * u64::from(SHARDS));
}
