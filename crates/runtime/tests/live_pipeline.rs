//! Live controller integration: a hot stage must be grown by the
//! background scheduling loop while records flow, without losing
//! records or per-key order.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_core::ids::Key;
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{
    ControllerConfig, ExecutorConfig, FifoChecker, Operator, Pipeline, Record,
};
use elasticutor_state::StateHandle;

/// Sink that checks per-key sequence order.
struct OrderedSink {
    order: Arc<FifoChecker>,
}

impl Operator for OrderedSink {
    fn process(&self, record: &Record, _state: &StateHandle) -> Vec<Record> {
        self.order.observe(record.key, record.seq);
        vec![record.clone()]
    }
}

#[test]
fn controller_grows_hot_stage_under_load() {
    let order = Arc::new(FifoChecker::new());
    let pipe = Pipeline::builder()
        .stage(
            "hot",
            ExecutorConfig {
                num_shards: 32,
                initial_tasks: 1,
                ..ExecutorConfig::default()
            },
            // ~200 µs of service per record: one task saturates at
            // ~5 kHz, well under the offered rate below.
            |r: &Record, _s: &StateHandle| {
                std::thread::sleep(Duration::from_micros(200));
                vec![r.clone()]
            },
        )
        .stage(
            "sink",
            ExecutorConfig {
                num_shards: 32,
                initial_tasks: 1,
                ..ExecutorConfig::default()
            },
            OrderedSink {
                order: Arc::clone(&order),
            },
        )
        .capacity(65_536)
        .controller(ControllerConfig {
            interval: Duration::from_millis(80),
            total_cores: 6,
            ..ControllerConfig::default()
        })
        .build();

    // Offer ~12 kHz for 1.5 s (paced): demand ≈ 2.4 busy cores.
    let total = 18_000u64;
    let gap = Duration::from_secs_f64(1.0 / 12_000.0);
    let start = Instant::now();
    let mut next = start;
    let mut seqs = vec![0u64; 64];
    for i in 0..total {
        let key = i % 64;
        seqs[key as usize] += 1;
        pipe.ingest(Record::new(Key(key), Bytes::new()).with_seq(seqs[key as usize]));
        next += gap;
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
    }
    pipe.drain();

    // The controller must have grown the hot stage at some point.
    let log = pipe.controller_log();
    assert!(!log.is_empty(), "controller never ticked");
    let peak_hot = log.iter().map(|e| e.cores[0]).max().unwrap_or(1);
    assert!(
        peak_hot >= 2,
        "controller never grew the hot stage (peak {peak_hot} cores)"
    );
    // Budget respected at every decision.
    assert!(
        log.iter().all(|e| e.cores.iter().sum::<u32>() <= 6),
        "task budget exceeded"
    );

    // No record lost, no order violated — despite live regrowth.
    assert_eq!(pipe.outputs().try_iter().flatten().count() as u64, total);
    assert!(
        order.is_clean(),
        "per-key FIFO violated: {:?}",
        order.violations()
    );
    let stats = pipe.shutdown();
    assert_eq!(stats[0].stats.processed, total);
    assert_eq!(stats[1].stats.processed, total);
}
