//! Stress test for the wait-free data plane: concurrent multi-threaded
//! `submit`/`submit_batch` racing a storm of `reassign_shard`,
//! `add_task`, `remove_task`, and `rebalance` cycles.
//!
//! This is the adversarial scenario the atomic routing protocol must
//! survive: fast-path submitters read shard words with no lock while the
//! control plane pauses shards, drains tasks, and reuses task slots
//! underneath them. The §2.1 contract is checked three independent ways:
//! per-key FIFO (via [`FifoChecker`]), zero lost or duplicated records
//! (operator-side count and executor counters), and state conservation
//! (per-key counters sum to the submitted total).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{ElasticExecutor, ExecutorConfig, FifoChecker, Operator, Record};
use elasticutor_state::StateHandle;

const SUBMITTERS: u64 = 4;
const PER_THREAD: u64 = 25_000;
const NUM_KEYS: u64 = 64;
const NUM_SHARDS: u32 = 64;

/// Sink: order check + per-key conservation counter.
struct StressSink {
    order: Arc<FifoChecker>,
    processed: Arc<AtomicU64>,
}

impl Operator for StressSink {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        self.order.observe(record.key, record.seq);
        state.update(record.key, |old| {
            let n = old.map_or(0u64, |v| {
                u64::from_le_bytes(v.as_ref().try_into().expect("8 bytes"))
            });
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        self.processed.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }
}

#[test]
fn concurrent_submitters_survive_reassignment_storm() {
    let order = Arc::new(FifoChecker::new());
    let processed = Arc::new(AtomicU64::new(0));
    let exec = Arc::new(ElasticExecutor::start(
        ExecutorConfig {
            num_shards: NUM_SHARDS,
            initial_tasks: 3,
            ..ExecutorConfig::default()
        },
        StressSink {
            order: Arc::clone(&order),
            processed: Arc::clone(&processed),
        },
    ));

    // Submitters own disjoint key sets (key % SUBMITTERS == thread id),
    // so each key has exactly one writer and per-key seq order at the
    // source is well defined. Half the threads use the per-record path,
    // half the batched path.
    let submitters: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let exec = Arc::clone(&exec);
            std::thread::spawn(move || {
                let mut seqs = vec![0u64; NUM_KEYS as usize];
                let batched = t % 2 == 0;
                let mut batch = Vec::new();
                for i in 0..PER_THREAD {
                    // Walk this thread's key class in a scrambled order.
                    let key = ((i * 13 + t * 5) % (NUM_KEYS / SUBMITTERS)) * SUBMITTERS + t;
                    seqs[key as usize] += 1;
                    let record = Record::new(Key(key), Bytes::new()).with_seq(seqs[key as usize]);
                    if batched {
                        batch.push(record);
                        // Odd batch size to interleave with shard moves.
                        if batch.len() == 33 || i + 1 == PER_THREAD {
                            exec.ingest_batch(std::mem::take(&mut batch));
                        }
                    } else {
                        exec.ingest(record);
                    }
                }
            })
        })
        .collect();

    // The storm: grow, rebalance, scatter shards, shrink — repeatedly,
    // while all submitters are running.
    let stop = Arc::new(AtomicBool::new(false));
    let storm = {
        let exec = Arc::clone(&exec);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rounds = 0usize;
            while !stop.load(Ordering::Acquire) {
                rounds += 1;
                let tasks = exec.tasks();
                if tasks.len() < 6 {
                    exec.add_task().expect("grow");
                }
                exec.rebalance();
                let tasks = exec.tasks();
                for s in (0..NUM_SHARDS).step_by(5) {
                    let to = tasks[(s as usize + rounds) % tasks.len()];
                    // Failures (paused shard, draining target, no-op)
                    // are expected mid-storm.
                    let _ = exec.reassign_shard(ShardId(s), to);
                }
                if tasks.len() > 2 {
                    let victim = tasks[rounds % tasks.len()];
                    let _ = exec.remove_task(victim);
                }
                std::thread::yield_now();
            }
            rounds
        })
    };

    for s in submitters {
        s.join().expect("submitter exits");
    }
    stop.store(true, Ordering::Release);
    let rounds = storm.join().expect("storm exits");
    assert!(rounds > 0, "the storm must actually have run");

    let total = SUBMITTERS * PER_THREAD;
    exec.wait_for_processed(total);

    // 1. No per-key order violation, no duplicate (FifoChecker flags
    //    seq <= previous, so replays count as violations too).
    assert_eq!(
        order.violations(),
        Vec::<(u64, u64, u64)>::new(),
        "per-key FIFO violated under the wait-free fast path"
    );
    // 2. Nothing lost: every submitted record reached the operator
    //    exactly once (executor counter and operator counter agree).
    assert_eq!(exec.processed_count(), total);
    assert_eq!(processed.load(Ordering::Relaxed), total);
    // 3. Conservation in state: per-key counts sum to the total even
    //    though shards changed owners throughout.
    let store = Arc::clone(exec.state());
    let mut sum = 0u64;
    for shard in store.shards() {
        for key in 0..NUM_KEYS {
            if let Some(v) = store.get(shard, Key(key)) {
                sum += u64::from_le_bytes(v.as_ref().try_into().expect("8 bytes"));
            }
        }
    }
    assert_eq!(sum, total, "state lost or duplicated during the storm");
    // 4. The storm exercised the protocol for real.
    let exec = Arc::try_unwrap(exec).unwrap_or_else(|_| panic!("sole owner"));
    let stats = exec.shutdown();
    assert!(
        !stats.reassignments.is_empty(),
        "no reassignment completed — the storm was a no-op"
    );
    assert_eq!(stats.latency.count(), total, "every record was measured");
}
