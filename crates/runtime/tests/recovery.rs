//! Crash-recovery of the migration 2PC: every journal fate must settle
//! to exactly one owner through [`MigrationEndpoint::recover`].
//!
//! The two-process version — where the victim really dies at each
//! durability point via `ELASTICUTOR_FAILPOINTS=...=kill` — is the
//! `chaos` binary in `elasticutor-bench`. Here the crash is simulated
//! by hand-writing the journal a dead process would have left (or, for
//! the surviving-sender case, by a scripted raw-TCP peer that vanishes
//! mid-2PC), which lets the tests pin down each resolution row of the
//! `recover()` table in isolation.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_core::hash::key_to_shard;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_core::wire;
use elasticutor_runtime::journal::replay_path;
use elasticutor_runtime::migrate::{MSG_ACCEPT, MSG_COMMIT, MSG_OFFER, MSG_STATE};
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{
    ElasticExecutor, ExecutorConfig, FifoChecker, MigrateError, MigrationConfig, MigrationEndpoint,
    Operator, Record, RecoveryJournal,
};
use elasticutor_state::{ShardSnapshot, StateHandle};

const NUM_SHARDS: u32 = 8;

fn config() -> ExecutorConfig {
    ExecutorConfig {
        num_shards: NUM_SHARDS,
        initial_tasks: 2,
        ..ExecutorConfig::default()
    }
}

fn counting_op(fifo: Arc<FifoChecker>) -> impl Operator {
    move |r: &Record, s: &StateHandle| {
        fifo.observe(r.key, r.seq);
        s.update(r.key, |old| {
            let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        Vec::new()
    }
}

fn read_count(exec: &ElasticExecutor<impl Operator>, shard: ShardId, key: Key) -> Option<u64> {
    exec.state()
        .get(shard, key)
        .map(|v| u64::from_le_bytes(v.as_ref().try_into().unwrap()))
}

fn tmp_journal(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "elasticutor-recovery-{}-{name}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// The first two distinct keys hashing to `shard`: one to carry a
/// preloaded opaque value through the recovery, one for live counting
/// bursts (the counting operator needs its key's value to stay a
/// counter).
fn keys_in(shard: u32) -> (u64, u64) {
    let mut it = (0u64..).filter(|k| key_to_shard(*k, NUM_SHARDS) == shard);
    (it.next().unwrap(), it.next().unwrap())
}

fn snap(shard: u32, entries: &[(u64, &[u8])]) -> ShardSnapshot {
    ShardSnapshot {
        shard: ShardId(shard),
        entries: entries
            .iter()
            .map(|(k, v)| (Key(*k), Bytes::copy_from_slice(v)))
            .collect(),
    }
}

/// Links two executors; side A journals to `journal_a`.
fn link_with_journal<A: Operator, B: Operator>(
    a: &Arc<ElasticExecutor<A>>,
    b: &Arc<ElasticExecutor<B>>,
    journal_a: &PathBuf,
) -> (MigrationEndpoint<A>, MigrationEndpoint<B>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let b = Arc::clone(b);
    let accept =
        std::thread::spawn(move || MigrationEndpoint::accept(b, &listener).expect("accept"));
    let ep_a = MigrationEndpoint::connect_with(
        Arc::clone(a),
        addr,
        MigrationConfig::default()
            .with_offer_deadline(Duration::from_secs(5))
            .with_journal(journal_a),
    )
    .expect("connect");
    let ep_b = accept.join().expect("accept thread");
    (ep_a, ep_b)
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    cond()
}

/// `OFFER_SENT` with no commit: the crash happened before the 2PC
/// window opened, so the peer can never have installed — the restarted
/// sender restores the shard from its own journal.
#[test]
fn offer_sent_restores_locally_from_journal() {
    let shard = ShardId(3);
    let (key, _) = keys_in(3);
    let path = tmp_journal("offer-sent");
    {
        let j = RecoveryJournal::open(&path).expect("journal");
        j.log_offer_sent(&snap(3, &[(key, b"precious")])).unwrap();
    }
    let fifo = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo)));
    let (ep_a, ep_b) = link_with_journal(&exec_a, &exec_b, &path);

    let report = ep_a.recover().expect("recover");
    assert_eq!(report.restored, vec![shard]);
    assert!(report.remote.is_empty() && report.adopted.is_empty());
    assert_eq!(
        exec_a.state().get(shard, Key(key)),
        Some(Bytes::from_static(b"precious"))
    );
    assert!(exec_a.owns_shard(shard));
    // The resolution is journaled: replay shows nothing open, and a
    // second recovery (another crash right after) is a no-op.
    assert!(replay_path(&path).expect("replay").open.is_empty());
    let again = ep_a.recover().expect("recover twice");
    assert!(again.restored.is_empty() && again.remote.is_empty());

    ep_a.close();
    ep_b.close();
    let _ = std::fs::remove_file(&path);
}

/// `COMMIT_SENT` with no ack, and the peer **did** install before the
/// crash: the recovery query finds the shard owned there, so this side
/// settles it remote — records submitted here forward over the link.
#[test]
fn commit_sent_resolves_remote_when_peer_owns() {
    let shard = ShardId(3);
    let (pk, key) = keys_in(3);
    let path = tmp_journal("commit-remote");
    {
        let j = RecoveryJournal::open(&path).expect("journal");
        let s = snap(3, &[(pk, b"shipped")]);
        j.log_offer_sent(&s).unwrap();
        j.log_commit_sent(shard).unwrap();
    }
    let fifo = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo)));
    // The peer hosts the shard (it owns every shard it never gave away).
    exec_b
        .state()
        .put(shard, Key(pk), Bytes::from_static(b"shipped"));
    let (ep_a, ep_b) = link_with_journal(&exec_a, &exec_b, &path);

    let report = ep_a.recover().expect("recover");
    assert_eq!(report.remote, vec![shard]);
    assert!(report.restored.is_empty());
    assert!(!exec_a.owns_shard(shard));
    assert_eq!(exec_a.remote_shards(), vec![shard]);
    // The settled routing is live: records land on the peer's copy.
    for seq in 1..=5u64 {
        exec_a.ingest(Record::new(Key(key), Bytes::new()).with_seq(seq));
    }
    assert!(wait_until(Duration::from_secs(10), || {
        read_count(&exec_b, shard, Key(key)) == Some(5)
    }));
    assert!(replay_path(&path).expect("replay").open.is_empty());

    ep_a.close();
    ep_b.close();
    let _ = std::fs::remove_file(&path);
}

/// `COMMIT_SENT` with no ack, and the peer did **not** install (the
/// commit never arrived): the recovery query comes back negative and
/// the sender restores its journaled copy.
#[test]
fn commit_sent_restores_when_peer_never_installed() {
    let shard = ShardId(3);
    let (key, _) = keys_in(3);
    let path = tmp_journal("commit-local");
    {
        let j = RecoveryJournal::open(&path).expect("journal");
        let s = snap(3, &[(key, b"kept")]);
        j.log_offer_sent(&s).unwrap();
        j.log_commit_sent(shard).unwrap();
    }
    let fifo = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo)));
    let (ep_a, ep_b) = link_with_journal(&exec_a, &exec_b, &path);
    // The peer considers the shard ours — it never saw the commit.
    ep_b.delegate_shards(&[shard]).expect("delegate at B");

    let report = ep_a.recover().expect("recover");
    assert_eq!(report.restored, vec![shard]);
    assert!(report.remote.is_empty());
    assert!(exec_a.owns_shard(shard));
    assert_eq!(
        exec_a.state().get(shard, Key(key)),
        Some(Bytes::from_static(b"kept"))
    );

    ep_a.close();
    ep_b.close();
    let _ = std::fs::remove_file(&path);
}

/// `ACK_RECEIVED`: the peer durably owns the state — no query needed,
/// the restarted sender just flips the shard to remote routing.
#[test]
fn ack_received_settles_remote_without_query() {
    let shard = ShardId(6);
    let (key, _) = keys_in(6);
    let path = tmp_journal("acked");
    {
        let j = RecoveryJournal::open(&path).expect("journal");
        let s = snap(6, &[(key, b"gone")]);
        j.log_offer_sent(&s).unwrap();
        j.log_commit_sent(shard).unwrap();
        j.log_ack_received(shard).unwrap();
    }
    let fifo = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo)));
    exec_b
        .state()
        .put(shard, Key(key), Bytes::from_static(b"gone"));
    let (ep_a, ep_b) = link_with_journal(&exec_a, &exec_b, &path);

    let report = ep_a.recover().expect("recover");
    assert_eq!(report.remote, vec![shard]);
    assert!(!exec_a.owns_shard(shard));
    assert!(!exec_a.state().hosts(shard));

    ep_a.close();
    ep_b.close();
    let _ = std::fs::remove_file(&path);
}

/// `STATE_DURABLE` (receiver side): the verified snapshot went to disk
/// before the crash — the restarted receiver reinstates it and serves.
#[test]
fn receiver_durable_installs_from_journal() {
    let shard = ShardId(5);
    let (pk, key) = keys_in(5);
    let path = tmp_journal("durable");
    {
        let j = RecoveryJournal::open(&path).expect("journal");
        j.log_state_durable(&snap(5, &[(pk, b"adopted")])).unwrap();
    }
    let fifo = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo)));
    let (ep_a, ep_b) = link_with_journal(&exec_a, &exec_b, &path);
    // The sender's half of the same crash: it saw the ack, the shard
    // lives with us now.
    ep_b.delegate_shards(&[shard]).expect("delegate at B");

    let report = ep_a.recover().expect("recover");
    assert_eq!(report.adopted, vec![shard]);
    assert_eq!(
        exec_a.state().get(shard, Key(pk)),
        Some(Bytes::from_static(b"adopted"))
    );
    // The adopted shard serves live records.
    for seq in 1..=4u64 {
        exec_a.ingest(Record::new(Key(key), Bytes::new()).with_seq(seq));
    }
    assert!(wait_until(Duration::from_secs(10), || {
        read_count(&exec_a, shard, Key(key)) == Some(4)
    }));

    ep_a.close();
    ep_b.close();
    let _ = std::fs::remove_file(&path);
}

/// The surviving-sender path end to end: a scripted raw-TCP peer
/// accepts the offer, swallows the state, then vanishes right after
/// the commit — `migrate_out` parks the shard as [`MigrateError::InDoubt`]
/// (still buffering submits), and `recover()` on a **reconnected**
/// endpoint (same journal, a real peer this time) settles it back to
/// local with snapshot and buffered records intact.
#[test]
fn in_doubt_shard_parks_then_recovers_local() {
    let shard = ShardId(2);
    let (pk, key) = keys_in(2);
    let path = tmp_journal("in-doubt");
    let fifo = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
    exec_a
        .state()
        .put(shard, Key(pk), Bytes::from_static(b"parked"));

    // Scripted peer: ACCEPT the offer, read until COMMIT, then die.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let script = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        loop {
            let (msg, payload) = wire::read_frame(&mut s).expect("peer frame");
            if msg == MSG_OFFER {
                let mut reply = Vec::new();
                reply.extend_from_slice(&payload[..4]);
                wire::write_frame(&mut s, MSG_ACCEPT, &reply).expect("accept reply");
            } else if msg == MSG_COMMIT {
                return; // drop the socket mid-2PC
            }
        }
    });
    let ep_a1 = MigrationEndpoint::connect_with(
        Arc::clone(&exec_a),
        addr,
        MigrationConfig::default()
            .with_offer_deadline(Duration::from_secs(5))
            .with_state_deadline(Duration::from_secs(5))
            .with_journal(&path),
    )
    .expect("connect");
    let err = ep_a1.migrate_out(shard).expect_err("peer died mid-2PC");
    assert!(
        matches!(err, MigrateError::InDoubt(s) if s == shard),
        "got: {err}"
    );
    script.join().expect("script thread");
    assert!(exec_a.is_shard_paused(shard));
    // Submits to the parked shard buffer rather than drop.
    for seq in 1..=3u64 {
        exec_a.ingest(Record::new(Key(key), Bytes::new()).with_seq(seq));
    }
    ep_a1.close();

    // Reconnect to a real peer that never saw the state and recover.
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
    let (ep_a2, ep_b) = link_with_journal(&exec_a, &exec_b, &path);
    ep_b.delegate_shards(&[shard]).expect("delegate at B");
    let report = ep_a2.recover().expect("recover");
    assert_eq!(report.restored, vec![shard]);
    assert!(exec_a.owns_shard(shard));
    assert_eq!(
        exec_a.state().get(shard, Key(pk)),
        Some(Bytes::from_static(b"parked"))
    );
    // The pause buffer drained into the restored shard, in order.
    assert!(wait_until(Duration::from_secs(10), || {
        read_count(&exec_a, shard, Key(key)) == Some(3)
    }));
    assert!(fifo.is_clean());

    ep_a2.close();
    ep_b.close();
    let _ = std::fs::remove_file(&path);
}

/// Durable store + journal, peer death **mid-STATE**: the sender is
/// streaming the live base snapshot when the scripted peer vanishes.
/// Depending on when the link death is observed, the attempt either
/// restores the shard immediately (pre-commit failure) or parks it in
/// doubt — both must converge after a full simulated process restart
/// (same durability dir, same journal): `recover()` leaves the WAL and
/// the journal agreeing on exactly one owner, with the shard's bytes
/// intact.
#[test]
fn durable_sender_mid_state_crash_recovers_one_owner() {
    let shard = ShardId(4);
    let path = tmp_journal("durable-mid-state");
    let dur_dir =
        std::env::temp_dir().join(format!("elasticutor-recovery-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dur_dir);

    let mut cfg = config();
    cfg.durability = Some(dur_dir.clone());
    let fifo = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(cfg, counting_op(fifo.clone())));
    assert!(exec_a.state().is_durable());
    // Several STATE chunks' worth of state, so the peer's death really
    // lands inside the stream.
    let keys: Vec<u64> = (0u64..)
        .filter(|k| key_to_shard(*k, NUM_SHARDS) == 4)
        .take(10)
        .collect();
    for (i, k) in keys.iter().enumerate() {
        exec_a
            .state()
            .put(shard, Key(*k), Bytes::from(vec![i as u8; 64 * 1024]));
    }
    let before = exec_a
        .state()
        .snapshot_shard(shard)
        .expect("hosted")
        .entries;

    // Scripted peer: ACCEPT the offer, read one STATE chunk, vanish.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let script = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        loop {
            let (msg, payload) = wire::read_frame(&mut s).expect("peer frame");
            if msg == MSG_OFFER {
                let mut reply = Vec::new();
                reply.extend_from_slice(&payload[..4]);
                wire::write_frame(&mut s, MSG_ACCEPT, &reply).expect("accept reply");
            } else if msg == MSG_STATE {
                return; // drop the socket mid-stream
            }
        }
    });
    let ep_a1 = MigrationEndpoint::connect_with(
        Arc::clone(&exec_a),
        addr,
        MigrationConfig::default()
            .with_offer_deadline(Duration::from_secs(5))
            .with_state_deadline(Duration::from_secs(5))
            .with_journal(&path),
    )
    .expect("connect");
    let err = ep_a1.migrate_out(shard).expect_err("peer died mid-stream");
    let parked = matches!(&err, MigrateError::InDoubt(s) if *s == shard);
    script.join().expect("script thread");
    if !parked {
        // Pre-commit failure: the shard must already be fully restored.
        assert!(exec_a.owns_shard(shard), "restore failed after {err}");
        assert_eq!(
            exec_a
                .state()
                .snapshot_shard(shard)
                .expect("hosted")
                .entries,
            before
        );
    }
    ep_a1.close();

    // Simulated `kill -9` + restart: tear the process-local half down
    // and reopen the same durability dir and journal from scratch.
    Arc::try_unwrap(exec_a)
        .unwrap_or_else(|_| panic!("sole executor owner"))
        .shutdown();
    let mut cfg2 = config();
    cfg2.durability = Some(dur_dir.clone());
    let exec_a2 = Arc::new(ElasticExecutor::start(cfg2, counting_op(fifo.clone())));
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo)));
    let (ep_a2, ep_b) = link_with_journal(&exec_a2, &exec_b, &path);
    // B never installed anything; it treats the shard as A's.
    ep_b.delegate_shards(&[shard]).expect("delegate at B");
    ep_a2.recover().expect("recover");

    // Exactly one owner — A — with byte-exact state, however the crash
    // interleaved with the WAL `Drop`/journal appends.
    assert!(exec_a2.owns_shard(shard));
    assert_eq!(exec_b.state().shard_keys(shard), 0);
    let after = exec_a2
        .state()
        .snapshot_shard(shard)
        .expect("hosted")
        .entries;
    assert_eq!(after, before, "recovered shard diverged");
    // The journal closed every fate; a second recovery is a no-op.
    assert!(replay_path(&path).expect("replay").open.is_empty());
    let again = ep_a2.recover().expect("recover twice");
    assert!(again.restored.is_empty() && again.remote.is_empty() && again.adopted.is_empty());

    ep_a2.close();
    ep_b.close();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dur_dir);
}

/// A migration that **completed** (journal closed with RESOLVED_REMOTE)
/// followed by a durable restart: the WAL replays the shard's `Drop`,
/// so the restarted sender neither hosts the shard nor remembers the
/// remote routing — `recover()` must re-delegate it from the journal's
/// resolved-remote history, or records for the shard would re-home
/// locally and split-brain against the peer's live copy.
#[test]
fn resolved_remote_is_redelegated_after_durable_restart() {
    let shard = ShardId(7);
    let (pk, key) = keys_in(7);
    let path = tmp_journal("resolved-remote");
    let dur_dir = std::env::temp_dir().join(format!(
        "elasticutor-recovery-redelegate-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dur_dir);

    let mut cfg = config();
    cfg.durability = Some(dur_dir.clone());
    let fifo = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(cfg, counting_op(fifo.clone())));
    assert!(exec_a.state().is_durable());
    exec_a
        .state()
        .put(shard, Key(pk), Bytes::from_static(b"moved"));
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));

    // A clean, fully-acked migration A → B; the journal closes the
    // shard's fate with RESOLVED_REMOTE and the WAL records the Drop.
    let (ep_a1, ep_b1) = link_with_journal(&exec_a, &exec_b, &path);
    ep_a1.migrate_out(shard).expect("migrate");
    assert!(!exec_a.owns_shard(shard));
    assert_eq!(
        exec_b.state().get(shard, Key(pk)),
        Some(Bytes::from_static(b"moved"))
    );
    assert!(replay_path(&path).expect("replay").open.is_empty());
    ep_a1.close();
    ep_b1.close();

    // Simulated `kill -9` + restart of A: same durability dir, same
    // journal. The replayed WAL has no copy of the shard — and routing
    // is process-local, so without recovery A has simply forgotten the
    // shard lives on B.
    Arc::try_unwrap(exec_a)
        .unwrap_or_else(|_| panic!("sole executor owner"))
        .shutdown();
    let mut cfg2 = config();
    cfg2.durability = Some(dur_dir.clone());
    let exec_a2 = Arc::new(ElasticExecutor::start(cfg2, counting_op(fifo.clone())));
    // The hazard: routing defaults every shard local, so the restarted
    // process claims a shard whose state (and ownership) lives on B.
    assert!(exec_a2.owns_shard(shard));
    assert_eq!(exec_a2.state().shard_keys(shard), 0);

    let (ep_a2, ep_b2) = link_with_journal(&exec_a2, &exec_b, &path);
    let report = ep_a2.recover().expect("recover");
    assert_eq!(report.redelegated, vec![shard]);
    assert!(report.restored.is_empty() && report.remote.is_empty() && report.adopted.is_empty());
    assert!(!exec_a2.owns_shard(shard));
    assert_eq!(exec_a2.remote_shards(), vec![shard]);

    // The re-delegated routing is live: records submitted at A land on
    // B's copy, in order.
    for seq in 1..=6u64 {
        exec_a2.ingest(Record::new(Key(key), Bytes::new()).with_seq(seq));
    }
    assert!(wait_until(Duration::from_secs(10), || {
        read_count(&exec_b, shard, Key(key)) == Some(6)
    }));
    assert!(fifo.is_clean());

    // Idempotent: a second recovery is a no-op — the shard is already
    // bound remote, which counts as settled routing.
    let again = ep_a2.recover().expect("recover twice");
    assert!(again.redelegated.is_empty());

    ep_a2.close();
    ep_b2.close();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dur_dir);
}
