//! Stress tests of the per-task SPSC ring plane: a single-producer
//! executor under shrink/grow churn must preserve per-key FIFO and lose
//! no record while task slots (and their rings) retire and get reused,
//! and the `ring_capacity` knob must hold at pathological sizes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use elasticutor_core::ids::Key;
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{ElasticExecutor, ExecutorConfig, FifoChecker, Record};
use elasticutor_state::StateHandle;

fn ring_config(max_task_slots: u32, ring_capacity: Option<usize>) -> ExecutorConfig {
    ExecutorConfig {
        num_shards: 32,
        initial_tasks: 1,
        max_task_slots,
        single_producer: true,
        ring_capacity,
        ..ExecutorConfig::default()
    }
}

/// One submitter thread pushes a per-key sequenced stream through the
/// ring plane while the control plane storms add/remove/rebalance with
/// `max_task_slots` small enough to force every slot (and its ring) to
/// retire and be reused many times. FIFO per key, exact conservation.
#[test]
fn ring_plane_survives_slot_reuse_churn() {
    const KEYS: u64 = 64;
    const PER_KEY: u64 = 400;
    let checker = Arc::new(FifoChecker::new());
    let sink = Arc::clone(&checker);
    // max_task_slots = 3 with up-to-3 live tasks: every grow after a
    // shrink reuses a freed slot, re-creating the ring behind it.
    let exec = Arc::new(ElasticExecutor::start(
        ring_config(3, None),
        move |r: &Record, _s: &StateHandle| {
            sink.observe(r.key, r.seq);
            Vec::new()
        },
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let exec = Arc::clone(&exec);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut grown = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Grow to the slot cap, rebalance, then shrink back —
                // each cycle retires slots mid-stream.
                while exec.add_task().is_ok() {
                    grown += 1;
                }
                exec.rebalance();
                std::thread::sleep(std::time::Duration::from_micros(200));
                loop {
                    let tasks = exec.tasks();
                    if tasks.len() <= 1 {
                        break;
                    }
                    let victim = tasks[grown as usize % tasks.len()];
                    if exec.remove_task(victim).is_err() {
                        break;
                    }
                }
            }
            grown
        })
    };

    // The single producer: batched submits, sequenced per key.
    let mut batch = Vec::with_capacity(128);
    for seq in 0..PER_KEY {
        for key in 0..KEYS {
            batch.push(Record::new(Key(key), Bytes::new()).with_seq(seq));
            if batch.len() == 128 {
                exec.ingest_batch(std::mem::take(&mut batch));
            }
        }
    }
    exec.ingest_batch(std::mem::take(&mut batch));
    exec.wait_for_processed(KEYS * PER_KEY);
    stop.store(true, Ordering::Relaxed);
    let cycles = churn.join().expect("churn thread exits");
    assert!(cycles > 0, "the churn thread never grew a task");

    let stats = Arc::try_unwrap(exec)
        .unwrap_or_else(|_| panic!("sole owner"))
        .shutdown();
    assert_eq!(stats.processed, KEYS * PER_KEY, "records lost in flight");
    assert_eq!(stats.operator_panics, 0);
    assert!(
        checker.is_clean(),
        "per-key FIFO violated through the ring plane: {:?}",
        checker.violations()
    );
    assert_eq!(checker.keys_seen() as u64, KEYS);
}

/// A deliberately tiny ring forces the full-edge backoff path on nearly
/// every wave; ordering and conservation must still hold.
#[test]
fn tiny_ring_capacity_exercises_full_edge() {
    const TOTAL: u64 = 20_000;
    let checker = Arc::new(FifoChecker::new());
    let sink = Arc::clone(&checker);
    let exec = ElasticExecutor::start(
        ring_config(4, Some(2)), // minimum legal capacity
        move |r: &Record, _s: &StateHandle| {
            sink.observe(r.key, r.seq);
            Vec::new()
        },
    );
    assert!(exec.add_task().is_ok());
    for seq in 0..TOTAL {
        exec.ingest(Record::new(Key(seq % 16), Bytes::new()).with_seq(seq / 16));
    }
    exec.wait_for_processed(TOTAL);
    let stats = exec.shutdown();
    assert_eq!(stats.processed, TOTAL);
    assert!(checker.is_clean(), "FIFO violated at ring capacity 2");
}

/// The knob accepts a legal custom capacity and reports work done.
#[test]
fn custom_ring_capacity_is_honored() {
    let exec = ElasticExecutor::start(
        ring_config(4, Some(4096)),
        |_r: &Record, _s: &StateHandle| Vec::new(),
    );
    exec.ingest_batch(
        (0..1_000u64)
            .map(|i| Record::new(Key(i), Bytes::new()))
            .collect(),
    );
    exec.wait_for_processed(1_000);
    assert_eq!(exec.shutdown().processed, 1_000);
}

/// Ring capacities outside `2..=2^24` are rejected at build time.
#[test]
#[should_panic(expected = "ring_capacity")]
fn zero_ring_capacity_is_rejected() {
    let _ = ElasticExecutor::start(ring_config(4, Some(0)), |_r: &Record, _s: &StateHandle| {
        Vec::new()
    });
}

/// Reassignments racing the ring plane: the watermarked label must
/// land behind every pre-pause ring record (a shard's records never
/// reorder across a move).
#[test]
fn reassignment_watermarks_preserve_order() {
    const TOTAL: u64 = 50_000;
    let checker = Arc::new(FifoChecker::new());
    let sink = Arc::clone(&checker);
    let exec = Arc::new(ElasticExecutor::start(
        ring_config(4, Some(64)),
        move |r: &Record, _s: &StateHandle| {
            sink.observe(r.key, r.seq);
            Vec::new()
        },
    ));
    for _ in 0..2 {
        exec.add_task().expect("grow");
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mover = {
        let exec = Arc::clone(&exec);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Cycle one hot shard (and a rebalance) as fast as moves
            // complete: every cycle exercises pause → label watermark →
            // buffered flush → reopen against the ring plane.
            let mut moves = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let tasks = exec.tasks();
                for (i, &t) in tasks.iter().enumerate() {
                    let shard = elasticutor_core::ids::ShardId((i % 32) as u32);
                    if exec.reassign_shard(shard, t).is_ok() {
                        moves += 1;
                    }
                }
                std::thread::yield_now();
            }
            moves
        })
    };
    let mut batch = Vec::with_capacity(256);
    for seq in 0..TOTAL {
        batch.push(Record::new(Key(seq % 8), Bytes::new()).with_seq(seq / 8));
        if batch.len() == 256 {
            exec.ingest_batch(std::mem::take(&mut batch));
        }
    }
    exec.ingest_batch(std::mem::take(&mut batch));
    exec.wait_for_processed(TOTAL);
    stop.store(true, Ordering::Relaxed);
    let moves = mover.join().expect("mover exits");
    let stats = Arc::try_unwrap(exec)
        .unwrap_or_else(|_| panic!("sole owner"))
        .shutdown();
    assert_eq!(stats.processed, TOTAL);
    assert!(
        checker.is_clean(),
        "FIFO violated across {moves} reassignments: {:?}",
        checker.violations()
    );
    assert!(moves > 0, "the mover never initiated a reassignment");
}
