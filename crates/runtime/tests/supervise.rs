//! Panic isolation under supervision: a poison shard whose operator
//! keeps panicking is quarantined (black-holed, state parked) without
//! disturbing its neighbors, and a task thread lost to a panic that
//! escapes the per-record containment is reaped and its shards
//! re-homed by [`ExecutorGroup::supervise`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_core::hash::key_to_shard;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{BoxedOperator, ExecutorConfig, ExecutorGroup, FifoChecker, Record};
use elasticutor_state::StateHandle;

const NUM_SHARDS: u32 = 8;

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

fn keys_in(shard: u32) -> impl Iterator<Item = u64> {
    (0u64..).filter(move |k| key_to_shard(*k, NUM_SHARDS) == shard)
}

/// A key whose operator call always panics sends its shard over the
/// `quarantine_after` threshold; `supervise()` parks it, records to it
/// are dropped (and counted), every other shard keeps flowing, and
/// `release_quarantined` brings it back with its state intact.
#[test]
fn poison_shard_is_quarantined_and_released() {
    let poison_shard = 5u32;
    let mut sh5 = keys_in(poison_shard);
    let poison_key = sh5.next().unwrap();
    let healthy_sh5_key = sh5.next().unwrap();
    let fifo = Arc::new(FifoChecker::new());
    let op: BoxedOperator = {
        let fifo = Arc::clone(&fifo);
        Box::new(move |r: &Record, s: &StateHandle| {
            if r.key == Key(poison_key) {
                panic!("poison record");
            }
            fifo.observe(r.key, r.seq);
            s.update(r.key, |old| {
                let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
                Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
            });
            Vec::new()
        })
    };
    let group = ExecutorGroup::start(
        "poisoned",
        ExecutorConfig {
            num_shards: NUM_SHARDS,
            initial_tasks: 2,
            quarantine_after: Some(3),
            ..ExecutorConfig::default()
        },
        op,
        1,
    );
    let exec = group.primary();
    exec.state().put(
        ShardId(poison_shard),
        Key(1 << 34),
        Bytes::from_static(b"survives the park"),
    );

    // Three strikes cross the threshold.
    for seq in 1..=3u64 {
        exec.ingest(Record::new(Key(poison_key), Bytes::new()).with_seq(seq));
    }
    assert!(
        wait_until(Duration::from_secs(10), || {
            group.stats().operator_panics >= 3
        }),
        "poison panics not recorded"
    );
    let report = group.supervise();
    assert_eq!(report.quarantined, vec![ShardId(poison_shard)]);
    assert_eq!(report.respawned, 0);
    assert_eq!(report.quarantine_failures, 0);
    assert_eq!(group.quarantined_shards(), vec![ShardId(poison_shard)]);

    // Records to the parked shard are black-holed, not buffered.
    for seq in 4..=5u64 {
        exec.ingest(Record::new(Key(poison_key), Bytes::new()).with_seq(seq));
    }
    assert!(
        wait_until(Duration::from_secs(10), || exec.quarantine_dropped() == 2),
        "quarantined records not counted as dropped"
    );

    // Neighbor shards are untouched by the quarantine.
    let healthy_key = keys_in(0).next().unwrap();
    for seq in 1..=5u64 {
        exec.ingest(Record::new(Key(healthy_key), Bytes::new()).with_seq(seq));
    }
    assert!(wait_until(Duration::from_secs(10), || {
        exec.state()
            .get(ShardId(0), Key(healthy_key))
            .map(|v| u64::from_le_bytes(v.as_ref().try_into().unwrap()))
            == Some(5)
    }));

    // Release: the shard returns with its parked state and serves
    // non-poison keys again.
    group
        .release_quarantined(ShardId(poison_shard))
        .expect("release");
    assert!(group.quarantined_shards().is_empty());
    assert_eq!(
        exec.state().get(ShardId(poison_shard), Key(1 << 34)),
        Some(Bytes::from_static(b"survives the park"))
    );
    for seq in 1..=3u64 {
        exec.ingest(Record::new(Key(healthy_sh5_key), Bytes::new()).with_seq(seq));
    }
    assert!(wait_until(Duration::from_secs(10), || {
        exec.state()
            .get(ShardId(poison_shard), Key(healthy_sh5_key))
            .map(|v| u64::from_le_bytes(v.as_ref().try_into().unwrap()))
            == Some(3)
    }));
    assert!(fifo.is_clean());
}

/// A panic payload whose destructor panics again escapes the
/// per-record containment and takes the whole task thread down —
/// exactly the class of failure `respawn_dead_tasks` exists for. The
/// supervisor reaps the corpse, re-homes its shards onto the survivor,
/// and every shard keeps serving.
#[test]
fn dead_task_is_reaped_and_shards_rehomed() {
    static FIRED: AtomicBool = AtomicBool::new(false);
    struct Bomb;
    impl Drop for Bomb {
        fn drop(&mut self) {
            if !FIRED.swap(true, Ordering::SeqCst) {
                panic!("detonating in the panic-payload destructor");
            }
        }
    }
    let bomb_key = keys_in(3).next().unwrap();
    let op: BoxedOperator = Box::new(move |r: &Record, s: &StateHandle| {
        if r.key == Key(bomb_key) {
            std::panic::panic_any(Bomb);
        }
        s.update(r.key, |old| {
            let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        Vec::new()
    });
    let group = ExecutorGroup::start(
        "bombed",
        ExecutorConfig {
            num_shards: NUM_SHARDS,
            initial_tasks: 2,
            ..ExecutorConfig::default()
        },
        op,
        1,
    );
    assert_eq!(group.total_tasks(), 2);
    group
        .primary()
        .ingest(Record::new(Key(bomb_key), Bytes::new()).with_seq(1));

    // The supervisor notices the dead thread and reaps it.
    let mut respawned = 0usize;
    assert!(
        wait_until(Duration::from_secs(10), || {
            respawned += group.supervise().respawned;
            respawned >= 1
        }),
        "dead task never reaped"
    );
    assert_eq!(respawned, 1);
    // One of two tasks died; the survivor adopted the orphans.
    assert_eq!(group.total_tasks(), 1);

    // Every shard — including the dead task's re-homed ones — serves.
    let exec = group.primary();
    for shard in 0..NUM_SHARDS {
        // Fresh keys: anything queued at the dead task is crash-lost by
        // design, so the conservation gate starts after the recovery.
        let key = keys_in(shard).nth(2).unwrap();
        for seq in 1..=4u64 {
            exec.ingest(Record::new(Key(key), Bytes::new()).with_seq(seq));
        }
        assert!(
            wait_until(Duration::from_secs(10), || {
                exec.state()
                    .get(ShardId(shard), Key(key))
                    .map(|v| u64::from_le_bytes(v.as_ref().try_into().unwrap()))
                    == Some(4)
            }),
            "sh{shard} not serving after respawn"
        );
    }
    // A second supervision pass finds nothing further to do.
    let report = group.supervise();
    assert_eq!(report.respawned, 0);
    assert!(report.quarantined.is_empty());
}
