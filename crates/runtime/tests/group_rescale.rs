//! Live executor-group rescaling: instance counts change under load
//! with per-key FIFO and exact record conservation intact.
//!
//! These tests drive the in-process §3.3 scale handshake three ways:
//! through the DAG (the acceptance path: a hot operator grows 1 → 2
//! instances while records flow), directly against an [`ExecutorGroup`]
//! with *concurrent* submitter threads racing the rescales, and with a
//! scale-in whose victim still holds in-flight ring items.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use elasticutor_core::hash::key_to_shard;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{ExecutorConfig, ExecutorGroup, FifoChecker, LiveDag, Operator, Record};
use elasticutor_state::StateHandle;

/// Stateful order-checking operator: verifies per-key seq order at the
/// point of processing and counts per key in shard state, so both FIFO
/// and conservation can be asserted after arbitrary shard migration.
struct CountingChecker {
    order: Arc<FifoChecker>,
    processed: Arc<AtomicU64>,
}

impl Operator for CountingChecker {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        self.order.observe(record.key, record.seq);
        state.update(record.key, |old| {
            let n = old.map_or(0u64, |v| {
                u64::from_le_bytes(v.as_ref().try_into().expect("8 bytes"))
            });
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        self.processed.fetch_add(1, Ordering::Relaxed);
        vec![record.clone()]
    }
}

/// The acceptance path: a hot operator scales 1 → 2 → 3 instances and
/// back down **through the DAG** while a keyed stream flows; nothing is
/// lost, duplicated, or reordered, and the consistent-hash map actually
/// moved shards (with their state) to the newcomers.
#[test]
fn dag_scale_out_under_live_load_keeps_fifo_and_conservation() {
    const KEYS: u64 = 200;
    const TOTAL: u64 = 60_000;
    let order = Arc::new(FifoChecker::new());
    let processed = Arc::new(AtomicU64::new(0));

    let mut b = LiveDag::builder();
    let hot = b.source(
        "hot",
        ExecutorConfig {
            num_shards: 64,
            initial_tasks: 2,
            ..ExecutorConfig::default()
        },
        CountingChecker {
            order: Arc::clone(&order),
            processed: Arc::clone(&processed),
        },
    );
    b.parallelism(hot, 1); // explicit: independent of ELASTICUTOR_TEST_PARALLELISM
    let dag = b.build().expect("single-operator topology");

    let mut seqs = vec![0u64; KEYS as usize];
    for i in 0..TOTAL {
        let key = (i * 17) % KEYS;
        seqs[key as usize] += 1;
        dag.port(hot)
            .ingest(Record::new(Key(key), Bytes::new()).with_seq(seqs[key as usize]));
        match i {
            10_000 => {
                let id = dag.scale_out(hot).expect("grow to 2 instances");
                assert_eq!(id, 1);
            }
            25_000 => {
                dag.scale_out(hot).expect("grow to 3 instances");
            }
            40_000 => {
                dag.scale_in(hot).expect("shrink back to 2");
            }
            _ => {}
        }
    }
    dag.drain();

    assert_eq!(
        order.violations(),
        Vec::<(u64, u64, u64)>::new(),
        "per-key FIFO violated across live rescales"
    );
    assert_eq!(
        processed.load(Ordering::Relaxed),
        TOTAL,
        "lost or duplicated records"
    );

    let group = dag.group(hot);
    assert_eq!(group.num_live(), 2);
    let log = group.rescale_log();
    assert_eq!(log.len(), 3);
    assert!(
        log.iter().all(|e| e.shards_moved > 0),
        "rescales must move shards"
    );
    // Scale-out moves roughly z/(n+1) shards to the newcomer — never
    // the whole space (that is the point of consistent hashing).
    assert!(
        log[0].shards_moved < 64,
        "first scale-out moved every shard"
    );

    // Conservation in state: per-key counters across every instance's
    // store sum to the total despite the migrations.
    let mut sum = 0u64;
    for id in 0..group.num_slots() as u32 {
        let store = Arc::clone(group.instance(id).state());
        for shard in store.shards() {
            for key in 0..KEYS {
                if let Some(v) = store.get(shard, Key(key)) {
                    sum += u64::from_le_bytes(v.as_ref().try_into().expect("8 bytes"));
                }
            }
        }
    }
    assert_eq!(sum, TOTAL, "state lost or duplicated by migration");
    dag.shutdown();
}

/// Concurrent submitters race live rescales against a bare group: four
/// threads own disjoint key ranges and route records themselves (read
/// router → submit to that instance), exactly like external producers
/// would, while the main thread grows and shrinks the group. Per-key
/// FIFO and exact conservation must survive every stale-router submit
/// (those go through the migrated shard's forward path).
#[test]
fn concurrent_submitters_survive_rescales_with_fifo_and_conservation() {
    const SHARDS: u32 = 32;
    const SUBMITTERS: u64 = 4;
    const PER_THREAD: u64 = 15_000;
    let order = Arc::new(FifoChecker::new());
    let processed = Arc::new(AtomicU64::new(0));
    let group = Arc::new(ExecutorGroup::start(
        "racy",
        ExecutorConfig {
            num_shards: SHARDS,
            initial_tasks: 1,
            // Multi-producer path: four submitters plus migration
            // replays may hit one instance concurrently.
            single_producer: false,
            ..ExecutorConfig::default()
        },
        Box::new(CountingChecker {
            order: Arc::clone(&order),
            processed: Arc::clone(&processed),
        }),
        1,
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let submitters: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let group = Arc::clone(&group);
            std::thread::spawn(move || {
                for seq in 1..=PER_THREAD {
                    // Keys are disjoint per thread, so per-key order is
                    // each thread's submission order.
                    let key = t * 100 + (seq % 25);
                    let shard = ShardId(key_to_shard(key, SHARDS));
                    let record = Record::new(Key(key), Bytes::new()).with_seq(seq / 25 + 1);
                    let owner = group.instance_of(shard);
                    group.instance(owner).ingest_routed(shard, record);
                }
            })
        })
        .collect();

    // Rescale continuously while the submitters hammer the group.
    let rescaler = {
        let group = Arc::clone(&group);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut grew = 0u32;
            while !stop.load(Ordering::Acquire) {
                if group.num_live() < 3 {
                    group.scale_out().expect("scale out");
                    grew += 1;
                } else {
                    group.scale_in().expect("scale in");
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            grew
        })
    };

    for s in submitters {
        s.join().expect("submitter finishes");
    }
    stop.store(true, Ordering::Release);
    let grew = rescaler.join().expect("rescaler finishes");
    assert!(
        grew >= 1,
        "at least one scale-out must have raced the stream"
    );

    let total = SUBMITTERS * PER_THREAD;
    // Drain: every instance's pending work completes (forwarded
    // stragglers included).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while processed.load(Ordering::Relaxed) < total {
        assert!(
            std::time::Instant::now() < deadline,
            "drain stalled at {}/{total}",
            processed.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Nothing duplicated either: the counter settles exactly at total.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(processed.load(Ordering::Relaxed), total);
    assert_eq!(group.processed_count(), total);
    assert_eq!(
        order.violations(),
        Vec::<(u64, u64, u64)>::new(),
        "per-key FIFO violated under concurrent submit + rescale"
    );
}

/// Scale-in while the victim instance still holds queued ring items: a
/// slow operator lets a burst pile up in the rings, then the victim is
/// retired mid-backlog. Every queued record must drain through the
/// migration (begin_migration flushes the shard's in-flight items
/// before the snapshot) — none lost, none processed twice.
#[test]
fn scale_in_drains_in_flight_ring_items() {
    const SHARDS: u32 = 16;
    const TOTAL: u64 = 4_000;
    let order = Arc::new(FifoChecker::new());
    let processed = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&processed);
    let checker = Arc::clone(&order);
    let group = Arc::new(ExecutorGroup::start(
        "slow",
        ExecutorConfig {
            num_shards: SHARDS,
            initial_tasks: 1,
            single_producer: true,
            ring_capacity: Some(4096),
            ..ExecutorConfig::default()
        },
        Box::new(move |r: &Record, _s: &StateHandle| {
            checker.observe(r.key, r.seq);
            counter.fetch_add(1, Ordering::Relaxed);
            // Slow enough that the burst below outruns processing.
            std::thread::sleep(Duration::from_micros(30));
            Vec::new()
        }),
        2,
    ));

    let mut seqs = vec![0u64; 40];
    for i in 0..TOTAL {
        let key = i % 40;
        seqs[key as usize] += 1;
        let shard = ShardId(key_to_shard(key, SHARDS));
        let record = Record::new(Key(key), Bytes::new()).with_seq(seqs[key as usize]);
        let owner = group.instance_of(shard);
        group.instance(owner).ingest_routed(shard, record);
        if i == TOTAL / 2 {
            // Mid-burst: the victim's rings are loaded. Retiring it
            // must flush every queued item through the handshake.
            group.scale_in().expect("retire instance mid-backlog");
            assert_eq!(group.num_live(), 1);
        }
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while processed.load(Ordering::Relaxed) < TOTAL {
        assert!(
            std::time::Instant::now() < deadline,
            "drain stalled at {}/{TOTAL}",
            processed.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        processed.load(Ordering::Relaxed),
        TOTAL,
        "lost or duplicated"
    );
    assert_eq!(
        order.violations(),
        Vec::<(u64, u64, u64)>::new(),
        "per-key FIFO violated by the mid-backlog scale-in"
    );
    let log = group.rescale_log();
    assert_eq!(log.len(), 1);
    assert!(!log[0].grew);
    assert!(log[0].shards_moved > 0);
}
