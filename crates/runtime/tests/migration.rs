//! Cross-endpoint shard migration over real TCP, in one process.
//!
//! Two [`ElasticExecutor`]s connected by a [`MigrationEndpoint`] link
//! over localhost trade shards under live load. Running both sides in
//! one process lets the tests assert state conservation and per-key
//! FIFO directly against both stores; the two-process version of the
//! same protocol is the `migrate` demo in `elasticutor-bench`.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_core::wire;
use elasticutor_runtime::migrate::{MSG_ACCEPT, MSG_OFFER, MSG_STATE};
use elasticutor_runtime::Ingest;
use elasticutor_runtime::{
    ElasticExecutor, ExecutorConfig, FifoChecker, MigrateError, MigrationEndpoint, Operator, Record,
};
use elasticutor_state::StateHandle;

const NUM_SHARDS: u32 = 8;

fn config() -> ExecutorConfig {
    ExecutorConfig {
        num_shards: NUM_SHARDS,
        initial_tasks: 2,
        ..ExecutorConfig::default()
    }
}

/// A counting operator: per-key occurrence count in state, every
/// record checked against the shared FIFO watchdog.
fn counting_op(fifo: Arc<FifoChecker>) -> impl Operator {
    move |r: &Record, s: &StateHandle| {
        fifo.observe(r.key, r.seq);
        s.update(r.key, |old| {
            let n = old.map_or(0u64, |v| u64::from_le_bytes(v.as_ref().try_into().unwrap()));
            Some(Bytes::copy_from_slice(&(n + 1).to_le_bytes()))
        });
        Vec::new()
    }
}

fn read_count(exec: &ElasticExecutor<impl Operator>, shard: ShardId, key: Key) -> Option<u64> {
    exec.state()
        .get(shard, key)
        .map(|v| u64::from_le_bytes(v.as_ref().try_into().unwrap()))
}

/// Connects two executors with a migration link over localhost.
fn link<A: Operator, B: Operator>(
    a: &Arc<ElasticExecutor<A>>,
    b: &Arc<ElasticExecutor<B>>,
) -> (MigrationEndpoint<A>, MigrationEndpoint<B>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let a = Arc::clone(a);
    let accept =
        std::thread::spawn(move || MigrationEndpoint::accept(a, &listener).expect("accept"));
    let ep_b = MigrationEndpoint::connect(Arc::clone(b), addr).expect("connect");
    let ep_a = accept.join().expect("accept thread");
    (ep_a, ep_b)
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    cond()
}

/// A full both-direction trade under live load: shard 3 moves A→B while
/// records of its keys keep arriving at A (forwarded after the flip),
/// then moves back B→A. Per-key FIFO and exact per-key counts must hold
/// across both hops.
#[test]
fn trade_shards_between_endpoints_under_live_load() {
    let fifo = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
    let (ep_a, ep_b) = link(&exec_a, &exec_b);
    // A owns every shard initially; B forwards everything to A.
    ep_b.delegate_shards(&(0..NUM_SHARDS).map(ShardId).collect::<Vec<_>>())
        .expect("delegate");

    // Load: one source thread submitting to A, every key, seq per key.
    let keys: Vec<Key> = (0..200u64).map(Key).collect();
    let rounds = 300u64;
    let source = {
        let exec_a = Arc::clone(&exec_a);
        let keys = keys.clone();
        std::thread::spawn(move || {
            for round in 1..=rounds {
                for &key in &keys {
                    exec_a.ingest(Record::new(key, Bytes::new()).with_seq(round));
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        })
    };

    // Trade shard 3 away and back while the source runs.
    std::thread::sleep(Duration::from_millis(5));
    let report = ep_a.migrate_out(ShardId(3)).expect("A→B migration");
    assert_eq!(report.shard, ShardId(3));
    assert!(
        exec_a.remote_shards().contains(&ShardId(3)),
        "A routes shard 3 remotely after migrating it out"
    );
    assert!(!exec_a.state().hosts(ShardId(3)), "state left A");
    std::thread::sleep(Duration::from_millis(10));
    let back = ep_b.migrate_out(ShardId(3)).expect("B→A migration");
    assert!(back.elapsed_ns > 0);
    assert!(
        exec_b.remote_shards().contains(&ShardId(3)),
        "B routes shard 3 remotely after returning it"
    );

    source.join().expect("source exits");

    // Every record lands exactly once, wherever its shard ended up.
    let total = rounds * keys.len() as u64;
    assert!(
        wait_until(Duration::from_secs(20), || {
            exec_a.processed_count() + exec_b.processed_count() >= total
        }),
        "all records processed somewhere (a={}, b={}, want {total})",
        exec_a.processed_count(),
        exec_b.processed_count()
    );
    assert!(
        fifo.is_clean(),
        "per-key FIFO held across both migrations: {:?}",
        fifo.violations()
    );
    // Exact conservation: each key's count is `rounds`, in exactly one
    // store.
    for &key in &keys {
        let shard = ShardId(elasticutor_core::hash::key_to_shard(
            key.value(),
            NUM_SHARDS,
        ));
        let in_a = read_count(&exec_a, shard, key);
        let in_b = read_count(&exec_b, shard, key);
        match (in_a, in_b) {
            (Some(n), None) | (None, Some(n)) => {
                assert_eq!(n, rounds, "key {key:?} lost or duplicated records")
            }
            other => panic!("key {key:?} state must live in exactly one store, got {other:?}"),
        }
    }
    // Shard 3 ended up back at A.
    for &key in keys
        .iter()
        .filter(|k| elasticutor_core::hash::key_to_shard(k.value(), NUM_SHARDS) == 3)
    {
        assert!(read_count(&exec_a, ShardId(3), key).is_some());
    }
    ep_a.close();
    ep_b.close();
}

/// The bugfix regression: a peer dying mid-`STATE` must surface a typed
/// error, restore the shard (state and routing) locally, and keep the
/// executor processing — never silently drop the shard.
#[test]
fn peer_disconnect_mid_state_aborts_and_restores() {
    let fifo = Arc::new(FifoChecker::new());
    let exec = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));

    // Preload shard 2 with enough state for several STATE chunks.
    let shard = ShardId(2);
    let keys: Vec<Key> = (0..10_000u64)
        .map(Key)
        .filter(|k| elasticutor_core::hash::key_to_shard(k.value(), NUM_SHARDS) == shard.0)
        .take(400)
        .collect();
    for &key in &keys {
        exec.state().put(shard, key, Bytes::from(vec![7u8; 4096]));
    }
    let bytes_before = exec.state().shard_bytes(shard);
    assert!(bytes_before > 1024 * 1024, "state spans multiple chunks");

    // A fake peer that plays the protocol up to the first STATE frame,
    // then vanishes.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake_peer = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let (msg, payload) = wire::read_frame(&mut stream).expect("offer");
        assert_eq!(msg, MSG_OFFER);
        let mut reply = Vec::new();
        reply.extend_from_slice(&payload[..4]); // echo the shard id
        wire::write_frame(&mut stream, MSG_ACCEPT, &reply).expect("accept reply");
        let (msg, _) = wire::read_frame(&mut stream).expect("first state chunk");
        assert_eq!(msg, MSG_STATE);
        // Drop the stream: disconnect mid-STATE.
    });
    let ep = MigrationEndpoint::connect(Arc::clone(&exec), addr).expect("connect");

    let err = ep.migrate_out(shard).expect_err("peer died mid-protocol");
    assert!(
        matches!(err, MigrateError::PeerDisconnected | MigrateError::Timeout),
        "typed transport error, got: {err}"
    );
    fake_peer.join().expect("fake peer");

    // The shard is fully restored: hosted, byte-exact, and routable.
    assert!(exec.state().hosts(shard), "shard restored locally");
    assert_eq!(exec.state().shard_bytes(shard), bytes_before);
    assert!(exec.remote_shards().is_empty());
    let processed_before = exec.processed_count();
    for (i, &key) in keys.iter().take(10).enumerate() {
        exec.ingest(Record::new(key, Bytes::new()).with_seq(i as u64 + 1));
    }
    exec.wait_for_processed(processed_before + 10);
    assert!(fifo.is_clean());
    // And a later migration to a healthy peer still works.
    let fifo_b = Arc::new(FifoChecker::new());
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo_b)));
    let (ep_a2, ep_b2) = link(&exec, &exec_b);
    let report = ep_a2.migrate_out(shard).expect("healthy migration");
    assert_eq!(report.value_bytes, exec_b.state().shard_bytes(shard));
    assert!(report.wire_bytes > report.value_bytes);
    ep_a2.close();
    ep_b2.close();
}

/// A receiver refuses an offer for a shard it has live state for — the
/// two-owners-never invariant — and the sender restores cleanly.
#[test]
fn offer_rejected_when_receiver_has_local_state() {
    let fifo = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo)));
    let shard = ShardId(5);
    exec_a
        .state()
        .put(shard, Key(1), Bytes::from_static(b"ours"));
    exec_b
        .state()
        .put(shard, Key(2), Bytes::from_static(b"theirs"));
    let (ep_a, ep_b) = link(&exec_a, &exec_b);

    let err = ep_a.migrate_out(shard).expect_err("conflicting state");
    assert!(
        matches!(
            &err,
            MigrateError::Rejected {
                reason,
                transient: false
            } if reason.contains("live local state")
        ),
        "got: {err}"
    );
    // Both copies intact, sender's routing restored.
    assert_eq!(
        exec_a.state().get(shard, Key(1)),
        Some(Bytes::from_static(b"ours"))
    );
    assert_eq!(
        exec_b.state().get(shard, Key(2)),
        Some(Bytes::from_static(b"theirs"))
    );
    assert!(exec_a.remote_shards().is_empty());
    ep_a.close();
    ep_b.close();
}

/// Concurrent opposite-direction migrations on one link (each side both
/// sends and receives) complete without deadlock and conserve state.
#[test]
fn simultaneous_bidirectional_migrations() {
    let fifo = Arc::new(FifoChecker::new());
    let exec_a = Arc::new(ElasticExecutor::start(config(), counting_op(fifo.clone())));
    let exec_b = Arc::new(ElasticExecutor::start(config(), counting_op(fifo)));
    let (ep_a, ep_b) = link(&exec_a, &exec_b);
    // Split ownership: A keeps 0..4, B gets 4..8.
    let b_shards: Vec<ShardId> = (4..NUM_SHARDS).map(ShardId).collect();
    let a_shards: Vec<ShardId> = (0..4).map(ShardId).collect();
    ep_a.delegate_shards(&b_shards).expect("delegate at A");
    ep_b.delegate_shards(&a_shards).expect("delegate at B");
    exec_a
        .state()
        .put(ShardId(1), Key(100), Bytes::from(vec![1u8; 64]));
    exec_b
        .state()
        .put(ShardId(6), Key(200), Bytes::from(vec![2u8; 64]));

    let ep_a = Arc::new(ep_a);
    let ep_b = Arc::new(ep_b);
    let t_a = {
        let ep_a = Arc::clone(&ep_a);
        std::thread::spawn(move || ep_a.migrate_out(ShardId(1)).expect("A→B"))
    };
    let t_b = {
        let ep_b = Arc::clone(&ep_b);
        std::thread::spawn(move || ep_b.migrate_out(ShardId(6)).expect("B→A"))
    };
    t_a.join().expect("A thread");
    t_b.join().expect("B thread");
    assert_eq!(
        exec_b.state().get(ShardId(1), Key(100)),
        Some(Bytes::from(vec![1u8; 64]))
    );
    assert_eq!(
        exec_a.state().get(ShardId(6), Key(200)),
        Some(Bytes::from(vec![2u8; 64]))
    );
    assert!(!exec_a.state().hosts(ShardId(1)));
    assert!(!exec_b.state().hosts(ShardId(6)));
}
