//! The live DAG: elastic executors wired into an arbitrary acyclic
//! operator graph.
//!
//! [`LiveDag`] generalizes the chain-shaped
//! [`Pipeline`](crate::pipeline::Pipeline) to the full dataflow graphs
//! that [`elasticutor_core::topology`] describes: every operator of a
//! validated [`Topology`] gets its own [`ElasticExecutor`], every
//! [`Edge`] gets its own bounded channel with a per-edge backpressure
//! budget, fan-out edges replicate records by their [`Grouping`], and
//! fan-in operators merge multiple upstream edges through an
//! order-preserving pump. The [`Pipeline`](crate::pipeline::Pipeline)
//! API survives as a thin wrapper that builds a chain-shaped topology.
//!
//! # Wiring
//!
//! Three thread roles move records between executors:
//!
//! * **Ingress pumps** feed each *source* operator from its bounded
//!   ingress channel (a [`SourcePort`]'s blocking ingest stalls when it
//!   fills — the DAG-wide backpressure root — and its nonblocking
//!   ingest hands the overflow back to the caller).
//! * **Fan-out forwarders** exist only for operators with **two or
//!   more** outbound edges: one thread drains the operator's output
//!   channel, wraps each batch in an `Arc`, and sends one **pointer**
//!   per edge — record bodies are never copied at the fan-out point.
//!   The consumer's pump applies the edge's grouping (key-hash into the
//!   consumer's shard space, round-robin shuffle, or per-shard
//!   broadcast) when it unwraps the shared batch, cloning records only
//!   there — and a record's payload is itself `Arc`-shared
//!   ([`bytes::Bytes`]), so even those clones are reference bumps:
//!   broadcasting a batch to *n* shards over *e* edges costs `e`
//!   channel sends and `n` Arc bumps per record, not `e × n × payload`
//!   bytes. The last pump to drop a shared batch takes ownership and
//!   skips the clone entirely. An operator with exactly **one**
//!   outbound edge skips the forwarder: its output channel *is* the
//!   edge channel — a chain therefore has exactly the same thread and
//!   buffering structure as the original `Pipeline`.
//! * **Fan-in pumps**, one per consuming operator, round-robin over the
//!   operator's inbound edges and feed its executor, holding records
//!   back while the executor is at its in-flight capacity.
//!
//! # Backpressure
//!
//! Every hop is bounded: the ingress channels, every edge channel, and
//! every non-sink operator's output channel hold at most their budget of
//! batches, and each pump admits at most `capacity` in-flight records
//! into its executor. A slow operator therefore stalls its pump, which
//! stops reading its edge channels, which fills them and blocks the
//! upstream forwarder (or the upstream executor's task threads
//! directly), hop by hop back to the [`SourcePort`]s. On a fan-out, a
//! stalled *branch* stalls the forwarder and with it — deliberately —
//! every sibling branch: records are never dropped to keep a fast
//! branch fed, so conservation holds and the stall reaches the source.
//!
//! # Ordering
//!
//! Per-key FIFO holds **within every edge**: an executor's outputs are
//! emitted in processing order, the single forwarder thread replicates
//! batches in channel order, each edge channel is FIFO, and the single
//! pump thread of the consumer preserves the order it took records in —
//! per edge — while the executor's routing serializes each shard through
//! one task at a time. Across *different* inbound edges of a fan-in
//! operator no relative order is promised (the two upstreams are
//! concurrent streams); a fan-in operator observes an arbitrary but
//! per-edge-FIFO interleaving, exactly the guarantee the paper's
//! multi-input bolts get from Storm-style shuffling layers.
//!
//! # Elasticity
//!
//! Every operator is a live [`ElasticExecutor`]: its task threads can be
//! grown, shrunk, and rebalanced while records flow, manually through
//! [`LiveDag::executor`] or automatically by attaching a
//! [`LiveController`] — which samples
//! λ/μ *per operator* and runs the paper's §4 scheduler over the whole
//! graph, so a load spike on one branch of a diamond pulls cores from
//! the idle branch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use elasticutor_core::error::{Error, Result};
use elasticutor_core::hash::key_to_shard;
use elasticutor_core::ids::{OperatorId, ShardId};
use elasticutor_core::topology::{Edge, EdgeId, Grouping, OperatorKind, Topology, TopologyBuilder};

use parking_lot::RwLock;

use crate::controller::{
    ControllerConfig, ControllerEvent, ControllerHandle, LambdaProbe, LiveController,
};
use crate::executor::{ElasticExecutor, ExecutorConfig, ExecutorStats};
use crate::group::ExecutorGroup;
use crate::ingest::{spawn_sink, Ingest, Sink, SinkHandle};
use crate::pipeline::BoxedOperator;
use crate::record::{Operator, Record, RecordBatch};

/// A batch shared across fan-out edges by reference: the forwarder
/// sends one `Arc` clone per edge, and each consuming pump applies its
/// edge's grouping while reading through the pointer (taking ownership
/// if it is the last holder). Replication cost is O(edges) Arc bumps
/// per batch, independent of payload bytes.
type SharedBatch = Arc<RecordBatch>;

/// One operator awaiting construction.
struct OpSpec {
    name: String,
    kind: OperatorKind,
    config: ExecutorConfig,
    operator: BoxedOperator,
    /// `y` — executor instances the operator's group starts with.
    parallelism: u32,
}

/// Builder for [`LiveDag`]. Collects operators and grouped edges (the
/// same shape [`TopologyBuilder`] validates), then starts the graph.
///
/// Unlike the chain-only `PipelineBuilder`, operators are referred to by
/// the [`OperatorId`] returned when they are added, so edges can express
/// any acyclic shape:
///
/// ```
/// use elasticutor_runtime::dag::LiveDag;
/// use elasticutor_runtime::{ExecutorConfig, Record};
/// use elasticutor_state::StateHandle;
/// use bytes::Bytes;
///
/// let pass = |r: &Record, _s: &StateHandle| vec![r.clone()];
/// let mut b = LiveDag::builder();
/// let source = b.source("source", ExecutorConfig::default(), pass);
/// let left = b.operator("left", ExecutorConfig::default(), pass);
/// let right = b.operator("right", ExecutorConfig::default(), pass);
/// let merge = b.operator("merge", ExecutorConfig::default(), pass);
/// b.key_edge(source, left)
///     .key_edge(source, right)
///     .key_edge(left, merge)
///     .key_edge(right, merge);
/// let dag = b.build().expect("a diamond is acyclic");
///
/// use elasticutor_runtime::ingest::Ingest;
/// let port = dag.port(source);
/// for i in 0..10u64 {
///     port.ingest(Record::new(i.into(), Bytes::new()));
/// }
/// dag.drain();
/// // Each record went down both branches into the merge.
/// let merged: usize = dag.outputs(merge).unwrap().try_iter().flatten().count();
/// assert_eq!(merged, 20);
/// dag.shutdown();
/// ```
pub struct LiveDagBuilder {
    specs: Vec<OpSpec>,
    edges: Vec<(OperatorId, OperatorId, Grouping)>,
    /// `(from, to)` → batch-slot budget override for that edge's
    /// channel.
    edge_caps: Vec<(OperatorId, OperatorId, usize)>,
    capacity: usize,
    max_batch: usize,
    controller: Option<ControllerConfig>,
    /// Default instance count for operators without an explicit
    /// [`Self::parallelism`] call — 1, unless the environment variable
    /// `ELASTICUTOR_TEST_PARALLELISM` overrides it (the switch CI uses
    /// to run the whole workspace suite with multi-instance groups, so
    /// y > 1 paths cannot rot on the default single-instance tests).
    default_parallelism: u32,
}

impl Default for LiveDagBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveDagBuilder {
    /// Starts an empty builder with the default per-edge budget.
    pub fn new() -> Self {
        Self {
            specs: Vec::new(),
            edges: Vec::new(),
            edge_caps: Vec::new(),
            capacity: 4096,
            max_batch: 64,
            controller: None,
            default_parallelism: std::env::var("ELASTICUTOR_TEST_PARALLELISM")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&y| y >= 1)
                .unwrap_or(1),
        }
    }

    /// Adds a source operator — an entry point records are
    /// fed through via [`LiveDag::port`]. Sources run their operator
    /// logic on
    /// the ingress stream like any other executor; they just have no
    /// inbound edges. Returns the id used to wire edges.
    pub fn source(
        &mut self,
        name: impl Into<String>,
        config: ExecutorConfig,
        operator: impl Operator,
    ) -> OperatorId {
        self.push(
            name.into(),
            OperatorKind::Source,
            config,
            Box::new(operator),
        )
    }

    /// Adds a transform operator (at least one inbound edge required by
    /// validation). Returns the id used to wire edges.
    pub fn operator(
        &mut self,
        name: impl Into<String>,
        config: ExecutorConfig,
        operator: impl Operator,
    ) -> OperatorId {
        self.push(
            name.into(),
            OperatorKind::Transform,
            config,
            Box::new(operator),
        )
    }

    fn push(
        &mut self,
        name: String,
        kind: OperatorKind,
        config: ExecutorConfig,
        operator: BoxedOperator,
    ) -> OperatorId {
        let id = OperatorId::from_index(self.specs.len());
        self.specs.push(OpSpec {
            name,
            kind,
            config,
            operator,
            parallelism: self.default_parallelism,
        });
        id
    }

    /// Sets `y` — the number of executor instances `op`'s group starts
    /// with. The operator's shard space is split across the instances
    /// by a consistent-hash map, and the group can be resized live
    /// through [`LiveDag::scale_out`]/[`LiveDag::scale_in`] regardless
    /// of the starting count.
    ///
    /// # Panics
    ///
    /// Panics on an unknown operator id or `y == 0`.
    pub fn parallelism(&mut self, op: OperatorId, y: u32) -> &mut Self {
        assert!(y >= 1, "parallelism must be at least 1");
        self.specs[op.index()].parallelism = y;
        self
    }

    /// Adds a key-grouped edge: every record of a key goes to the key's
    /// shard of `to` (the grouping stateful consumers need; preserves
    /// per-key FIFO across the hop).
    pub fn key_edge(&mut self, from: OperatorId, to: OperatorId) -> &mut Self {
        self.edges.push((from, to, Grouping::Key));
        self
    }

    /// Adds a shuffle-grouped edge: records are spread round-robin over
    /// `to`'s shards, ignoring keys. Only meaningful into stateless
    /// consumers — and rejected by validation when mixed with a key
    /// edge into the same operator.
    pub fn shuffle_edge(&mut self, from: OperatorId, to: OperatorId) -> &mut Self {
        self.edges.push((from, to, Grouping::Shuffle));
        self
    }

    /// Adds a broadcast edge: every record is replicated to **every**
    /// shard of `to` (volume multiplies by `to`'s shard count — use for
    /// low-rate control or dimension streams).
    pub fn broadcast_edge(&mut self, from: OperatorId, to: OperatorId) -> &mut Self {
        self.edges.push((from, to, Grouping::Broadcast));
        self
    }

    /// Sets the default backpressure budget, in records: every operator
    /// admits at most this many submitted-but-unprocessed records, and
    /// every bounded channel (ingress, edge, non-sink outputs) holds at
    /// most this many batch slots. See `PipelineBuilder::capacity`
    /// for the exact per-hop buffering arithmetic — it is unchanged.
    pub fn capacity(&mut self, records: usize) -> &mut Self {
        self.capacity = records.max(1);
        self
    }

    /// Overrides the budget of the single edge `from → to`, leaving
    /// every other edge at the default. Like [`Self::capacity`], the
    /// number counts **batch slots** in the edge's channel (each slot
    /// holding one emitted batch — up to [`Self::max_batch`] input
    /// records times the producer's output amplification; broadcast
    /// replication happens at the consumer and does not widen the
    /// slots), so the records buffered on the edge are bounded by
    /// `slots × max_batch × fanout`. Takes effect at [`Self::build`];
    /// unknown edges are reported there as [`Error::InvalidTopology`].
    pub fn edge_capacity(&mut self, from: OperatorId, to: OperatorId, slots: usize) -> &mut Self {
        self.edge_caps.push((from, to, slots.max(1)));
        self
    }

    /// Sets the batch amortization window (the per-wakeup coalescing cap
    /// of every pump and the chunk size of ingress and broadcast
    /// replication); 1 disables pump-side batching.
    pub fn max_batch(&mut self, max_batch: usize) -> &mut Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Attaches a [`LiveController`] that samples λ/μ per operator and
    /// reallocates task threads across the whole graph while it runs.
    pub fn controller(&mut self, config: ControllerConfig) -> &mut Self {
        self.controller = Some(config);
        self
    }

    /// Validates the topology (acyclic, legal groupings, no duplicate
    /// edges, …) and starts every executor, forwarder, and pump thread.
    pub fn build(self) -> Result<LiveDag> {
        // 1. The core topology is the single source of truth for shape:
        //    one executor *group* per operator (y instances over one
        //    shard space), shard spaces taken from the executor configs
        //    so groupings and routing tables agree by construction.
        let mut tb = TopologyBuilder::new();
        for spec in &self.specs {
            match spec.kind {
                OperatorKind::Source => {
                    tb.source_sharded(spec.name.clone(), spec.parallelism, spec.config.num_shards)
                }
                OperatorKind::Transform => {
                    tb.transform(spec.name.clone(), spec.parallelism, spec.config.num_shards)
                }
            };
        }
        for &(from, to, grouping) in &self.edges {
            match grouping {
                Grouping::Key => tb.key_edge(from, to),
                Grouping::Shuffle => tb.shuffle_edge(from, to),
                Grouping::Broadcast => tb.broadcast_edge(from, to),
            };
        }
        let topology = tb.build()?;
        let n = topology.operators().len();
        let num_edges = topology.edges().len();

        let edge_budget = |edge: &Edge| -> usize {
            self.edge_caps
                .iter()
                .rev()
                .find(|(f, t, _)| *f == edge.from && *t == edge.to)
                .map_or(self.capacity, |&(_, _, cap)| cap)
        };
        for &(from, to, _) in &self.edge_caps {
            if topology.edge_id(from, to).is_none() {
                return Err(Error::InvalidTopology(format!(
                    "edge_capacity set for nonexistent edge {from} → {to}"
                )));
            }
        }

        // 2. Start the executor groups (y instances each, one shared
        //    output channel per group). Non-sink operators get a bounded
        //    output channel (unless the config explicitly chose one) so
        //    a stalled consumer blocks the emitting task threads: with a
        //    single outbound edge the output channel *is* that edge's
        //    channel and takes its budget; a fan-out's output channel
        //    uses the default budget and the per-edge budgets apply to
        //    the forwarder's edge channels instead.
        let mut groups = Vec::with_capacity(n);
        for (i, spec) in self.specs.into_iter().enumerate() {
            let id = OperatorId::from_index(i);
            let mut config = spec.config;
            // Every operator is fed by exactly one pump thread (which
            // routes to every instance of the group), so the per-task
            // SPSC ring plane is always safe here. Size each ring to
            // the pump's in-flight budget, floored by the batch window
            // and capped at 4096 entries: a ring the size of the budget
            // never hits its full edge, but past ~4096 slots (≈192 KiB
            // of records) the ring stops fitting in cache and every
            // record round-trips memory — cheaper to take the
            // (yield-priced) full edge than to lose cache residency.
            config.single_producer = true;
            if config.ring_capacity.is_none() {
                config.ring_capacity = Some(
                    self.capacity
                        .min(4096)
                        .max(self.max_batch * 16)
                        .clamp(2, 1 << 24)
                        .next_power_of_two(),
                );
            }
            if config.output_capacity.is_none() {
                let outbound: Vec<&Edge> = topology.edges_from(id).map(|(_, e)| e).collect();
                match outbound.len() {
                    0 => {} // sink: the user drains at their own pace
                    1 => config.output_capacity = Some(edge_budget(outbound[0])),
                    _ => config.output_capacity = Some(self.capacity),
                }
            }
            groups.push(Arc::new(ExecutorGroup::start(
                spec.name,
                config,
                spec.operator,
                spec.parallelism,
            )));
        }
        // Stable instance-0 handles backing `LiveDag::executor` (the
        // manual task-granular elasticity API); dropped before the
        // groups are dismantled at shutdown.
        let primaries: Vec<Arc<ElasticExecutor<BoxedOperator>>> =
            groups.iter().map(|g| g.instance(0)).collect();

        let counters = Arc::new(DagCounters {
            ingress_accepted: (0..n).map(|_| AtomicU64::new(0)).collect(),
            pumped: (0..n).map(|_| AtomicU64::new(0)).collect(),
            fanned: (0..n).map(|_| AtomicU64::new(0)).collect(),
            edge_in: (0..num_edges).map(|_| AtomicU64::new(0)).collect(),
            edge_out: (0..num_edges).map(|_| AtomicU64::new(0)).collect(),
        });

        // 3. Edge channels + forwarders for fan-out operators. The
        //    forwarder replicates *pointers*: one Arc-shared batch per
        //    edge, grouping deferred to the consumer's pump.
        let mut edge_rx: Vec<Option<Receiver<SharedBatch>>> =
            (0..num_edges).map(|_| None).collect();
        let mut forwarders: Vec<Option<JoinHandle<()>>> = (0..n).map(|_| None).collect();
        for op in topology.operators() {
            let outbound: Vec<(EdgeId, &Edge)> = topology.edges_from(op.id).collect();
            if outbound.len() < 2 {
                continue;
            }
            let mut forward_edges = Vec::with_capacity(outbound.len());
            for (edge_id, edge) in outbound {
                let (tx, rx) = bounded::<SharedBatch>(edge_budget(edge));
                edge_rx[edge_id] = Some(rx);
                forward_edges.push(ForwardEdge { tx, edge: edge_id });
            }
            let rx = groups[op.id.index()].outputs().clone();
            let counters = Arc::clone(&counters);
            let op_index = op.id.index();
            let handle = std::thread::Builder::new()
                .name(format!("dag-fanout-{}", op.name))
                .spawn(move || forwarder_loop(rx, forward_edges, counters, op_index))
                .expect("spawn forwarder thread");
            forwarders[op.id.index()] = Some(handle);
        }

        // 4. Ingress channels for sources; one pump per operator. Each
        //    source's sender lives inside a shared [`SourcePort`] so
        //    external feeders (TCP readers, replay pumps) can hold a
        //    clone that shutdown can revoke.
        let mut ports: Vec<Option<SourcePort>> = (0..n).map(|_| None).collect();
        let mut pumps: Vec<Option<JoinHandle<()>>> = (0..n).map(|_| None).collect();
        for op in topology.operators() {
            let mut feeds: Vec<FeedState> = Vec::new();
            if op.kind == OperatorKind::Source {
                let (tx, rx) = bounded::<RecordBatch>(self.capacity);
                ports[op.id.index()] = Some(SourcePort {
                    shared: Arc::new(PortShared {
                        tx: RwLock::new(Some(tx)),
                        counters: Arc::clone(&counters),
                        op: op.id.index(),
                        max_batch: self.max_batch,
                    }),
                });
                feeds.push(FeedState::new(Feed::Ingress(rx)));
            }
            for (edge_id, edge) in topology.edges_into(op.id) {
                let feed = match edge_rx[edge_id].take() {
                    // Arc-replicated by the upstream forwarder; this
                    // pump applies the grouping as it unwraps.
                    Some(rx) => Feed::Shared {
                        rx,
                        grouping: edge.grouping,
                        edge: edge_id,
                    },
                    // Chain fast path: the upstream group's output
                    // channel is the edge channel; this pump applies
                    // the grouping.
                    None => Feed::Direct {
                        rx: groups[edge.from.index()].outputs().clone(),
                        grouping: edge.grouping,
                        edge: edge_id,
                    },
                };
                feeds.push(FeedState::new(feed));
            }
            let pump = Pump {
                group: Arc::clone(&groups[op.id.index()]),
                counters: Arc::clone(&counters),
                op: op.id.index(),
                num_shards: op.shards_per_executor,
                capacity: self.capacity as u64,
                max_batch: self.max_batch,
            };
            let handle = std::thread::Builder::new()
                .name(format!("dag-pump-{}", op.name))
                .spawn(move || pump.run(feeds))
                .expect("spawn pump thread");
            pumps[op.id.index()] = Some(handle);
        }

        // 5. Sinks keep a receiver clone for the user; the controller
        //    (if any) watches every operator in id order.
        let sink_rx: Vec<Option<Receiver<RecordBatch>>> = topology
            .operators()
            .iter()
            .map(|op| {
                (topology.downstream(op.id).is_empty())
                    .then(|| groups[op.id.index()].outputs().clone())
            })
            .collect();
        let controller = self.controller.map(|config| {
            let names = topology
                .operators()
                .iter()
                .map(|o| o.name.clone())
                .collect();
            // Source operators report λ from the *edge of the system*
            // (records accepted at the port, which includes everything
            // still waiting in the ingress channel) rather than from
            // their executor's arrival counter — so a backlog building
            // in front of a slow source inflates its λ and draws cores,
            // instead of being invisible to the §4 model.
            let probes: Vec<Option<LambdaProbe>> = topology
                .operators()
                .iter()
                .map(|op| {
                    (op.kind == OperatorKind::Source).then(|| {
                        let counters = Arc::clone(&counters);
                        let i = op.id.index();
                        Arc::new(move || counters.ingress_accepted[i].load(Ordering::Acquire))
                            as LambdaProbe
                    })
                })
                .collect();
            LiveController::spawn(config, groups.clone(), names, probes)
        });

        let sources: Vec<OperatorId> = topology
            .operators()
            .iter()
            .filter(|op| op.kind == OperatorKind::Source)
            .map(|op| op.id)
            .collect();
        let sole_source = (sources.len() == 1).then(|| sources[0]);

        Ok(LiveDag {
            topology,
            groups,
            primaries,
            counters,
            ports,
            sole_source,
            sink_rx,
            pumps,
            forwarders,
            controller,
        })
    }
}

/// Monotonic per-operator and per-edge counters. Together with each
/// executor's `processed`/`emitted` counts they let [`LiveDag`] decide
/// quiescence without locks: every counter is incremented *when the
/// record passes that point* (consumption counters at receipt, before
/// any waiting; production counters before the channel send), so a
/// record is visible in at least one pairwise comparison at all times.
struct DagCounters {
    /// Records accepted by each (source) operator's [`SourcePort`].
    ingress_accepted: Vec<AtomicU64>,
    /// Records handed to each operator's executor by its pump, counted
    /// at receipt (post-replication for broadcast edges — the unit the
    /// executor's `processed` counter will use).
    pumped: Vec<AtomicU64>,
    /// Records a fan-out operator's forwarder has consumed from its
    /// output channel (original records, pre-replication).
    fanned: Vec<AtomicU64>,
    /// Records put into each edge's channel by the fan-out forwarder
    /// (original records — the Arc-shared batches carry no per-edge
    /// copies; unused for single-outbound operators, whose output
    /// channel is consumed directly).
    edge_in: Vec<AtomicU64>,
    /// Original records the consumer's pump took off each edge
    /// (matching `edge_in` for forwarder edges and the upstream
    /// `emitted` count for direct edges); broadcast replication happens
    /// after this point and shows up in `pumped` only.
    edge_out: Vec<AtomicU64>,
}

/// One inbound feed of an operator's pump.
enum Feed {
    /// The bounded ingress channel of a source operator; records route
    /// by their key.
    Ingress(Receiver<RecordBatch>),
    /// The upstream executor's output channel, reused as the edge
    /// channel (upstream has exactly one outbound edge): this pump
    /// applies the edge's grouping.
    Direct {
        rx: Receiver<RecordBatch>,
        grouping: Grouping,
        edge: EdgeId,
    },
    /// A fan-out forwarder's edge channel carrying Arc-shared batches:
    /// this pump applies the grouping while unwrapping (taking the
    /// batch by value when it is the last holder).
    Shared {
        rx: Receiver<SharedBatch>,
        grouping: Grouping,
        edge: EdgeId,
    },
}

/// A [`Feed`] plus its pump-side state.
struct FeedState {
    feed: Feed,
    /// Cleared when the channel disconnects (upstream fully drained).
    open: bool,
    /// Round-robin cursor for shuffle-grouped direct edges.
    shuffle_cursor: u64,
}

impl FeedState {
    fn new(feed: Feed) -> Self {
        Self {
            feed,
            open: true,
            shuffle_cursor: 0,
        }
    }
}

/// The per-operator pump: merges all inbound feeds into the operator's
/// executor group, routing each shard to its current owner instance.
struct Pump {
    group: Arc<ExecutorGroup>,
    counters: Arc<DagCounters>,
    op: usize,
    num_shards: u32,
    /// In-flight records the group may hold (pushed − processed,
    /// summed over all instances).
    capacity: u64,
    max_batch: usize,
}

/// Receives one value from a feed channel, either non-blocking
/// (`timeout: None` → `try_recv`) or with a bounded wait. Collapses the
/// two crossbeam error types into one shape so [`Pump::poll`] can serve
/// both modes with a single ingest dispatch.
fn recv_feed<T>(rx: &Receiver<T>, timeout: Option<Duration>) -> std::result::Result<T, Disconnect> {
    use crossbeam::channel::RecvTimeoutError;
    match timeout {
        None => rx.try_recv().map_err(|e| Disconnect {
            disconnected: matches!(e, TryRecvError::Disconnected),
        }),
        Some(timeout) => rx.recv_timeout(timeout).map_err(|e| Disconnect {
            disconnected: matches!(e, RecvTimeoutError::Disconnected),
        }),
    }
}

/// Whether a failed receive means the channel is gone (vs merely empty
/// or timed out).
struct Disconnect {
    disconnected: bool,
}

impl Pump {
    // Counter-ordering invariant shared by every `ingest_*`: `pumped`
    // (this operator's consumption-side counter) is incremented FIRST.
    // From that instant `pumped > processed`, so `is_quiescent` fails
    // until the records are actually fed and processed; only then is
    // the per-edge `edge_out` bumped, closing the upstream pairing
    // (`emitted`/`edge_in` vs `edge_out`) with no window in which every
    // equality holds while a record sits uncounted in this thread's
    // hands. (The forwarder orders its pair the mirrored way:
    // `edge_in` before `fanned`.)

    /// Routes `originals` records into `pending` by `grouping`,
    /// counting the `pumped` units first (at receipt — quiescence
    /// checks must see the records somewhere at all times). Broadcast
    /// replicates here, one Arc bump per copy (payloads are
    /// `Bytes`-shared, never deep-copied). Returns the routed units
    /// added.
    fn route_into(
        &self,
        grouping: Grouping,
        cursor: &mut u64,
        originals: u64,
        records: impl Iterator<Item = Record>,
        pending: &mut VecDeque<(ShardId, Record)>,
    ) -> usize {
        let added = match grouping {
            Grouping::Key => {
                self.counters.pumped[self.op].fetch_add(originals, Ordering::AcqRel);
                for record in records {
                    let shard = ShardId(key_to_shard(record.key.value(), self.num_shards));
                    pending.push_back((shard, record));
                }
                originals
            }
            Grouping::Shuffle => {
                self.counters.pumped[self.op].fetch_add(originals, Ordering::AcqRel);
                for record in records {
                    let shard = ShardId((*cursor % u64::from(self.num_shards)) as u32);
                    *cursor = cursor.wrapping_add(1);
                    pending.push_back((shard, record));
                }
                originals
            }
            Grouping::Broadcast => {
                let copies = originals * u64::from(self.num_shards);
                self.counters.pumped[self.op].fetch_add(copies, Ordering::AcqRel);
                for record in records {
                    for shard in 1..self.num_shards {
                        pending.push_back((ShardId(shard), record.clone()));
                    }
                    pending.push_back((ShardId(0), record));
                }
                copies
            }
        };
        added as usize
    }

    /// Ingests one received batch from a direct edge: grouping applied
    /// here, then the edge counter closes the upstream pairing.
    fn ingest_direct(
        &self,
        grouping: Grouping,
        edge: EdgeId,
        cursor: &mut u64,
        batch: RecordBatch,
        pending: &mut VecDeque<(ShardId, Record)>,
    ) -> usize {
        let originals = batch.len() as u64;
        let added = self.route_into(grouping, cursor, originals, batch.into_iter(), pending);
        self.counters.edge_out[edge].fetch_add(originals, Ordering::AcqRel);
        added
    }

    /// Ingests one ingress batch (key routing, no edge counter).
    fn ingest_ingress(
        &self,
        batch: RecordBatch,
        pending: &mut VecDeque<(ShardId, Record)>,
    ) -> usize {
        let n = batch.len();
        let mut cursor = 0;
        self.route_into(
            Grouping::Key,
            &mut cursor,
            n as u64,
            batch.into_iter(),
            pending,
        )
    }

    /// Ingests one Arc-shared batch from a fan-out edge: the last
    /// holder takes the records by value, earlier holders clone through
    /// the pointer (per-record Arc bumps, no payload copies).
    fn ingest_shared(
        &self,
        grouping: Grouping,
        edge: EdgeId,
        cursor: &mut u64,
        batch: SharedBatch,
        pending: &mut VecDeque<(ShardId, Record)>,
    ) -> usize {
        let originals = batch.len() as u64;
        let added = match Arc::try_unwrap(batch) {
            Ok(owned) => self.route_into(grouping, cursor, originals, owned.into_iter(), pending),
            Err(shared) => {
                self.route_into(grouping, cursor, originals, shared.iter().cloned(), pending)
            }
        };
        self.counters.edge_out[edge].fetch_add(originals, Ordering::AcqRel);
        added
    }

    /// Polls one feed, ingesting at most one batch: non-blocking with
    /// `timeout: None`, otherwise waiting up to the timeout (the idle
    /// path — a condvar sleep instead of a spin). Returns the routed
    /// units added, or `None` if nothing arrived (marking the feed
    /// closed on disconnect).
    fn poll(
        &self,
        state: &mut FeedState,
        timeout: Option<Duration>,
        pending: &mut VecDeque<(ShardId, Record)>,
    ) -> Option<usize> {
        let result = match &state.feed {
            Feed::Ingress(rx) => {
                recv_feed(rx, timeout).map(|batch| self.ingest_ingress(batch, pending))
            }
            Feed::Direct { rx, grouping, edge } => {
                let (grouping, edge) = (*grouping, *edge);
                recv_feed(rx, timeout).map(|batch| {
                    self.ingest_direct(grouping, edge, &mut state.shuffle_cursor, batch, pending)
                })
            }
            Feed::Shared { rx, grouping, edge } => {
                let (grouping, edge) = (*grouping, *edge);
                recv_feed(rx, timeout).map(|batch| {
                    self.ingest_shared(grouping, edge, &mut state.shuffle_cursor, batch, pending)
                })
            }
        };
        match result {
            Ok(added) => Some(added),
            Err(gone) => {
                if gone.disconnected {
                    state.open = false;
                }
                None
            }
        }
    }

    /// The pump thread body. Exits once every feed has disconnected and
    /// its remaining records were fed to the executor group.
    fn run(self, mut feeds: Vec<FeedState>) {
        // Records handed to the group; `pushed − processed` is the
        // group's in-flight count (this pump is its only feeder).
        let mut pushed = 0u64;
        let mut pending: VecDeque<(ShardId, Record)> = VecDeque::new();
        // Fairness cursor: which feed gets polled first this wave.
        let mut first = 0usize;
        // Wave-local routing state (see the feed loop below): the owner
        // cache pins each shard's instance for one wave, the buckets
        // are reused submission buffers keyed by instance id (the
        // cached `Arc` saves a lock + clone per wave; holding a retired
        // husk's handle is harmless — husks outlive the group anyway).
        let mut wave = 0u64;
        let mut owner_cache: Vec<(u64, u32)> = vec![(0, 0); self.num_shards as usize];
        type Bucket = (
            u32,
            Arc<ElasticExecutor<BoxedOperator>>,
            Vec<(ShardId, Record)>,
        );
        let mut buckets: Vec<Bucket> = Vec::new();
        loop {
            // ---- Collect one wave of up to max_batch routed units,
            //      round-robin over the feeds (order within each feed is
            //      preserved; interleaving across feeds is arbitrary,
            //      matching the documented fan-in guarantee). ----
            let mut collected = 0usize;
            let num_feeds = feeds.len();
            'outer: for k in 0..num_feeds {
                let idx = (first + k) % num_feeds;
                if !feeds[idx].open {
                    continue;
                }
                while collected < self.max_batch {
                    match self.poll(&mut feeds[idx], None, &mut pending) {
                        Some(added) => collected += added,
                        None => continue 'outer,
                    }
                }
                break;
            }
            first = (first + 1) % num_feeds.max(1);
            if collected == 0 {
                if feeds.iter().all(|f| !f.open) {
                    // Every upstream hung up and was drained: exit after
                    // flushing anything still in hand (none by
                    // construction — the feed loop below empties
                    // `pending` before the next wave).
                    break;
                }
                // Idle: block briefly on the first open feed so waiting
                // costs a condvar sleep, not a spin.
                if let Some(state) = feeds.iter_mut().find(|f| f.open) {
                    self.poll(state, Some(Duration::from_millis(1)), &mut pending);
                }
                if pending.is_empty() {
                    continue;
                }
            }
            // ---- Feed the group, respecting its in-flight budget:
            //      hold records in hand while it is full (and stop
            //      reading the feeds, which then fill and block the
            //      upstream — that is the backpressure propagation). ----
            while !pending.is_empty() {
                let room = self
                    .capacity
                    .saturating_sub(pushed.saturating_sub(self.group.processed_count()));
                if room == 0 {
                    // Parked idle path: sleep on the group's progress
                    // condvar until at least one more record completes
                    // (room > 0 ⟺ processed > pushed − capacity; the
                    // subtraction cannot underflow while room == 0).
                    // The timeout bounds a lost wakeup to one poll
                    // interval instead of a hang.
                    let floor = pushed - self.capacity;
                    self.group
                        .progress()
                        .wait_until(Duration::from_millis(2), || {
                            self.group.processed_count() > floor
                        });
                    continue;
                }
                let take = (room as usize).min(self.max_batch).min(pending.len());
                // Wave-local routing: the shard→instance router is read
                // at most once per shard per wave, so a concurrent
                // rescale flipping a shard's owner mid-wave cannot
                // split that shard's records across two buckets in
                // submission-order-dependent ways — every record of a
                // shard in this wave goes to one instance, and the flip
                // is only observed by later waves (whose records the
                // migration pause buffer fences behind this wave).
                wave += 1;
                for (shard, record) in pending.drain(..take) {
                    let slot = &mut owner_cache[shard.index()];
                    if slot.0 != wave {
                        *slot = (wave, self.group.instance_of(shard));
                    }
                    let owner = slot.1;
                    match buckets.iter_mut().find(|(id, _, _)| *id == owner) {
                        Some((_, _, bucket)) => bucket.push((shard, record)),
                        None => {
                            let exec = self.group.instance(owner);
                            buckets.push((owner, exec, vec![(shard, record)]));
                        }
                    }
                }
                for (_, exec, bucket) in &mut buckets {
                    if !bucket.is_empty() {
                        exec.ingest_batch_routed(bucket.drain(..));
                    }
                }
                pushed += take as u64;
            }
        }
    }
}

/// One outbound edge of a fan-out forwarder: just the channel — the
/// grouping is applied by the consuming pump, so the forwarder carries
/// no routing state at all.
struct ForwardEdge {
    tx: Sender<SharedBatch>,
    edge: EdgeId,
}

/// The fan-out forwarder body: drains the operator's output channel,
/// wraps each batch in an `Arc` once, and sends one pointer per edge —
/// O(edges) Arc bumps per batch, zero record copies. A full edge
/// channel blocks the forwarder — and with it every sibling edge —
/// which is what propagates a slow branch's backpressure to the
/// producer instead of dropping records.
fn forwarder_loop(
    rx: Receiver<RecordBatch>,
    edges: Vec<ForwardEdge>,
    counters: Arc<DagCounters>,
    op: usize,
) {
    while let Ok(batch) = rx.recv() {
        let originals = batch.len() as u64;
        // Count the batch into every edge *before* any send — a blocked
        // send must not hide the records still in hand — and before
        // `fanned`: from the first `edge_in` bump, `edge_in > edge_out`
        // fails the quiescence check, and `fanned` (which would satisfy
        // the `emitted == fanned` pairing) only catches up afterwards,
        // so no window exists in which every equality holds while this
        // thread still holds the batch.
        for e in &edges {
            counters.edge_in[e.edge].fetch_add(originals, Ordering::AcqRel);
        }
        counters.fanned[op].fetch_add(originals, Ordering::AcqRel);
        let shared: SharedBatch = Arc::new(batch);
        for e in &edges {
            // A send error means the consumer side is gone (teardown
            // with a retained handle); that edge's share is dropped,
            // matching executor shutdown semantics.
            let _ = e.tx.send(Arc::clone(&shared));
        }
    }
}

/// Per-operator snapshot returned by [`LiveDag::operator_stats`] and
/// [`LiveDag::shutdown`].
#[derive(Clone, Debug)]
pub struct OperatorStats {
    /// Operator name (from the builder).
    pub name: String,
    /// Records handed to the operator's executor by its pump.
    pub submitted: u64,
    /// Executor statistics.
    pub stats: ExecutorStats,
}

/// The state behind a [`SourcePort`], shared by every clone. The sender
/// sits behind an `RwLock<Option<…>>` so [`LiveDag::shutdown`] can
/// revoke it: a port retained by an external feeder then drops records
/// instead of wedging the source pump's teardown join.
struct PortShared {
    tx: RwLock<Option<Sender<RecordBatch>>>,
    counters: Arc<DagCounters>,
    op: usize,
    max_batch: usize,
}

/// A cloneable, shutdown-safe [`Ingest`] handle to one source operator's
/// ingress channel — what external feeders (the `elasticutor-ingress`
/// TCP readers, [`spawn_source`](crate::ingest::spawn_source) pumps,
/// tests) hold instead of the whole [`LiveDag`]. Obtained from
/// [`LiveDag::port`].
///
/// Records ingested after [`LiveDag::shutdown`] are dropped silently
/// (and not counted), matching executor shutdown semantics.
#[derive(Clone)]
pub struct SourcePort {
    shared: Arc<PortShared>,
}

impl std::fmt::Debug for SourcePort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourcePort")
            .field("op", &self.shared.op)
            .field("accepted", &Ingest::accepted(self))
            .finish()
    }
}

impl Ingest for SourcePort {
    /// Blocks while the graph is backpressured (the source at capacity
    /// and its ingress channel full). Batches are split so no channel
    /// slot holds more than the builder's `max_batch` records; the
    /// accepted counter is bumped *before* each send so a quiescence
    /// check never sees a sent-but-uncounted record.
    fn ingest_batch(&self, batch: RecordBatch) {
        if batch.is_empty() {
            return;
        }
        let s = &self.shared;
        let guard = s.tx.read();
        let Some(tx) = guard.as_ref() else {
            return; // shut down: drop, uncounted
        };
        let mut chunk = Vec::with_capacity(batch.len().min(s.max_batch));
        for record in batch {
            chunk.push(record);
            if chunk.len() == s.max_batch {
                let full = std::mem::replace(&mut chunk, Vec::with_capacity(s.max_batch));
                s.counters.ingress_accepted[s.op].fetch_add(full.len() as u64, Ordering::AcqRel);
                let _ = tx.send(full);
            }
        }
        if !chunk.is_empty() {
            s.counters.ingress_accepted[s.op].fetch_add(chunk.len() as u64, Ordering::AcqRel);
            let _ = tx.send(chunk);
        }
    }

    /// Nonblocking admission: accepts `max_batch`-sized chunks while the
    /// ingress channel has room, returning the remainder at the first
    /// full slot. Unlike the blocking path the accepted counter is
    /// bumped *after* each successful `try_send` (a pre-bumped count
    /// could never be taken back on `Full`), so a concurrent quiescence
    /// probe racing this call can transiently see the channel ahead of
    /// the counter — harmless for [`LiveDag::drain`]'s two-clean-reads
    /// discipline, but don't treat a single `is_quiescent` read as a
    /// fence against in-flight `try_ingest_batch` calls.
    fn try_ingest_batch(&self, batch: RecordBatch) -> std::result::Result<(), RecordBatch> {
        if batch.is_empty() {
            return Ok(());
        }
        let s = &self.shared;
        let guard = s.tx.read();
        let Some(tx) = guard.as_ref() else {
            return Ok(()); // shut down: drop, uncounted
        };
        let mut iter = batch.into_iter();
        loop {
            let chunk: RecordBatch = iter.by_ref().take(s.max_batch).collect();
            if chunk.is_empty() {
                return Ok(());
            }
            let n = chunk.len() as u64;
            match tx.try_send(chunk) {
                Ok(()) => {
                    s.counters.ingress_accepted[s.op].fetch_add(n, Ordering::AcqRel);
                }
                Err(TrySendError::Full(chunk)) => {
                    let mut rest = chunk;
                    rest.extend(iter);
                    return Err(rest);
                }
                Err(TrySendError::Disconnected(_)) => return Ok(()),
            }
        }
    }

    fn accepted(&self) -> u64 {
        let s = &self.shared;
        s.counters.ingress_accepted[s.op].load(Ordering::Acquire)
    }
}

/// A running elastic dataflow graph. See the module docs for the wiring,
/// backpressure, and ordering model; build one with [`LiveDagBuilder`].
pub struct LiveDag {
    topology: Topology,
    groups: Vec<Arc<ExecutorGroup>>,
    /// Instance-0 handles backing [`Self::executor`]; dropped at the
    /// start of shutdown so the groups can be consumed.
    primaries: Vec<Arc<ElasticExecutor<BoxedOperator>>>,
    counters: Arc<DagCounters>,
    /// Ingress ports, indexed by operator (sources only); their senders
    /// are revoked at shutdown.
    ports: Vec<Option<SourcePort>>,
    /// `Some` iff the topology has exactly one source — the operator
    /// the whole-graph [`Ingest`] impl feeds.
    sole_source: Option<OperatorId>,
    /// Output receivers of sink operators, indexed by operator.
    sink_rx: Vec<Option<Receiver<RecordBatch>>>,
    pumps: Vec<Option<JoinHandle<()>>>,
    forwarders: Vec<Option<JoinHandle<()>>>,
    controller: Option<ControllerHandle>,
}

impl LiveDag {
    /// Starts building a DAG.
    pub fn builder() -> LiveDagBuilder {
        LiveDagBuilder::new()
    }

    /// The validated topology driving this graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The [`Ingest`] port of a source operator — a cloneable,
    /// `'static` handle external feeders hold without owning the graph.
    /// See [`SourcePort`] for blocking/nonblocking admission and
    /// shutdown semantics.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a source operator of this topology.
    pub fn port(&self, source: OperatorId) -> SourcePort {
        self.ports[source.index()]
            .as_ref()
            .expect("operator is a running source")
            .clone()
    }

    /// The single source's port, for the whole-graph [`Ingest`] impl.
    fn sole_port(&self) -> &SourcePort {
        let source = self.sole_source.expect(
            "graph has multiple sources — name the entry point with `LiveDag::port(source)`",
        );
        self.ports[source.index()]
            .as_ref()
            .expect("sole source has a port")
    }

    /// Renamed: use [`Self::port`] + [`Ingest::ingest`].
    #[doc(hidden)]
    #[deprecated(note = "use `port(source)` + `Ingest::ingest`")]
    pub fn submit(&self, source: OperatorId, record: Record) {
        self.port(source).ingest(record);
    }

    /// Renamed: use [`Self::port`] + [`Ingest::ingest_batch`].
    #[doc(hidden)]
    #[deprecated(note = "use `port(source)` + `Ingest::ingest_batch`")]
    pub fn submit_batch(&self, source: OperatorId, batch: RecordBatch) {
        self.port(source).ingest_batch(batch);
    }

    /// The output stream of a sink operator (one with no outbound
    /// edges), in batches; `None` for non-sinks, whose outputs feed
    /// their downstream edges.
    pub fn outputs(&self, op: OperatorId) -> Option<&Receiver<RecordBatch>> {
        self.sink_rx[op.index()].as_ref()
    }

    /// Attaches a [`Sink`] consumer to a sink operator's output stream
    /// on a dedicated pump thread (see [`spawn_sink`]); `None` for
    /// non-sinks. The handle joins after [`Self::shutdown`] drains the
    /// channel. Multiple sinks on one operator **split** its batches
    /// (the channel is MPMC).
    pub fn attach_sink<S: Sink>(
        &self,
        op: OperatorId,
        name: &str,
        sink: S,
    ) -> Option<SinkHandle<S>> {
        self.outputs(op)
            .map(|rx| spawn_sink(name, rx.clone(), sink))
    }

    /// Direct handle to an operator's **first** executor instance
    /// (manual task-granular elasticity: `add_task`, `remove_task`,
    /// `rebalance`, `reassign_shard`). With `parallelism > 1` this is
    /// instance 0 only; use [`Self::group`] to reach the whole group.
    ///
    /// As with the chain pipeline, a clone of this `Arc` still alive
    /// when [`Self::shutdown`] runs degrades that operator's teardown:
    /// its tasks are halted in place and the downstream threads are
    /// detached rather than joined (they exit when the last clone
    /// drops).
    pub fn executor(&self, op: OperatorId) -> &Arc<ElasticExecutor<BoxedOperator>> {
        &self.primaries[op.index()]
    }

    /// The executor group running `op`: instance handles, the
    /// shard→instance router, and the live rescaling entry points.
    pub fn group(&self, op: OperatorId) -> &Arc<ExecutorGroup> {
        &self.groups[op.index()]
    }

    /// Adds one executor instance to `op`'s group **live**, migrating
    /// ~`1/(y+1)` of its shards (state included) to the newcomer via
    /// the in-process §3.3 handshake while records keep flowing.
    /// Returns the new instance id.
    pub fn scale_out(&self, op: OperatorId) -> Result<u32> {
        self.groups[op.index()].scale_out()
    }

    /// Retires one executor instance of `op`'s group live, draining its
    /// shards (and in-flight records) to the surviving instances.
    /// Returns the retired instance id; errors when the group is
    /// already at one instance.
    pub fn scale_in(&self, op: OperatorId) -> Result<u32> {
        self.groups[op.index()].scale_in()
    }

    /// Live executor-instance count per operator, in operator-id order.
    pub fn instances_per_operator(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.num_live()).collect()
    }

    /// Live task-thread count per operator (the "core" allocation,
    /// summed over each operator's live instances), in operator-id
    /// order.
    pub fn cores_per_operator(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.total_tasks()).collect()
    }

    /// Per-operator statistics snapshots (aggregated over each
    /// operator's instances), in operator-id order.
    pub fn operator_stats(&self) -> Vec<OperatorStats> {
        self.topology
            .operators()
            .iter()
            .map(|op| OperatorStats {
                name: op.name.clone(),
                submitted: self.counters.pumped[op.id.index()].load(Ordering::Acquire),
                stats: self.groups[op.id.index()].stats(),
            })
            .collect()
    }

    /// Events logged by the attached controller (empty when none).
    pub fn controller_log(&self) -> Vec<ControllerEvent> {
        self.controller
            .as_ref()
            .map_or_else(Vec::new, ControllerHandle::log)
    }

    /// Whether every submitted record has been processed through every
    /// operator it routes to and no record sits in any ingress, edge, or
    /// output channel (sink output channels excepted — those hold
    /// results for the user).
    ///
    /// Uses monotonic counters only; a `true` from a single call is
    /// trustworthy provided no concurrent ingest is racing it. Each
    /// counter is incremented as the record passes its point
    /// (consumption at receipt, production before the send), so a
    /// record in flight always fails at least one of the equalities.
    pub fn is_quiescent(&self) -> bool {
        let c = &self.counters;
        for op in self.topology.operators() {
            let i = op.id.index();
            if op.kind == OperatorKind::Source
                && c.ingress_accepted[i].load(Ordering::Acquire)
                    != c.pumped[i].load(Ordering::Acquire)
            {
                return false;
            }
            if c.pumped[i].load(Ordering::Acquire) != self.groups[i].processed_count() {
                return false;
            }
            let outbound: Vec<EdgeId> = self.topology.edges_from(op.id).map(|(id, _)| id).collect();
            match outbound.len() {
                0 => {}
                1 => {
                    if self.groups[i].emitted_count()
                        != c.edge_out[outbound[0]].load(Ordering::Acquire)
                    {
                        return false;
                    }
                }
                _ => {
                    if self.groups[i].emitted_count() != c.fanned[i].load(Ordering::Acquire) {
                        return false;
                    }
                    for e in outbound {
                        if c.edge_in[e].load(Ordering::Acquire)
                            != c.edge_out[e].load(Ordering::Acquire)
                        {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Blocks until the graph is quiescent (all submitted records fully
    /// processed along every edge). Requires two consecutive clean
    /// reads, hardening the check against a record caught mid-hop
    /// between two counter updates.
    pub fn drain(&self) {
        let mut streak = 0;
        while streak < 2 {
            streak = if self.is_quiescent() { streak + 1 } else { 0 };
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stops the controller, drains every operator in topological order,
    /// shuts the executors down, and returns final statistics in
    /// operator-id order.
    pub fn shutdown(mut self) -> Vec<OperatorStats> {
        // 1. Controller first: it holds executor handles and must not
        //    fight the teardown with grants/revocations.
        if let Some(controller) = self.controller.take() {
            controller.stop();
        }
        // 2. Revoke every ingress port's sender (a retained `SourcePort`
        //    clone goes inert instead of keeping the pump's channel
        //    alive); source pumps forward what is buffered, then exit.
        //    Drop the instance-0 handles backing `Self::executor` so
        //    they cannot make every group's teardown look
        //    caller-degraded below.
        for port in self.ports.iter().flatten() {
            port.shared.tx.write().take();
        }
        self.primaries.clear();
        let n = self.groups.len();
        // Operators halted in place because a foreign handle kept their
        // group (or a live instance of it) alive: their channels never
        // disconnect, so dependent threads are detached instead of
        // joined.
        let mut degraded = vec![false; n];
        // Final `emitted` count per operator, captured once its inputs
        // are fully processed (emits happen before the `processed`
        // increment, so the count is final at that point). The drain
        // waits below compare downstream consumption against it.
        let mut emitted_final = vec![0u64; n];
        let mut all_stats: Vec<Option<OperatorStats>> = (0..n).map(|_| None).collect();
        let groups = std::mem::take(&mut self.groups);
        let mut groups: Vec<Option<Arc<ExecutorGroup>>> = groups.into_iter().map(Some).collect();

        fn wait(mut check: impl FnMut() -> bool) {
            while !check() {
                std::thread::sleep(Duration::from_micros(200));
            }
        }

        // 3. Walk the graph in topological order: by the time we reach
        //    an operator, every producer feeding it has been fully shut
        //    down (its channels disconnected) or halted in place with
        //    its outbound edges drained, so the operator's pump either
        //    exits on its own or can be safely detached once its inbound
        //    edges are empty.
        for &v in self.topology.topo_order() {
            let vi = v.index();
            let upstream_degraded = self
                .topology
                .upstream(v)
                .iter()
                .any(|u| degraded[u.index()]);
            let pump = self.pumps[vi].take();
            if upstream_degraded {
                // Some feed channel will never disconnect: wait for
                // every inbound edge to drain into the pump, then for
                // the pump's hand to reach the executor, and detach the
                // pump thread (it exits when the last foreign handle
                // drops).
                for (edge_id, edge) in self.topology.edges_into(v) {
                    let c = &self.counters;
                    if self.topology.downstream(edge.from).len() >= 2 {
                        // Forwarder edge: `edge_in` settled when the
                        // producer was processed; the pump must take it
                        // all.
                        wait(|| {
                            c.edge_in[edge_id].load(Ordering::Acquire)
                                == c.edge_out[edge_id].load(Ordering::Acquire)
                        });
                    } else {
                        // Direct edge: the pump consumes straight off
                        // the producer's (final) emitted stream.
                        let produced = emitted_final[edge.from.index()];
                        wait(|| c.edge_out[edge_id].load(Ordering::Acquire) >= produced);
                    }
                }
                let c = Arc::clone(&self.counters);
                let group = Arc::clone(groups[vi].as_ref().expect("not yet taken"));
                wait(|| group.processed_count() >= c.pumped[vi].load(Ordering::Acquire));
                drop(pump); // detached
            } else if let Some(pump) = pump {
                // All feeds disconnect once their producers are gone
                // (which topological order guarantees happened already):
                // the pump forwards everything and exits.
                pump.join().expect("pump exits cleanly");
            }
            // Everything the pump handed over is in the group; wait for
            // it to finish processing, then record the final emit count
            // for downstream drain waits.
            {
                let c = &self.counters;
                let group = groups[vi].as_ref().expect("not yet taken");
                wait(|| group.processed_count() >= c.pumped[vi].load(Ordering::Acquire));
                emitted_final[vi] = group.emitted_count();
            }
            // Dismantle the group. Normally we hold the last reference
            // (the pump that held a clone was just joined) and can
            // consume it, which drops the shared output channel and
            // lets downstream threads exit. A caller-retained handle —
            // of the group or of any live instance — degrades to
            // halting in place.
            let taken = groups[vi].take().expect("not yet taken");
            let stats = match Arc::try_unwrap(taken) {
                Ok(group) => {
                    let (stats, instance_retained) = group.dismantle();
                    degraded[vi] |= instance_retained;
                    stats
                }
                Err(shared) => {
                    let stats = shared.halt_in_place();
                    degraded[vi] = true;
                    stats
                }
            };
            all_stats[vi] = Some(OperatorStats {
                name: self.topology.operators()[vi].name.clone(),
                submitted: self.counters.pumped[vi].load(Ordering::Acquire),
                stats,
            });
            // The fan-out forwarder (if any) exits once the output
            // channel disconnects; with a degraded executor that never
            // happens, so wait until it has consumed and replicated
            // every emitted record, then detach it.
            if let Some(forwarder) = self.forwarders[vi].take() {
                if degraded[vi] {
                    let c = &self.counters;
                    let produced = emitted_final[vi];
                    wait(|| {
                        c.fanned[vi].load(Ordering::Acquire) >= produced
                            && self
                                .topology
                                .edges_from(v)
                                .all(|(e, _)| c.edge_in[e].load(Ordering::Acquire) >= produced)
                    });
                    drop(forwarder); // detached
                } else {
                    forwarder.join().expect("forwarder exits cleanly");
                }
            }
        }
        all_stats
            .into_iter()
            .map(|s| s.expect("every operator visited"))
            .collect()
    }
}

/// Whole-graph ingestion for single-source topologies: the common case
/// where "feed the DAG" is unambiguous. Multi-source graphs must name
/// the entry point via [`LiveDag::port`].
///
/// # Panics
///
/// Every method panics if the topology has more than one source.
impl Ingest for LiveDag {
    fn ingest_batch(&self, batch: RecordBatch) {
        self.sole_port().ingest_batch(batch);
    }

    fn try_ingest_batch(&self, batch: RecordBatch) -> std::result::Result<(), RecordBatch> {
        self.sole_port().try_ingest_batch(batch)
    }

    fn accepted(&self) -> u64 {
        self.sole_port().accepted()
    }
}

impl std::fmt::Debug for LiveDag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveDag")
            .field(
                "operators",
                &self
                    .topology
                    .operators()
                    .iter()
                    .map(|o| o.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .field("edges", &self.topology.edges().len())
            .field("cores", &self.cores_per_operator())
            .finish()
    }
}
