//! Records and the operator trait of the live runtime.

use bytes::Bytes;
use elasticutor_core::ids::Key;
use elasticutor_state::StateHandle;

/// A data record flowing through a live executor.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Partitioning key.
    pub key: Key,
    /// Payload bytes.
    pub payload: Bytes,
    /// Creation timestamp (nanoseconds from an arbitrary monotonic
    /// origin) — the latency measurement origin.
    pub created_ns: u64,
    /// Per-key sequence number (0 when unused); tests use it to verify
    /// the in-order processing requirement of paper §2.1.
    pub seq: u64,
}

impl Record {
    /// Creates a record stamped with the current monotonic time.
    pub fn new(key: Key, payload: Bytes) -> Self {
        Self::new_at(key, payload, monotonic_ns())
    }

    /// Creates a record with an explicit creation timestamp — lets a
    /// batching source read [`monotonic_ns`] once and stamp the whole
    /// batch instead of paying one clock call per record.
    pub fn new_at(key: Key, payload: Bytes, created_ns: u64) -> Self {
        Self {
            key,
            payload,
            created_ns,
            seq: 0,
        }
    }

    /// Sets the per-key sequence number (builder style).
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }
}

/// A batch of records traveling one channel hop together. Order within
/// the batch is arrival/processing order; flattening a stream of batches
/// yields the same per-key FIFO sequence the unbatched channels carried.
pub type RecordBatch = Vec<Record>;

/// Nanoseconds from the process-wide monotonic origin — the timestamp
/// domain of [`Record::created_ns`] and all latency accounting.
pub fn monotonic_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// User-defined operator logic — the analog of the paper's `ElasticBolt`.
///
/// `process` is invoked by whichever task thread currently owns the
/// record's shard; all state access goes through the shard-scoped
/// [`StateHandle`], which is how the framework can hand the shard to a
/// different task without the operator noticing.
///
/// Implementations must be `Send + Sync`: one instance is shared by all
/// task threads. Per-key mutable state belongs in the state store, not in
/// `self`.
pub trait Operator: Send + Sync + 'static {
    /// Processes one record, returning any records to emit downstream.
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record>;
}

impl<F> Operator for F
where
    F: Fn(&Record, &StateHandle) -> Vec<Record> + Send + Sync + 'static,
{
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        self(record, state)
    }
}

impl Operator for Box<dyn Operator> {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        (**self).process(record, state)
    }
}

/// Shared operator logic: every instance of an executor group boxes a
/// clone of the same `Arc`, exactly as the task threads *within* one
/// executor already share one operator value — `process` takes `&self`
/// and operators are `Send + Sync` by bound.
impl Operator for std::sync::Arc<dyn Operator> {
    fn process(&self, record: &Record, state: &StateHandle) -> Vec<Record> {
        (**self).process(record, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_builder() {
        let r = Record::new(Key(5), Bytes::from_static(b"x")).with_seq(9);
        assert_eq!(r.key, Key(5));
        assert_eq!(r.seq, 9);
        assert_eq!(r.payload, Bytes::from_static(b"x"));
    }

    #[test]
    fn monotonic_clock_advances() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn closures_are_operators() {
        fn assert_op<T: Operator>(_t: &T) {}
        let op = |_r: &Record, _s: &StateHandle| Vec::new();
        assert_op(&op);
    }
}
