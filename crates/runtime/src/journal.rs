//! The migration **recovery journal**: an append-only, checksummed,
//! fsync'd log of the cross-process migration protocol's durability
//! points, written by [`MigrationEndpoint`](crate::migrate::MigrationEndpoint)
//! and replayed by its `recover()` after a crash.
//!
//! # Why a journal
//!
//! Shard state lives in memory only; a `kill -9` mid-migration loses
//! whatever the process held. Without a log, a crash inside the
//! COMMIT→ACK two-phase-commit window can end with the shard owned by
//! **both** sides (sender restored + receiver installed) or **neither**
//! (sender extracted + receiver never committed). The journal makes
//! every step that transfers responsibility durable *before* the
//! corresponding frame leaves the process, so a restart can replay the
//! log and resolve every in-flight migration to exactly one owner.
//!
//! # Record format
//!
//! Entries are [`elasticutor_core::wire`] frames appended to one file.
//! Every entry payload ends with an FNV-1a checksum of the preceding
//! payload bytes. Large snapshots are not one giant frame: the snapshot
//! streams as `J_SNAP_CHUNK` frames (each an encoded, self-checksummed
//! [`ShardSnapshot`] slice) and the durability **marker** frame comes
//! last, carrying the totals and an end-to-end digest — so a torn write
//! anywhere in the sequence simply leaves no marker, and replay ignores
//! the orphaned chunks. `fsync` happens at each marker, which is the
//! moment the protocol is allowed to proceed.
//!
//! ```text
//! sender:    [chunk*] OFFER_SENT … COMMIT_SENT … ACK_RECEIVED RESOLVED_REMOTE
//! receiver:  [chunk*] STATE_DURABLE … RESOLVED_LOCAL
//! ```
//!
//! # Replay semantics
//!
//! [`RecoveryJournal::replay`] folds the entries into at most one open
//! [`ShardFate`] per shard (later migrations of the same shard override
//! earlier resolved ones). A frame that cannot be read stops the replay
//! at the last durable entry (torn tail — expected after a crash). A
//! frame that reads but fails its checksum is tolerated only at the
//! tail; mid-file corruption is surfaced as a typed error, because
//! skipping a possibly-resolving entry could resurrect a migration that
//! already completed.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use elasticutor_core::ids::{Key, ShardId};
use elasticutor_core::wire::{self, Checksum, WireError};
use elasticutor_state::ShardSnapshot;
use parking_lot::Mutex;

/// One encoded snapshot slice of a pending entry (precedes its marker).
pub const J_SNAP_CHUNK: u8 = 1;
/// Sender marker: snapshot durable, `OFFER` about to leave.
pub const J_OFFER_SENT: u8 = 2;
/// Receiver marker: verified state durable, `COMMIT_ACK` about to leave.
pub const J_STATE_DURABLE: u8 = 3;
/// Sender marker: `COMMIT` about to leave (opens the 2PC window).
pub const J_COMMIT_SENT: u8 = 4;
/// Sender marker: `COMMIT_ACK` arrived (peer owns the state).
pub const J_ACK_RECEIVED: u8 = 5;
/// Terminal: the shard ended up owned locally.
pub const J_RESOLVED_LOCAL: u8 = 6;
/// Terminal: the shard ended up owned by the peer.
pub const J_RESOLVED_REMOTE: u8 = 7;

/// Value bytes per journal snapshot chunk (mirrors the link's `STATE`
/// chunking so a snapshot that fits the wire fits the journal).
const JOURNAL_CHUNK_BYTES: u64 = 256 * 1024;

/// How a crash left one shard, per the journal: the open (unresolved)
/// state [`RecoveryJournal::replay`] hands to `recover()`.
#[derive(Clone, Debug)]
pub enum ShardFate {
    /// Sender journaled the snapshot and (maybe) sent `OFFER`, but
    /// never sent `COMMIT`: the peer cannot have installed — restore
    /// locally from the journaled snapshot.
    SenderOffered(ShardSnapshot),
    /// Sender sent `COMMIT` but never saw the ack: the classic 2PC
    /// in-doubt state — ask the peer who owns it, then restore locally
    /// or settle remote.
    SenderCommitted(ShardSnapshot),
    /// Sender saw `COMMIT_ACK`: the peer owns the state — settle the
    /// shard remote (re-ack).
    SenderAcked,
    /// Receiver journaled the verified state but never finished the
    /// adoption: reinstall from the journal — this side owns it.
    ReceiverDurable(ShardSnapshot),
}

/// The folded outcome of a replay.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Unresolved migrations, one fate per shard.
    pub open: BTreeMap<ShardId, ShardFate>,
    /// Shards whose **latest** resolution settled them on the peer
    /// (`J_RESOLVED_REMOTE` not later overridden). A durable restart
    /// replays the state WAL — which still remembers the shard was
    /// dropped — but without this set the endpoint would forget the
    /// shard lives remotely and leave it unroutable.
    pub resolved_remote: BTreeSet<ShardId>,
    /// Total well-formed entries read (diagnostics).
    pub entries: usize,
    /// Whether replay stopped at a torn tail (expected after a crash).
    pub torn_tail: bool,
}

impl JournalState {
    /// The open fate of `shard`, if any.
    pub fn fate(&self, shard: ShardId) -> Option<&ShardFate> {
        self.open.get(&shard)
    }
}

/// The append handle. One journal file per endpoint per process;
/// appends are serialized by an internal lock, and each marker append
/// ends with `fsync` before returning.
pub struct RecoveryJournal {
    file: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl std::fmt::Debug for RecoveryJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryJournal")
            .field("path", &self.path)
            .finish()
    }
}

/// Appends the entry checksum and frames `payload` into `w`.
fn append_entry(w: &mut impl Write, kind: u8, mut payload: Vec<u8>) -> std::io::Result<()> {
    let sum = wire::checksum(&payload);
    wire::put_u64(&mut payload, sum);
    wire::write_frame(w, kind, &payload).map_err(|e| match e {
        WireError::Io(kind) => std::io::Error::from(kind),
        other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
    })
}

/// Payload of a snapshot marker: shard, totals, end-to-end digest.
fn marker_payload(snapshot: &ShardSnapshot) -> Vec<u8> {
    let mut digest = Checksum::new();
    snapshot.fold_checksum(&mut digest);
    let mut out = Vec::with_capacity(28);
    wire::put_u32(&mut out, snapshot.shard.0);
    wire::put_u64(&mut out, snapshot.len() as u64);
    wire::put_u64(&mut out, snapshot.value_bytes());
    wire::put_u64(&mut out, digest.finish());
    out
}

impl RecoveryJournal {
    /// Opens (creating if absent) the journal at `path` for appending.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            file: Mutex::new(BufWriter::new(file)),
            path,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends snapshot chunks followed by a marker of `kind`, then
    /// fsyncs. The marker is the commit point: chunks without one are
    /// ignored by replay.
    fn append_snapshot_marker(&self, kind: u8, snapshot: &ShardSnapshot) -> std::io::Result<()> {
        let mut w = self.file.lock();
        if !snapshot.is_empty() {
            for chunk in snapshot.chunks(JOURNAL_CHUNK_BYTES) {
                append_entry(&mut *w, J_SNAP_CHUNK, chunk.encode())?;
            }
        }
        append_entry(&mut *w, kind, marker_payload(snapshot))?;
        w.flush()?;
        w.get_ref().sync_data()
    }

    /// Appends a shard-only marker, then fsyncs.
    fn append_shard_marker(&self, kind: u8, shard: ShardId) -> std::io::Result<()> {
        let mut payload = Vec::with_capacity(4);
        wire::put_u32(&mut payload, shard.0);
        let mut w = self.file.lock();
        append_entry(&mut *w, kind, payload)?;
        w.flush()?;
        w.get_ref().sync_data()
    }

    /// Sender: the extracted snapshot is durable; `OFFER` may leave.
    pub fn log_offer_sent(&self, snapshot: &ShardSnapshot) -> std::io::Result<()> {
        self.append_snapshot_marker(J_OFFER_SENT, snapshot)
    }

    /// Receiver: the verified inbound state is durable; install and
    /// `COMMIT_ACK` may proceed.
    pub fn log_state_durable(&self, snapshot: &ShardSnapshot) -> std::io::Result<()> {
        self.append_snapshot_marker(J_STATE_DURABLE, snapshot)
    }

    /// Sender: `COMMIT` is about to leave (opens the in-doubt window).
    pub fn log_commit_sent(&self, shard: ShardId) -> std::io::Result<()> {
        self.append_shard_marker(J_COMMIT_SENT, shard)
    }

    /// Sender: `COMMIT_ACK` arrived — the peer owns the state.
    pub fn log_ack_received(&self, shard: ShardId) -> std::io::Result<()> {
        self.append_shard_marker(J_ACK_RECEIVED, shard)
    }

    /// Terminal: the shard is settled local (restored or adopted).
    pub fn log_resolved_local(&self, shard: ShardId) -> std::io::Result<()> {
        self.append_shard_marker(J_RESOLVED_LOCAL, shard)
    }

    /// Terminal: the shard is settled remote (peer confirmed owner).
    pub fn log_resolved_remote(&self, shard: ShardId) -> std::io::Result<()> {
        self.append_shard_marker(J_RESOLVED_REMOTE, shard)
    }

    /// Replays this journal's file from the start (a fresh read handle;
    /// appends made so far are visible). See the module docs for torn
    /// tail vs mid-file corruption semantics.
    pub fn replay(&self) -> Result<JournalState, WireError> {
        replay_path(&self.path)
    }
}

/// Replays the journal at `path` without opening it for append — what a
/// restarted process does before deciding how to resolve each shard. A
/// missing file replays as empty (first run).
pub fn replay_path(path: impl AsRef<Path>) -> Result<JournalState, WireError> {
    let file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalState::default()),
        Err(e) => return Err(WireError::Io(e.kind())),
    };
    let mut r = BufReader::new(file);
    replay_stream(&mut r)
}

/// Chunks assembled for a shard while waiting for their marker.
#[derive(Default)]
struct PendingChunks {
    entries: Vec<(Key, Bytes)>,
    value_bytes: u64,
    digest: Checksum,
}

fn replay_stream(r: &mut impl Read) -> Result<JournalState, WireError> {
    let mut state = JournalState::default();
    let mut pending: BTreeMap<ShardId, PendingChunks> = BTreeMap::new();
    loop {
        let (kind, payload) = match wire::read_frame(r) {
            Ok(frame) => frame,
            Err(_) => {
                // Unreadable frame: either clean EOF or a torn tail —
                // both end the replay at the last durable entry. (A
                // torn frame also desyncs the stream, so there is
                // nothing to resync onto.)
                state.torn_tail = true;
                return Ok(state);
            }
        };
        // Entry checksum: the last 8 payload bytes cover the rest.
        let body = match payload.len().checked_sub(8) {
            Some(n) if wire::checksum(&payload[..n]) == read_u64_at(&payload, n) => &payload[..n],
            _ => {
                // A well-framed but corrupt entry: tolerate only as the
                // very last frame (torn write inside the payload).
                return match wire::read_frame(r) {
                    Err(_) => {
                        state.torn_tail = true;
                        Ok(state)
                    }
                    Ok(_) => Err(WireError::Corrupt("mid-journal entry checksum mismatch")),
                };
            }
        };
        state.entries += 1;
        match kind {
            J_SNAP_CHUNK => {
                let chunk = ShardSnapshot::decode(body)?;
                let slot = pending.entry(chunk.shard).or_default();
                chunk.fold_checksum(&mut slot.digest);
                slot.value_bytes += chunk.value_bytes();
                slot.entries.extend(chunk.entries);
            }
            J_OFFER_SENT | J_STATE_DURABLE => {
                let mut p = wire::ByteReader::new(body);
                let shard = ShardId(p.u32()?);
                let entries = p.u64()?;
                let value_bytes = p.u64()?;
                let digest = p.u64()?;
                let assembled = pending.remove(&shard).unwrap_or_default();
                let snapshot = ShardSnapshot {
                    shard,
                    entries: assembled.entries,
                };
                let mut whole = Checksum::new();
                snapshot.fold_checksum(&mut whole);
                if snapshot.len() as u64 != entries
                    || assembled.value_bytes != value_bytes
                    || whole.finish() != digest
                {
                    return Err(WireError::Corrupt("journal snapshot digest mismatch"));
                }
                let fate = if kind == J_OFFER_SENT {
                    ShardFate::SenderOffered(snapshot)
                } else {
                    ShardFate::ReceiverDurable(snapshot)
                };
                state.open.insert(shard, fate);
            }
            J_COMMIT_SENT => {
                let shard = read_shard(body)?;
                // Promote the offered snapshot into the in-doubt state;
                // a commit marker without an offer is corruption.
                match state.open.remove(&shard) {
                    Some(ShardFate::SenderOffered(s)) => {
                        state.open.insert(shard, ShardFate::SenderCommitted(s));
                    }
                    _ => return Err(WireError::Corrupt("commit marker without an offer entry")),
                }
            }
            J_ACK_RECEIVED => {
                let shard = read_shard(body)?;
                match state.open.remove(&shard) {
                    Some(ShardFate::SenderCommitted(_) | ShardFate::SenderOffered(_)) => {
                        state.open.insert(shard, ShardFate::SenderAcked);
                    }
                    _ => return Err(WireError::Corrupt("ack marker without a commit entry")),
                }
            }
            J_RESOLVED_LOCAL => {
                let shard = read_shard(body)?;
                state.open.remove(&shard);
                state.resolved_remote.remove(&shard);
            }
            J_RESOLVED_REMOTE => {
                let shard = read_shard(body)?;
                state.open.remove(&shard);
                state.resolved_remote.insert(shard);
            }
            _ => return Err(WireError::Corrupt("unknown journal entry kind")),
        }
    }
}

fn read_shard(body: &[u8]) -> Result<ShardId, WireError> {
    let mut p = wire::ByteReader::new(body);
    Ok(ShardId(p.u32()?))
}

fn read_u64_at(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(shard: u32, n: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard: ShardId(shard),
            entries: (0..n)
                .map(|k| (Key(k), Bytes::from(vec![(k % 251) as u8; 64])))
                .collect(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("elasticutor-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let state = replay_path("/nonexistent/elasticutor.journal").unwrap();
        assert!(state.open.is_empty());
        assert_eq!(state.entries, 0);
    }

    #[test]
    fn sender_lifecycle_folds_to_one_fate() {
        let path = tmp("sender");
        let j = RecoveryJournal::open(&path).unwrap();
        let s = snap(3, 20);
        j.log_offer_sent(&s).unwrap();
        match j.replay().unwrap().fate(ShardId(3)) {
            Some(ShardFate::SenderOffered(got)) => assert_eq!(got, &s),
            other => panic!("unexpected fate {other:?}"),
        }
        j.log_commit_sent(ShardId(3)).unwrap();
        match j.replay().unwrap().fate(ShardId(3)) {
            Some(ShardFate::SenderCommitted(got)) => assert_eq!(got, &s),
            other => panic!("unexpected fate {other:?}"),
        }
        j.log_ack_received(ShardId(3)).unwrap();
        assert!(matches!(
            j.replay().unwrap().fate(ShardId(3)),
            Some(ShardFate::SenderAcked)
        ));
        j.log_resolved_remote(ShardId(3)).unwrap();
        assert!(j.replay().unwrap().open.is_empty());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn receiver_durable_and_empty_snapshots() {
        let path = tmp("receiver");
        let j = RecoveryJournal::open(&path).unwrap();
        let s = snap(5, 9);
        j.log_state_durable(&s).unwrap();
        // Empty snapshot on another shard: marker only, no chunks.
        let empty = ShardSnapshot::empty(ShardId(6));
        j.log_offer_sent(&empty).unwrap();
        let state = j.replay().unwrap();
        match state.fate(ShardId(5)) {
            Some(ShardFate::ReceiverDurable(got)) => assert_eq!(got, &s),
            other => panic!("unexpected fate {other:?}"),
        }
        match state.fate(ShardId(6)) {
            Some(ShardFate::SenderOffered(got)) => assert!(got.is_empty()),
            other => panic!("unexpected fate {other:?}"),
        }
        j.log_resolved_local(ShardId(5)).unwrap();
        j.log_resolved_local(ShardId(6)).unwrap();
        assert!(j.replay().unwrap().open.is_empty());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn large_snapshot_chunks_and_survives() {
        let path = tmp("chunked");
        let j = RecoveryJournal::open(&path).unwrap();
        // ~1.3 MiB of values: several 256 KiB journal chunks.
        let s = ShardSnapshot {
            shard: ShardId(1),
            entries: (0..20u64)
                .map(|k| (Key(k), Bytes::from(vec![k as u8; 64 * 1024])))
                .collect(),
        };
        j.log_offer_sent(&s).unwrap();
        match j.replay().unwrap().fate(ShardId(1)) {
            Some(ShardFate::SenderOffered(got)) => assert_eq!(got, &s),
            other => panic!("unexpected fate {other:?}"),
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_truncation_point() {
        let path = tmp("torn");
        let j = RecoveryJournal::open(&path).unwrap();
        let s = snap(2, 12);
        j.log_offer_sent(&s).unwrap();
        let durable = std::fs::read(&path).unwrap();
        j.log_commit_sent(ShardId(2)).unwrap();
        let full = std::fs::read(&path).unwrap();
        drop(j);
        // Truncating anywhere inside the *last* entry must fall back to
        // the state as of the previous durable marker — never an error.
        for cut in durable.len()..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let state = replay_path(&path).unwrap();
            assert!(
                matches!(state.fate(ShardId(2)), Some(ShardFate::SenderOffered(_))),
                "cut at {cut}: commit marker should be dropped"
            );
            assert!(state.torn_tail);
        }
        // The intact file folds to the committed fate.
        std::fs::write(&path, &full).unwrap();
        assert!(matches!(
            replay_path(&path).unwrap().fate(ShardId(2)),
            Some(ShardFate::SenderCommitted(_))
        ));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mid_journal_corruption_is_a_typed_error() {
        let path = tmp("corrupt");
        let j = RecoveryJournal::open(&path).unwrap();
        j.log_offer_sent(&snap(1, 4)).unwrap();
        let first = std::fs::read(&path).unwrap().len();
        j.log_commit_sent(ShardId(1)).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the *first* entry (skip the 6-byte
        // frame header) while a valid entry still follows it.
        bytes[8] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(replay_path(&path).is_err(), "mid-journal flip must error");
        // The same flip in the final entry is a tolerated torn tail.
        let mut tail = std::fs::read(&path).unwrap();
        tail[8] ^= 0xFF; // restore first entry
        tail[first + 8] ^= 0xFF; // corrupt last entry
        std::fs::write(&path, &tail).unwrap();
        let state = replay_path(&path).unwrap();
        assert!(state.torn_tail);
        assert!(matches!(
            state.fate(ShardId(1)),
            Some(ShardFate::SenderOffered(_))
        ));
        std::fs::remove_file(path).unwrap();
    }
}
