//! The unified ingestion surface: one way in, at every layer.
//!
//! Before this module the runtime had four parallel front doors —
//! `submit`, `submit_batch`, `submit_routed`, `submit_batch_routed` —
//! re-implemented with slightly different semantics on
//! [`ElasticExecutor`](crate::ElasticExecutor),
//! [`Pipeline`](crate::Pipeline) and [`LiveDag`](crate::LiveDag), and
//! missing entirely on [`ExecutorGroup`](crate::ExecutorGroup). Sources
//! (TCP readers, file replay, generators) had to know which layer they
//! were feeding. This module collapses all of that into:
//!
//! * [`Ingest`] — the single entry trait every layer implements. Push a
//!   [`Record`] or a [`RecordBatch`]; the implementation hashes keys,
//!   routes shards and applies its own admission policy.
//! * [`Source`] — a pull-style producer of record batches. The runtime
//!   pumps it ([`spawn_source`]) so *pull* composes with *push* without
//!   the source knowing about threads, channels, or backpressure.
//! * [`Sink`] — the mirror image for egress: a consumer the runtime
//!   drives from an output channel ([`spawn_sink`]).
//!
//! Backpressure contract: [`Ingest::ingest_batch`] *blocks* until the
//! layer accepts the records (bounded channels / rings push back), while
//! [`Ingest::try_ingest_batch`] never blocks and returns the suffix that
//! was not accepted — the primitive the epoll ingress plane uses to turn
//! a slow DAG into muted sockets instead of unbounded buffers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::record::{Record, RecordBatch};

/// The one way to push records into an elastic layer.
///
/// Implemented by [`ElasticExecutor`](crate::ElasticExecutor) (routes to
/// the owning task), [`ExecutorGroup`](crate::ExecutorGroup) (routes
/// across rescaling instances), [`LiveDag`](crate::LiveDag) /
/// [`SourcePort`](crate::dag::SourcePort) (feeds a source operator's
/// ingress channel) and [`Pipeline`](crate::Pipeline) (feeds the first
/// stage). Trait-object safe: sources hold an `Arc<dyn Ingest>` and stay
/// agnostic of the layer behind it.
pub trait Ingest: Send + Sync {
    /// Pushes one record, blocking until it is accepted.
    fn ingest(&self, record: Record) {
        self.ingest_batch(vec![record]);
    }

    /// Pushes a batch in order, blocking until all records are accepted.
    /// Layers with a smaller internal batch bound split the batch; order
    /// is preserved.
    fn ingest_batch(&self, batch: RecordBatch);

    /// Pushes as much of `batch` as the layer will accept *without
    /// blocking*. `Ok(())` means everything was accepted; `Err(rest)`
    /// returns the not-yet-accepted **suffix** in original order — the
    /// accepted prefix is already in flight, so re-submitting `rest`
    /// later preserves FIFO.
    fn try_ingest_batch(&self, batch: RecordBatch) -> Result<(), RecordBatch>;

    /// Cumulative count of records this entry point has accepted —
    /// the λ (arrival-rate) observable the §4 controller differentiates.
    fn accepted(&self) -> u64;
}

/// Every `Arc<I>` ingests by delegating to `I`, so sources can hold
/// shared handles without a blanket-impl conflict.
impl<I: Ingest + ?Sized> Ingest for Arc<I> {
    fn ingest(&self, record: Record) {
        (**self).ingest(record);
    }
    fn ingest_batch(&self, batch: RecordBatch) {
        (**self).ingest_batch(batch);
    }
    fn try_ingest_batch(&self, batch: RecordBatch) -> Result<(), RecordBatch> {
        (**self).try_ingest_batch(batch)
    }
    fn accepted(&self) -> u64 {
        (**self).accepted()
    }
}

/// What a [`Source::pull`] produced.
#[derive(Debug)]
pub enum Pull {
    /// Records, in stream order. May be shorter than the requested max.
    Batch(RecordBatch),
    /// Nothing available right now; the pump backs off briefly and asks
    /// again. A live TCP tail or a throttled generator returns this.
    Idle,
    /// The stream is finished; the pump exits. A replayed file returns
    /// this at EOF.
    Done,
}

/// A pull-style record producer — the counterpart of [`Ingest`].
///
/// Implementations only produce data; the pump spawned by
/// [`spawn_source`] owns pacing, batching and backpressure. `pull` takes
/// `&mut self` — a source is single-threaded by construction, which is
/// what makes per-source FIFO trivial.
pub trait Source: Send + 'static {
    /// Produces up to `max` records, or reports [`Pull::Idle`] /
    /// [`Pull::Done`].
    fn pull(&mut self, max: usize) -> Pull;
}

/// Handle to a pump thread driving a [`Source`] into an [`Ingest`].
#[derive(Debug)]
pub struct SourceHandle {
    stop: Arc<AtomicBool>,
    pumped: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl SourceHandle {
    /// Records pumped into the ingest layer so far.
    pub fn pumped(&self) -> u64 {
        self.pumped.load(Ordering::Acquire)
    }

    /// Whether the pump thread has exited (source done or stopped).
    pub fn is_finished(&self) -> bool {
        self.thread.as_ref().is_none_or(|t| t.is_finished())
    }

    /// Waits for the source to report [`Pull::Done`]; returns the total
    /// record count pumped.
    pub fn join(mut self) -> u64 {
        if let Some(t) = self.thread.take() {
            t.join().expect("source pump panicked");
        }
        self.pumped()
    }

    /// Stops the pump at the next batch boundary and joins it; returns
    /// the total record count pumped.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            t.join().expect("source pump panicked");
        }
        self.pumped()
    }
}

impl Drop for SourceHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Spawns a pump thread that pulls `source` in batches of up to
/// `max_batch` and pushes them into `ingest` (blocking form, so a slow
/// downstream pushes back into the source's pacing). Returns a
/// [`SourceHandle`] to observe, stop, or await the pump.
pub fn spawn_source<S: Source>(
    name: &str,
    mut source: S,
    ingest: impl Ingest + 'static,
    max_batch: usize,
) -> SourceHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let pumped = Arc::new(AtomicU64::new(0));
    let max_batch = max_batch.max(1);
    let thread = {
        let stop = Arc::clone(&stop);
        let pumped = Arc::clone(&pumped);
        std::thread::Builder::new()
            .name(format!("source-{name}"))
            .spawn(move || {
                let mut idle_us: u64 = 50;
                while !stop.load(Ordering::Acquire) {
                    match source.pull(max_batch) {
                        Pull::Batch(batch) => {
                            idle_us = 50;
                            let n = batch.len() as u64;
                            if n == 0 {
                                continue;
                            }
                            ingest.ingest_batch(batch);
                            pumped.fetch_add(n, Ordering::AcqRel);
                        }
                        Pull::Idle => {
                            // Exponential backoff capped at 2 ms keeps an
                            // idle source cheap without adding visible
                            // latency when data resumes.
                            std::thread::sleep(Duration::from_micros(idle_us));
                            idle_us = (idle_us * 2).min(2_000);
                        }
                        Pull::Done => break,
                    }
                }
            })
            .expect("spawn source pump")
    };
    SourceHandle {
        stop,
        pumped,
        thread: Some(thread),
    }
}

/// A push-style record consumer — the egress mirror of [`Source`].
///
/// `consume` takes `&mut self`: one sink instance is driven by exactly
/// one pump thread, so sinks can buffer, write files, or keep running
/// aggregates without locking.
pub trait Sink: Send + 'static {
    /// Consumes one output batch (stream order).
    fn consume(&mut self, batch: RecordBatch);

    /// Flushes buffered output; called once when the stream ends.
    fn flush(&mut self) {}
}

/// Handle to a pump thread draining an output channel into a [`Sink`].
#[derive(Debug)]
pub struct SinkHandle<S> {
    thread: Option<JoinHandle<(S, u64)>>,
}

impl<S> SinkHandle<S> {
    /// Waits for the output channel to disconnect, then returns the sink
    /// (after [`Sink::flush`]) and the total record count consumed.
    pub fn join(mut self) -> (S, u64) {
        self.thread
            .take()
            .expect("sink already joined")
            .join()
            .expect("sink pump panicked")
    }
}

/// Spawns a pump thread that drains `rx` into `sink` until every sender
/// is dropped (typically: until the DAG is shut down), then flushes.
pub fn spawn_sink<S: Sink>(
    name: &str,
    rx: crossbeam::channel::Receiver<RecordBatch>,
    mut sink: S,
) -> SinkHandle<S> {
    let thread = std::thread::Builder::new()
        .name(format!("sink-{name}"))
        .spawn(move || {
            let mut consumed = 0u64;
            while let Ok(batch) = rx.recv() {
                consumed += batch.len() as u64;
                sink.consume(batch);
            }
            sink.flush();
            (sink, consumed)
        })
        .expect("spawn sink pump");
    SinkHandle {
        thread: Some(thread),
    }
}

/// A [`Source`] over an in-memory record list — the simplest way to
/// replay a fixed dataset through any [`Ingest`] layer, and the
/// reference implementation tests pump mechanics against.
#[derive(Debug)]
pub struct VecSource {
    records: std::vec::IntoIter<Record>,
}

impl VecSource {
    /// A source yielding `records` in order, then [`Pull::Done`].
    pub fn new(records: RecordBatch) -> Self {
        Self {
            records: records.into_iter(),
        }
    }
}

impl Source for VecSource {
    fn pull(&mut self, max: usize) -> Pull {
        let batch: RecordBatch = self.records.by_ref().take(max.max(1)).collect();
        if batch.is_empty() {
            Pull::Done
        } else {
            Pull::Batch(batch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use elasticutor_core::ids::Key;
    use parking_lot::Mutex;

    /// An Ingest that records everything and can simulate a full layer.
    struct Capture {
        got: Mutex<RecordBatch>,
        accepted: AtomicU64,
        cap: Option<usize>,
    }

    impl Capture {
        fn new(cap: Option<usize>) -> Arc<Self> {
            Arc::new(Self {
                got: Mutex::new(Vec::new()),
                accepted: AtomicU64::new(0),
                cap,
            })
        }
    }

    impl Ingest for Capture {
        fn ingest_batch(&self, batch: RecordBatch) {
            self.accepted
                .fetch_add(batch.len() as u64, Ordering::AcqRel);
            self.got.lock().extend(batch);
        }
        fn try_ingest_batch(&self, mut batch: RecordBatch) -> Result<(), RecordBatch> {
            let room = match self.cap {
                Some(cap) => cap.saturating_sub(self.got.lock().len()),
                None => batch.len(),
            };
            if room >= batch.len() {
                self.ingest_batch(batch);
                Ok(())
            } else {
                let rest = batch.split_off(room);
                self.ingest_batch(batch);
                Err(rest)
            }
        }
        fn accepted(&self) -> u64 {
            self.accepted.load(Ordering::Acquire)
        }
    }

    fn records(n: u64) -> RecordBatch {
        (0..n)
            .map(|i| Record::new(Key(i % 7), Bytes::new()).with_seq(i))
            .collect()
    }

    #[test]
    fn vec_source_pumps_everything_in_order() {
        let sink = Capture::new(None);
        let handle = spawn_source("t", VecSource::new(records(1000)), Arc::clone(&sink), 64);
        assert_eq!(handle.join(), 1000);
        let got = sink.got.lock();
        assert_eq!(got.len(), 1000);
        assert!(got.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(sink.accepted(), 1000);
    }

    #[test]
    fn default_ingest_wraps_single_record() {
        let sink = Capture::new(None);
        sink.ingest(Record::new(Key(1), Bytes::new()).with_seq(42));
        assert_eq!(sink.accepted(), 1);
        assert_eq!(sink.got.lock()[0].seq, 42);
    }

    #[test]
    fn try_ingest_returns_ordered_suffix() {
        let sink = Capture::new(Some(3));
        let rest = sink.try_ingest_batch(records(5)).unwrap_err();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].seq, 3);
        assert_eq!(rest[1].seq, 4);
        assert_eq!(sink.accepted(), 3);
    }

    #[test]
    fn source_handle_stop_halts_an_idle_source() {
        struct Forever;
        impl Source for Forever {
            fn pull(&mut self, _max: usize) -> Pull {
                Pull::Idle
            }
        }
        let sink = Capture::new(None);
        let handle = spawn_source("idle", Forever, sink, 8);
        assert_eq!(handle.stop(), 0);
    }

    #[test]
    fn sink_pump_drains_until_disconnect_and_flushes() {
        struct CountSink {
            n: u64,
            flushed: bool,
        }
        impl Sink for CountSink {
            fn consume(&mut self, batch: RecordBatch) {
                self.n += batch.len() as u64;
            }
            fn flush(&mut self) {
                self.flushed = true;
            }
        }
        let (tx, rx) = crossbeam::channel::unbounded();
        let handle = spawn_sink(
            "t",
            rx,
            CountSink {
                n: 0,
                flushed: false,
            },
        );
        tx.send(records(10)).unwrap();
        tx.send(records(5)).unwrap();
        drop(tx);
        let (sink, consumed) = handle.join();
        assert_eq!(consumed, 15);
        assert_eq!(sink.n, 15);
        assert!(sink.flushed);
    }
}
