//! Per-key FIFO verification.
//!
//! The §2.1 correctness requirement — records of one key are processed
//! in arrival order — is the invariant every elasticity mechanism in
//! this crate must preserve. [`FifoChecker`] is the shared watchdog the
//! integration tests and examples thread through their sink operators:
//! feed it each `(key, seq)` as the record passes, read back any
//! regressions at the end.

use std::collections::HashMap;

use elasticutor_core::ids::Key;
use parking_lot::Mutex;

/// Records per-key sequence numbers and logs every regression.
///
/// Thread-safe: one instance is shared by all task threads of a sink
/// operator. A violation is `(key, previously seen seq, offending
/// seq)` with `offending <= previous`.
#[derive(Default)]
pub struct FifoChecker {
    last_seq: Mutex<HashMap<u64, u64>>,
    violations: Mutex<Vec<(u64, u64, u64)>>,
}

impl FifoChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one record; returns `false` if it violated FIFO order
    /// for its key (the violation is also logged).
    pub fn observe(&self, key: Key, seq: u64) -> bool {
        let mut last = self.last_seq.lock();
        let ok = match last.get(&key.value()) {
            Some(&prev) if seq <= prev => {
                self.violations.lock().push((key.value(), prev, seq));
                false
            }
            _ => true,
        };
        last.insert(key.value(), seq);
        ok
    }

    /// All violations observed so far.
    pub fn violations(&self) -> Vec<(u64, u64, u64)> {
        self.violations.lock().clone()
    }

    /// Number of violations observed so far.
    pub fn violation_count(&self) -> usize {
        self.violations.lock().len()
    }

    /// Whether no violation has been observed.
    pub fn is_clean(&self) -> bool {
        self.violations.lock().is_empty()
    }

    /// Number of distinct keys observed.
    pub fn keys_seen(&self) -> usize {
        self.last_seq.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_is_clean() {
        let c = FifoChecker::new();
        for seq in 1..=5 {
            assert!(c.observe(Key(7), seq));
        }
        assert!(c.is_clean());
        assert_eq!(c.keys_seen(), 1);
    }

    #[test]
    fn regressions_and_duplicates_are_violations() {
        let c = FifoChecker::new();
        c.observe(Key(1), 5);
        assert!(!c.observe(Key(1), 5), "duplicate seq violates FIFO");
        assert!(!c.observe(Key(1), 3), "regression violates FIFO");
        assert_eq!(c.violations(), vec![(1, 5, 5), (1, 5, 3)]);
        assert_eq!(c.violation_count(), 2);
    }

    #[test]
    fn keys_are_independent() {
        let c = FifoChecker::new();
        c.observe(Key(1), 10);
        assert!(c.observe(Key(2), 1), "fresh key starts its own stream");
        assert!(c.is_clean());
    }
}
