//! Executor groups: one operator, `y` live [`ElasticExecutor`]
//! instances, resizable while records flow.
//!
//! The paper's premise (§2, Figure 3) is that an operator's executors
//! are a *set* whose size and shard assignment change at runtime. An
//! [`ExecutorGroup`] realizes that in-process: the operator's shard
//! space `0..z` is split across its instances by a consistent-hash
//! [`ShardInstanceMap`] (rendezvous hashing — a resize moves only ~1/n
//! of the shards), mirrored into a dense array of per-shard
//! `AtomicU32`s the data plane reads wait-free.
//!
//! # Shared output, shared operator, shared progress
//!
//! Every instance emits into **one** shared output channel (each holds
//! a clone of the same `Sender`), so downstream wiring — direct edges,
//! fan-out forwarders, sink receivers — is oblivious to the group's
//! size. All instances box a clone of one `Arc<dyn Operator>`: the same
//! sharing contract task threads inside a single executor already live
//! under (`process` takes `&self`, operators are `Send + Sync`). And
//! all instances signal one [`ProgressNotifier`], so a producer parked
//! on the group's summed `processed` count wakes on progress anywhere.
//!
//! # Live rescaling = the §3.3 handshake, in-process
//!
//! [`ExecutorGroup::scale_out`] adds an instance and migrates the
//! shards the rendezvous map awards it — each via the same
//! `begin_migration` → `adopt_install` → `complete_migration` →
//! `adopt_finish` sequence the cross-process transport drives, run here
//! by the rescaling thread while the pump keeps submitting:
//!
//! 1. `new.can_adopt(s)` — destination sanity check.
//! 2. `old.begin_migration(s)` — pause `s` at the old owner, drain
//!    every in-flight and ring-queued record of `s`, extract its state.
//!    New submits for `s` divert to the old owner's pause buffer; the
//!    pump never blocks.
//! 3. `new.adopt_install(snapshot)` — install the state, keep routing
//!    *closed* at the destination (local submits buffer).
//! 4. Flip the group router word for `s` — later submits reach the new
//!    instance (and buffer there, step 3).
//! 5. `old.complete_migration(s, forward)` — replay the old pause
//!    buffer through `forward` (a [`ElasticExecutor::deliver_to_owner`]
//!    closure that bypasses the destination's pause buffer), then mark
//!    `s` remote at the old instance so any straggler submit that read
//!    the router before the flip forwards the same way.
//! 6. `new.adopt_finish(s)` — flush the destination's buffered records
//!    *behind* the replays and reopen the fast path.
//!
//! Per-key FIFO holds throughout: the operator's single pump is the
//! only submitter, so for each shard the records split into "before the
//! flip" (old instance: processed, buffered-then-replayed, or
//! remote-forwarded — all reaching the new owner's task channel before
//! step 6's flush) and "after the flip" (buffered at the destination
//! until step 6, or ring-pushed after reopening — behind every earlier
//! channel send by watermark order). Conservation holds because every
//! record is processed at exactly one instance — the §3.3 machinery
//! never drops or duplicates.
//!
//! [`ExecutorGroup::scale_in`] is the mirror: drain every shard of the
//! victim to its next-best rendezvous owner (same handshake per shard,
//! which also flushes the victim's in-flight ring items), then halt the
//! victim's task threads. The halted instance stays in the group as a
//! retired husk so its monotonic `processed`/`emitted` counters keep
//! contributing to the group sums that quiescence checks compare.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use elasticutor_core::error::{Error, Result};
use elasticutor_core::ids::{ShardId, TaskId};
use elasticutor_core::instances::ShardInstanceMap;
use parking_lot::{Mutex, RwLock};

use crate::executor::{
    ElasticExecutor, ExecutorConfig, ExecutorStats, LoadSample, ProgressNotifier,
};
use crate::pipeline::BoxedOperator;
use crate::record::{Operator, RecordBatch};

/// One instance slot. Instance ids are append-only indices into the
/// group's instance vector; a retired instance keeps its slot (its
/// counters still feed the group sums) but is excluded from routing.
struct InstanceSlot {
    exec: Arc<ElasticExecutor<BoxedOperator>>,
    retired: bool,
}

/// One completed rescale, for observability and tests.
#[derive(Clone, Debug)]
pub struct RescaleEvent {
    /// `true` for scale-out, `false` for scale-in.
    pub grew: bool,
    /// The instance added or retired.
    pub instance: u32,
    /// Shards migrated by the §3.3 handshake.
    pub shards_moved: usize,
    /// Live instances after the rescale.
    pub live_after: usize,
}

/// Outcome of one [`ExecutorGroup::supervise`] pass.
#[derive(Clone, Debug, Default)]
pub struct SupervisionReport {
    /// Shards parked by this pass (panic threshold crossed).
    pub quarantined: Vec<ShardId>,
    /// Dead task threads reaped and replaced.
    pub respawned: usize,
    /// Flagged shards whose quarantine could not start (mid-protocol);
    /// they stay flagged by their counters and surface again.
    pub quarantine_failures: usize,
}

/// A live, resizable set of executor instances for one operator. See
/// the module docs for the routing and rescaling model.
pub struct ExecutorGroup {
    name: String,
    /// Per-instance config template (`output_capacity` is consumed once
    /// at group start — instances share the group channel).
    template: ExecutorConfig,
    operator: Arc<dyn Operator>,
    out_tx: Sender<RecordBatch>,
    out_rx: Receiver<RecordBatch>,
    progress: Arc<ProgressNotifier>,
    /// Dense wait-free shard→instance routing mirror, kept coherent
    /// with `map` by the rescale path (which owns the only writes).
    router: Box<[AtomicU32]>,
    /// The consistent-hash assignment (control plane). Held for the
    /// duration of a rescale, serializing concurrent rescales.
    map: Mutex<ShardInstanceMap>,
    /// Append-only instance table; read-locked by the data plane.
    instances: RwLock<Vec<InstanceSlot>>,
    rescales: Mutex<Vec<RescaleEvent>>,
}

impl ExecutorGroup {
    /// Starts a group of `parallelism` instances. The config is the
    /// per-instance template: each instance gets `initial_tasks` task
    /// threads and the full `num_shards`-slot routing table (shards it
    /// does not own simply never receive records).
    pub fn start(
        name: impl Into<String>,
        config: ExecutorConfig,
        operator: BoxedOperator,
        parallelism: u32,
    ) -> Self {
        assert!(
            parallelism > 0,
            "executor group needs at least one instance"
        );
        let (out_tx, out_rx) = match config.output_capacity {
            Some(cap) => bounded(cap),
            None => unbounded(),
        };
        let progress: Arc<ProgressNotifier> = Arc::default();
        let operator: Arc<dyn Operator> = Arc::from(operator);
        let map = ShardInstanceMap::new(config.num_shards, parallelism);
        let router: Box<[AtomicU32]> = (0..config.num_shards)
            .map(|s| AtomicU32::new(map.instance_of(s)))
            .collect();
        let instances = (0..parallelism)
            .map(|i| InstanceSlot {
                exec: Arc::new(ElasticExecutor::start_with_output(
                    // Each instance needs its own durable directory: a
                    // WAL is single-writer, and instance i's shards are
                    // disjoint from instance j's.
                    ExecutorConfig {
                        durability: config
                            .durability
                            .as_ref()
                            .map(|p| p.join(format!("instance-{i}"))),
                        ..config.clone()
                    },
                    Box::new(Arc::clone(&operator)) as BoxedOperator,
                    out_tx.clone(),
                    out_rx.clone(),
                    Arc::clone(&progress),
                )),
                retired: false,
            })
            .collect();
        Self {
            name: name.into(),
            template: config,
            operator,
            out_tx,
            out_rx,
            progress,
            router,
            map: Mutex::new(map),
            instances: RwLock::new(instances),
            rescales: Mutex::new(Vec::new()),
        }
    }

    /// The operator's name (from the DAG builder).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instance currently owning `shard` (wait-free read).
    #[inline]
    pub fn instance_of(&self, shard: ShardId) -> u32 {
        self.router[shard.index()].load(Ordering::Acquire)
    }

    /// A handle to instance `id` (live or retired).
    pub fn instance(&self, id: u32) -> Arc<ElasticExecutor<BoxedOperator>> {
        Arc::clone(&self.instances.read()[id as usize].exec)
    }

    /// The first live instance — the handle
    /// [`LiveDag::executor`](crate::dag::LiveDag::executor) hands out
    /// for manual task-granular elasticity.
    pub fn primary(&self) -> Arc<ElasticExecutor<BoxedOperator>> {
        let slots = self.instances.read();
        let slot = slots
            .iter()
            .find(|s| !s.retired)
            .expect("a group always has a live instance");
        Arc::clone(&slot.exec)
    }

    /// Live instance ids, ascending.
    pub fn live_instances(&self) -> Vec<u32> {
        self.instances
            .read()
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.retired)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Number of live instances.
    pub fn num_live(&self) -> usize {
        self.instances.read().iter().filter(|s| !s.retired).count()
    }

    /// Total instance slots ever created (live + retired).
    pub fn num_slots(&self) -> usize {
        self.instances.read().len()
    }

    /// The group's shared output receiver.
    pub fn outputs(&self) -> &Receiver<RecordBatch> {
        &self.out_rx
    }

    /// The progress notifier shared by every instance.
    pub fn progress(&self) -> &Arc<ProgressNotifier> {
        &self.progress
    }

    /// Records fully processed, summed across all instances (monotonic:
    /// retired husks keep contributing their history).
    pub fn processed_count(&self) -> u64 {
        self.instances
            .read()
            .iter()
            .map(|s| s.exec.processed_count())
            .sum()
    }

    /// Records emitted downstream, summed across all instances.
    pub fn emitted_count(&self) -> u64 {
        self.instances
            .read()
            .iter()
            .map(|s| s.exec.emitted_count())
            .sum()
    }

    /// Cumulative load counters summed across instances — the group is
    /// one λ/μ measurement point for the live controller.
    pub fn load_sample(&self) -> LoadSample {
        let mut sum = LoadSample::default();
        for slot in self.instances.read().iter() {
            let s = slot.exec.load_sample();
            sum.arrivals += s.arrivals;
            sum.processed += s.processed;
            sum.busy_ns += s.busy_ns;
            sum.state_bytes += s.state_bytes;
        }
        sum
    }

    /// Aggregated statistics: counters summed, latency histograms and
    /// reassignment logs merged across every instance (live and
    /// retired), `tasks` the live total.
    pub fn stats(&self) -> ExecutorStats {
        let slots = self.instances.read();
        let mut iter = slots.iter();
        let first = iter.next().expect("a group always has an instance");
        let mut agg = first.exec.stats();
        for slot in iter {
            let s = slot.exec.stats();
            agg.processed += s.processed;
            agg.operator_panics += s.operator_panics;
            agg.tasks += s.tasks;
            agg.latency.merge(&s.latency);
            agg.reassignments.extend(s.reassignments);
            agg.state_bytes += s.state_bytes;
        }
        agg
    }

    /// Live task threads across all live instances (the group's "core"
    /// count as the controller sees it).
    pub fn total_tasks(&self) -> usize {
        self.instances
            .read()
            .iter()
            .filter(|s| !s.retired)
            .map(|s| s.exec.tasks().len())
            .sum()
    }

    /// Adds a task thread to the live instance with the fewest tasks
    /// (the controller's core-grant primitive).
    pub fn add_task(&self) -> Result<TaskId> {
        let slots = self.instances.read();
        let target = slots
            .iter()
            .filter(|s| !s.retired)
            .min_by_key(|s| s.exec.tasks().len())
            .ok_or_else(|| Error::Infeasible("no live instance".into()))?;
        target.exec.add_task()
    }

    /// Removes the newest task from the live instance with the most
    /// tasks, never dropping an instance below one task (the
    /// controller's core-revocation primitive). Returns `false` when
    /// every live instance is already at one task.
    pub fn remove_task_newest(&self) -> bool {
        let slots = self.instances.read();
        let Some(victim) = slots
            .iter()
            .filter(|s| !s.retired && s.exec.tasks().len() > 1)
            .max_by_key(|s| s.exec.tasks().len())
        else {
            return false;
        };
        let tasks = victim.exec.tasks();
        match tasks.last() {
            Some(&t) if tasks.len() > 1 => victim.exec.remove_task(t).is_ok(),
            _ => false,
        }
    }

    /// Runs an intra-executor §3.1 rebalance pass on every live
    /// instance; returns the total shard moves initiated.
    pub fn rebalance(&self) -> usize {
        self.instances
            .read()
            .iter()
            .filter(|s| !s.retired)
            .map(|s| s.exec.rebalance())
            .sum()
    }

    /// Completed rescale events, oldest first.
    pub fn rescale_log(&self) -> Vec<RescaleEvent> {
        self.rescales.lock().clone()
    }

    /// One supervision pass over every live instance: reaps and
    /// replaces dead task threads
    /// ([`ElasticExecutor::respawn_dead_tasks`]) and parks every shard
    /// the instances flagged as poisonous
    /// ([`ElasticExecutor::take_quarantine_requests`] →
    /// [`ElasticExecutor::quarantine_shard`]). Meant to be called
    /// periodically from a control thread — e.g. alongside the
    /// controller's sampling tick; it blocks on task flush markers and
    /// must not run on a task thread.
    pub fn supervise(&self) -> SupervisionReport {
        // Snapshot the live executors first: quarantining blocks on a
        // flush marker and must not hold the instances lock against a
        // concurrent rescale.
        let live: Vec<Arc<ElasticExecutor<BoxedOperator>>> = {
            let instances = self.instances.read();
            instances
                .iter()
                .filter(|s| !s.retired)
                .map(|s| Arc::clone(&s.exec))
                .collect()
        };
        let mut report = SupervisionReport::default();
        for exec in live {
            report.respawned += exec.respawn_dead_tasks();
            for shard in exec.take_quarantine_requests() {
                match exec.quarantine_shard(shard) {
                    Ok(()) => report.quarantined.push(shard),
                    // Shard already mid-protocol (rescale migration in
                    // flight) or re-flagged concurrently: skip — the
                    // counter stays above threshold, so it cannot be
                    // re-requested and silently forgotten.
                    Err(_) => report.quarantine_failures += 1,
                }
            }
        }
        report
    }

    /// All shards currently quarantined, across live instances.
    pub fn quarantined_shards(&self) -> Vec<ShardId> {
        self.instances
            .read()
            .iter()
            .filter(|s| !s.retired)
            .flat_map(|s| s.exec.quarantined_shards())
            .collect()
    }

    /// Releases a quarantined shard on whichever live instance parked
    /// it. Errors with [`Error::UnknownShard`] if no instance holds it.
    pub fn release_quarantined(&self, shard: ShardId) -> Result<()> {
        let live: Vec<Arc<ElasticExecutor<BoxedOperator>>> = {
            let instances = self.instances.read();
            instances
                .iter()
                .filter(|s| !s.retired)
                .map(|s| Arc::clone(&s.exec))
                .collect()
        };
        for exec in live {
            if exec.quarantined_shards().contains(&shard) {
                return exec.release_quarantined(shard);
            }
        }
        Err(Error::UnknownShard(shard))
    }

    /// Adds a live instance and migrates the shards the rendezvous map
    /// awards it (~`z / (n+1)`), each through the in-process §3.3
    /// handshake — records keep flowing throughout. Returns the new
    /// instance id. Serializes with other rescales.
    pub fn scale_out(&self) -> Result<u32> {
        let mut map = self.map.lock();
        let new_id = self.num_slots() as u32;
        let new_exec = Arc::new(ElasticExecutor::start_with_output(
            ExecutorConfig {
                output_capacity: None,
                durability: self
                    .template
                    .durability
                    .as_ref()
                    .map(|p| p.join(format!("instance-{new_id}"))),
                ..self.template.clone()
            },
            Box::new(Arc::clone(&self.operator)) as BoxedOperator,
            self.out_tx.clone(),
            self.out_rx.clone(),
            Arc::clone(&self.progress),
        ));
        self.instances.write().push(InstanceSlot {
            exec: Arc::clone(&new_exec),
            retired: false,
        });
        let moves = map.add_instance(new_id);
        let mut moved = 0usize;
        for mv in &moves {
            let from = self.instance(mv.from);
            self.migrate_shard(&from, &new_exec, new_id, ShardId(mv.shard))?;
            moved += 1;
        }
        self.rescales.lock().push(RescaleEvent {
            grew: true,
            instance: new_id,
            shards_moved: moved,
            live_after: self.num_live(),
        });
        Ok(new_id)
    }

    /// Retires the highest-id live instance: migrates every shard it
    /// owns to its next-best rendezvous owner (draining the victim's
    /// in-flight ring items shard by shard), then halts its task
    /// threads. The husk stays in the group so its counters keep
    /// feeding the sums. Returns the retired id; errors when only one
    /// live instance remains.
    pub fn scale_in(&self) -> Result<u32> {
        let victim = *self
            .live_instances()
            .last()
            .ok_or_else(|| Error::Infeasible("no live instance".into()))?;
        self.scale_in_instance(victim)
    }

    /// Retires a specific live instance (see [`Self::scale_in`]).
    pub fn scale_in_instance(&self, victim: u32) -> Result<u32> {
        let mut map = self.map.lock();
        if map.live_instances().len() <= 1 {
            return Err(Error::Infeasible(format!(
                "group {} cannot retire its last instance",
                self.name
            )));
        }
        if !map.live_instances().contains(&victim) {
            return Err(Error::Infeasible(format!(
                "instance {victim} of group {} is not live",
                self.name
            )));
        }
        let moves = map.remove_instance(victim);
        let from = self.instance(victim);
        let mut moved = 0usize;
        for mv in &moves {
            let to = self.instance(mv.to);
            self.migrate_shard(&from, &to, mv.to, ShardId(mv.shard))?;
            moved += 1;
        }
        // Every owned shard is gone and flushed; stop the victim's task
        // threads. The slot stays (counters keep contributing), marked
        // retired so routing and task grants skip it.
        from.halt_shared();
        self.instances.write()[victim as usize].retired = true;
        self.rescales.lock().push(RescaleEvent {
            grew: false,
            instance: victim,
            shards_moved: moved,
            live_after: self.num_live(),
        });
        Ok(victim)
    }

    /// One in-process §3.3 migration: moves `shard` (with its state and
    /// buffered records) from `from` to `to`, flipping the group router
    /// mid-handshake. See the module docs for the six-step sequence and
    /// its FIFO argument.
    fn migrate_shard(
        &self,
        from: &Arc<ElasticExecutor<BoxedOperator>>,
        to: &Arc<ElasticExecutor<BoxedOperator>>,
        to_id: u32,
        shard: ShardId,
    ) -> Result<()> {
        to.can_adopt(shard)?;
        let snapshot = from.begin_migration(shard)?;
        // `adopt_install` consumes the snapshot; keep a copy so a
        // refusal (which cannot normally happen in-process — the
        // destination was just checked and nothing routes to it) can
        // restore the source exactly.
        if let Err(e) = to.adopt_install(snapshot.clone()) {
            from.abort_migration(snapshot)?;
            return Err(e);
        }
        // Flip the router: later pump submits land at the destination
        // (buffering there until `adopt_finish`).
        self.router[shard.index()].store(to_id, Ordering::Release);
        // Replay the source's pause buffer straight to the owner task,
        // and leave a forwarder behind for straggler submits that read
        // the router pre-flip. The closure holds a `Weak` so a retired
        // husk's forwarder never keeps the destination alive at
        // shutdown.
        let target = Arc::downgrade(to);
        from.complete_migration(
            shard,
            Arc::new(move |s, r| {
                if let Some(t) = target.upgrade() {
                    let _ = t.deliver_to_owner(s, r);
                }
            }),
            || {},
        )?;
        to.adopt_finish(shard)
    }

    /// Tears the group down, consuming it: every instance is shut down
    /// (retired husks are already halted — their stats are folded in),
    /// and the aggregate statistics are returned. `degraded` reports
    /// whether any live instance had a foreign handle still alive and
    /// had to be halted in place instead of consumed.
    pub(crate) fn dismantle(self) -> (ExecutorStats, bool) {
        let Self {
            out_tx,
            out_rx,
            instances,
            ..
        } = self;
        // Drop the group's channel ends first so instance shutdowns can
        // disconnect the shared output channel once the last clone goes.
        drop(out_tx);
        drop(out_rx);
        let mut degraded = false;
        let mut agg: Option<ExecutorStats> = None;
        for slot in instances.into_inner() {
            let stats = match Arc::try_unwrap(slot.exec) {
                Ok(exec) => exec.shutdown(),
                Err(shared) => {
                    // Retired husks are already halted — `halt_shared`
                    // is idempotent and just rebuilds their stats; only
                    // a *live* instance kept alive by a foreign handle
                    // degrades the teardown.
                    if !slot.retired {
                        degraded = true;
                    }
                    shared.halt_shared()
                }
            };
            agg = Some(match agg {
                None => stats,
                Some(mut a) => {
                    a.processed += stats.processed;
                    a.operator_panics += stats.operator_panics;
                    a.tasks += stats.tasks;
                    a.latency.merge(&stats.latency);
                    a.reassignments.extend(stats.reassignments);
                    a.state_bytes += stats.state_bytes;
                    a
                }
            });
        }
        (agg.expect("a group always has an instance"), degraded)
    }

    /// Halts every live instance in place without consuming the group —
    /// the degraded teardown used when a foreign `Arc` of the whole
    /// group is still alive. Returns the aggregate statistics.
    pub(crate) fn halt_in_place(&self) -> ExecutorStats {
        for slot in self.instances.read().iter() {
            slot.exec.halt_shared();
        }
        self.stats()
    }
}

/// The unified entry surface (see [`crate::ingest`]): key → shard by
/// the stable hash, shard → instance by the wait-free router, then the
/// owning instance's routed fast path. Safe under a concurrent rescale:
/// a record routed to an instance that just lost the shard lands in the
/// §3.3 pause buffer and is flushed to the new owner by the migration.
impl crate::ingest::Ingest for ExecutorGroup {
    fn ingest(&self, record: crate::record::Record) {
        let shard = ShardId(elasticutor_core::hash::key_to_shard(
            record.key.value(),
            self.template.num_shards,
        ));
        let owner = self.instance_of(shard);
        self.instance(owner).ingest_routed(shard, record);
    }

    /// Records are bucketed per owning instance — one routed-batch call
    /// each — preserving order within every bucket. Per-key FIFO holds
    /// because a key's shard is stable and a shard's records stay in one
    /// bucket per call.
    fn ingest_batch(&self, batch: RecordBatch) {
        let num_shards = self.template.num_shards;
        let mut buckets: Vec<(u32, Vec<(ShardId, crate::record::Record)>)> = Vec::new();
        for record in batch {
            let shard = ShardId(elasticutor_core::hash::key_to_shard(
                record.key.value(),
                num_shards,
            ));
            let owner = self.instance_of(shard);
            match buckets.iter_mut().find(|(o, _)| *o == owner) {
                Some((_, bucket)) => bucket.push((shard, record)),
                None => buckets.push((owner, vec![(shard, record)])),
            }
        }
        for (owner, bucket) in buckets {
            self.instance(owner).ingest_batch_routed(bucket);
        }
    }

    /// Group admission never parks (instances absorb bursts in their
    /// rings and pause buffers), so this never rejects.
    fn try_ingest_batch(&self, batch: RecordBatch) -> std::result::Result<(), RecordBatch> {
        crate::ingest::Ingest::ingest_batch(self, batch);
        Ok(())
    }

    fn accepted(&self) -> u64 {
        self.load_sample().arrivals
    }
}

impl std::fmt::Debug for ExecutorGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorGroup")
            .field("name", &self.name)
            .field("live", &self.num_live())
            .field("slots", &self.num_slots())
            .field("shards", &self.template.num_shards)
            .finish()
    }
}
