//! A live multi-operator elastic pipeline.
//!
//! Wires N [`ElasticExecutor`]s into a chain (source → operators → sink)
//! over crossbeam channels, with **bounded-queue backpressure** between
//! stages: each stage admits at most `stage_capacity` in-flight records
//! (submitted but not yet processed); the forwarder feeding it blocks
//! until the stage drains, and the stall propagates upstream hop by hop
//! until [`Pipeline::submit`] itself blocks — the live analog of the
//! simulated engine's high/low-watermark source pausing.
//!
//! Topology scope: a linear chain. Operators can still fan records out
//! in *volume* (one input → many outputs) — what is fixed is the
//! stage-to-stage wiring, which is exactly the shape of the paper's
//! micro-benchmark (generator → calculator) and SSE (transactor →
//! analytics) topologies. The stage graph is static; **capacity is
//! not**: every stage is an elastic executor whose task threads can be
//! grown, shrunk, and rebalanced while records flow, either explicitly
//! through [`Pipeline::executor`] handles or automatically by the
//! [`LiveController`](crate::controller::LiveController).
//!
//! Per-key FIFO order holds end to end: within a stage the two-tier
//! routing table serializes a key's records through one task at a time
//! (the §3.3 protocol preserves order across shard moves), task threads
//! emit outputs in processing order, and a single forwarder thread per
//! hop preserves channel order between stages.
//!
//! Channels carry [`RecordBatch`]es, not single records: task threads
//! emit each processed batch's outputs as one send, and every pump
//! drains up to [`PipelineBuilder::max_batch`] records per wakeup before
//! handing them to the next stage through one amortized
//! `submit_batch`. Batching never reorders — batches preserve arrival
//! order and per-key order is per-shard order, which batch grouping
//! respects.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::controller::{ControllerConfig, ControllerEvent, ControllerHandle, LiveController};
use crate::executor::{ElasticExecutor, ExecutorConfig, ExecutorStats};
use crate::record::{Operator, Record, RecordBatch};

/// A type-erased operator, letting one pipeline mix operator types.
pub type BoxedOperator = Box<dyn Operator>;

/// One stage awaiting construction.
struct StageSpec {
    name: String,
    config: ExecutorConfig,
    operator: BoxedOperator,
}

/// Builder for [`Pipeline`].
pub struct PipelineBuilder {
    stages: Vec<StageSpec>,
    stage_capacity: usize,
    max_batch: usize,
    controller: Option<ControllerConfig>,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineBuilder {
    /// Starts an empty builder with the default per-stage capacity.
    pub fn new() -> Self {
        Self {
            stages: Vec::new(),
            stage_capacity: 4096,
            max_batch: 64,
            controller: None,
        }
    }

    /// Appends a stage (order of calls = order in the chain).
    pub fn stage(
        mut self,
        name: impl Into<String>,
        config: ExecutorConfig,
        operator: impl Operator,
    ) -> Self {
        self.stages.push(StageSpec {
            name: name.into(),
            config,
            operator: Box::new(operator),
        });
        self
    }

    /// Sets the bounded in-flight budget per stage: each stage admits at
    /// most this many submitted-but-unprocessed **records** (enforced by
    /// its pump). The ingress and inter-stage channels are bounded to
    /// the same number of **batch slots**; ingress slots and pump
    /// submissions hold at most [`Self::max_batch`] records each, and a
    /// task emits one output batch per input batch, so the records
    /// buffered per hop are bounded by `stage_capacity × max_batch ×
    /// fanout` (fanout = the operator's output amplification, 1 for
    /// filters/maps) and the stall still propagates to
    /// [`Pipeline::submit`].
    pub fn stage_capacity(mut self, capacity: usize) -> Self {
        self.stage_capacity = capacity.max(1);
        self
    }

    /// Sets the batch amortization window: the record count at which a
    /// pump stops coalescing inbound batches per wakeup, and the cap on
    /// each ingress slot and per-pump stage submission. Since
    /// coalescing stops only after crossing the threshold, a pump's
    /// hand can transiently hold up to `max_batch − 1` records plus one
    /// inbound batch (itself up to `max_batch × fanout` records when
    /// the upstream operator amplifies volume). Larger windows amortize
    /// channel and clock costs further but let a pump hold more in hand
    /// while backpressured; 1 disables pump-side batching.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Attaches a [`LiveController`] that reallocates task threads
    /// across stages while the pipeline runs.
    pub fn controller(mut self, config: ControllerConfig) -> Self {
        self.controller = Some(config);
        self
    }

    /// Starts every stage, the forwarder threads, and (if configured)
    /// the controller.
    ///
    /// # Panics
    ///
    /// Panics if no stage was added.
    pub fn build(self) -> Pipeline {
        assert!(!self.stages.is_empty(), "pipeline needs at least one stage");
        let mut stages = Vec::with_capacity(self.stages.len());
        let mut names = Vec::with_capacity(self.stages.len());
        let last = self.stages.len() - 1;
        for (i, mut spec) in self.stages.into_iter().enumerate() {
            // Bound intermediate output channels so a stalled downstream
            // pump blocks the emitting task threads — that is what makes
            // backpressure propagate upstream hop by hop. The last
            // stage's outputs go to the user and stay as configured
            // (unbounded by default).
            if i < last && spec.config.output_capacity.is_none() {
                spec.config.output_capacity = Some(self.stage_capacity);
            }
            names.push(spec.name);
            stages.push(Arc::new(ElasticExecutor::start(spec.config, spec.operator)));
        }
        let submitted: Vec<Arc<AtomicU64>> = (0..stages.len())
            .map(|_| Arc::new(AtomicU64::new(0)))
            .collect();

        // Ingress: a bounded channel so `submit` itself backpressures
        // once the first stage and the channel are both full.
        let (ingress_tx, ingress_rx) = bounded::<RecordBatch>(self.stage_capacity);

        // One forwarder ("pump") per stage: pump i moves records from
        // the previous hop (ingress channel or stage i-1's outputs) into
        // stage i, blocking while stage i is at capacity.
        let mut pumps = Vec::with_capacity(stages.len());
        for (i, stage) in stages.iter().enumerate() {
            let source = if i == 0 {
                ingress_rx.clone()
            } else {
                stages[i - 1].outputs().clone()
            };
            let stage = Arc::clone(stage);
            let counter = Arc::clone(&submitted[i]);
            let capacity = self.stage_capacity as u64;
            let max_batch = self.max_batch;
            let handle = std::thread::Builder::new()
                .name(format!("pipeline-pump-{i}"))
                .spawn(move || pump_loop(source, stage, counter, capacity, max_batch))
                .expect("spawn pump thread");
            pumps.push(handle);
        }

        let sink_rx = stages.last().expect("nonempty").outputs().clone();
        let controller = self
            .controller
            .map(|config| LiveController::spawn(config, stages.clone(), names.clone()));

        Pipeline {
            stages,
            names,
            submitted,
            ingress_tx: Some(ingress_tx),
            sink_rx,
            pumps,
            controller,
            ingress_accepted: AtomicU64::new(0),
            max_batch: self.max_batch,
        }
    }
}

/// The body of one forwarder thread: previous hop → stage `i`.
fn pump_loop(
    source: Receiver<RecordBatch>,
    stage: Arc<ElasticExecutor<BoxedOperator>>,
    submitted: Arc<AtomicU64>,
    capacity: u64,
    max_batch: usize,
) {
    // Records this pump has handed to the stage; `pushed − processed`
    // is the stage's in-flight count (this pump is its only feeder).
    let mut pushed = 0u64;
    while let Ok(batch) = source.recv() {
        let mut pending = batch;
        // Drain-up-to-N: opportunistically coalesce whatever else is
        // already queued, amortizing the downstream submit.
        while pending.len() < max_batch {
            match source.try_recv() {
                Ok(more) => pending.extend(more),
                Err(_) => break,
            }
        }
        // Count the records as in flight *before* waiting: quiescence
        // checks must see them somewhere at all times.
        submitted.fetch_add(pending.len() as u64, Ordering::AcqRel);
        // Bounded-queue backpressure: feed the stage only as capacity
        // frees up, holding the rest in hand (and not reading the
        // upstream channel, which then fills and blocks the previous
        // stage).
        let mut pending = std::collections::VecDeque::from(pending);
        while !pending.is_empty() {
            let room = capacity.saturating_sub(pushed.saturating_sub(stage.processed_count()));
            if room == 0 {
                std::thread::sleep(Duration::from_micros(50));
                continue;
            }
            // Cap each stage submission at max_batch so task-level
            // batches (and thus emitted batches) stay bounded by it.
            let take = (room as usize).min(max_batch).min(pending.len());
            stage.submit_batch(pending.drain(..take));
            pushed += take as u64;
        }
    }
    // Upstream hung up (pipeline shutting down): exit after having
    // forwarded everything that was in the channel.
}

/// Per-stage snapshot returned by [`Pipeline::stage_stats`].
#[derive(Clone, Debug)]
pub struct StageStats {
    /// Stage name (from the builder).
    pub name: String,
    /// Records handed to the stage by its pump.
    pub submitted: u64,
    /// Executor statistics.
    pub stats: ExecutorStats,
}

/// A running multi-operator elastic pipeline. See the module docs.
pub struct Pipeline {
    stages: Vec<Arc<ElasticExecutor<BoxedOperator>>>,
    names: Vec<String>,
    /// Records handed to each stage by its pump (monotonic).
    submitted: Vec<Arc<AtomicU64>>,
    /// `None` once `shutdown` begins.
    ingress_tx: Option<Sender<RecordBatch>>,
    sink_rx: Receiver<RecordBatch>,
    pumps: Vec<JoinHandle<()>>,
    controller: Option<ControllerHandle>,
    ingress_accepted: AtomicU64,
    /// Batch-size ceiling per ingress channel slot (see
    /// [`PipelineBuilder::max_batch`]).
    max_batch: usize,
}

impl Pipeline {
    /// Starts building a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::new()
    }

    /// Feeds a record into the first stage. Blocks when the pipeline is
    /// backpressured (first stage at capacity and ingress channel full).
    ///
    /// Each call sends a one-record batch (one small allocation); a
    /// high-rate source should accumulate and use [`Self::submit_batch`]
    /// instead, which amortizes both the allocation and the channel
    /// synchronization.
    pub fn submit(&self, record: Record) {
        self.ingress_accepted.fetch_add(1, Ordering::AcqRel);
        self.ingress_tx
            .as_ref()
            .expect("pipeline is running")
            .send(vec![record])
            .expect("ingress pump alive");
    }

    /// Feeds a batch into the first stage through amortized channel
    /// sends — the ingress for high-rate sources. Batches larger than
    /// the builder's [`max_batch`](PipelineBuilder::max_batch) are split
    /// so one ingress channel slot never holds more than `max_batch`
    /// records (keeping the buffering bound of
    /// [`stage_capacity`](PipelineBuilder::stage_capacity) honest).
    /// Blocks like [`Self::submit`] when backpressured; empty batches
    /// are ignored.
    pub fn submit_batch(&self, batch: RecordBatch) {
        if batch.is_empty() {
            return;
        }
        self.ingress_accepted
            .fetch_add(batch.len() as u64, Ordering::AcqRel);
        let tx = self.ingress_tx.as_ref().expect("pipeline is running");
        if batch.len() <= self.max_batch {
            tx.send(batch).expect("ingress pump alive");
            return;
        }
        let mut chunk = Vec::with_capacity(self.max_batch);
        for record in batch {
            chunk.push(record);
            if chunk.len() == self.max_batch {
                let full = std::mem::replace(&mut chunk, Vec::with_capacity(self.max_batch));
                tx.send(full).expect("ingress pump alive");
            }
        }
        if !chunk.is_empty() {
            tx.send(chunk).expect("ingress pump alive");
        }
    }

    /// The output stream of the last stage, in batches (flatten for a
    /// per-record view; batch order is processing order).
    pub fn outputs(&self) -> &Receiver<RecordBatch> {
        &self.sink_rx
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Stage names, in chain order.
    pub fn stage_names(&self) -> &[String] {
        &self.names
    }

    /// Direct handle to stage `i`'s executor (manual elasticity:
    /// `add_task`, `remove_task`, `rebalance`, `reassign_shard`).
    ///
    /// Cloning the `Arc` is fine for driving elasticity from other
    /// threads, but a clone still alive when [`Self::shutdown`] runs
    /// degrades that stage's teardown: its tasks are halted in place
    /// and its forwarder thread is detached rather than joined (it
    /// exits when the last clone drops).
    pub fn executor(&self, i: usize) -> &Arc<ElasticExecutor<BoxedOperator>> {
        &self.stages[i]
    }

    /// Live task-thread count per stage (the "core" allocation).
    pub fn cores_per_stage(&self) -> Vec<usize> {
        self.stages.iter().map(|s| s.tasks().len()).collect()
    }

    /// Per-stage statistics snapshots.
    pub fn stage_stats(&self) -> Vec<StageStats> {
        self.stages
            .iter()
            .zip(&self.names)
            .zip(&self.submitted)
            .map(|((stage, name), submitted)| StageStats {
                name: name.clone(),
                submitted: submitted.load(Ordering::Acquire),
                stats: stage.stats(),
            })
            .collect()
    }

    /// Events logged by the attached controller (empty when none).
    pub fn controller_log(&self) -> Vec<ControllerEvent> {
        self.controller
            .as_ref()
            .map_or_else(Vec::new, ControllerHandle::log)
    }

    /// Whether every submitted record has been processed through every
    /// stage and no record sits in any inter-stage channel.
    ///
    /// Uses monotonic counters only, so a `true` from a single call is
    /// trustworthy provided no concurrent `submit` is racing it:
    /// ingress-accepted = stage-0 submitted = stage-0 processed, and for
    /// each hop, stage i's emitted = stage i+1's submitted = processed.
    pub fn is_quiescent(&self) -> bool {
        if self.ingress_accepted.load(Ordering::Acquire)
            != self.submitted[0].load(Ordering::Acquire)
        {
            return false;
        }
        for (i, stage) in self.stages.iter().enumerate() {
            if self.submitted[i].load(Ordering::Acquire) != stage.processed_count() {
                return false;
            }
            if i + 1 < self.stages.len()
                && stage.emitted_count() != self.submitted[i + 1].load(Ordering::Acquire)
            {
                return false;
            }
        }
        true
    }

    /// Blocks until the pipeline is quiescent (all submitted records
    /// fully processed end to end).
    pub fn drain(&self) {
        while !self.is_quiescent() {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stops the controller, drains every stage in order, shuts the
    /// executors down, and returns final per-stage statistics.
    pub fn shutdown(mut self) -> Vec<StageStats> {
        // 1. Controller first: it holds executor handles and must not
        //    fight the teardown with grants/revocations.
        if let Some(controller) = self.controller.take() {
            controller.stop();
        }
        // 2. Close ingress; pump 0 forwards what is buffered, then exits.
        drop(self.ingress_tx.take());
        let mut pumps = std::mem::take(&mut self.pumps).into_iter();
        let pump0 = pumps.next().expect("one pump per stage");
        pump0.join().expect("pump 0 exits cleanly");
        // 3. Walk the chain: once stage i has processed everything its
        //    (already joined) pump submitted, shut it down — dropping its
        //    output sender, which lets pump i+1 finish forwarding and
        //    exit — then repeat downstream. No record is lost: a stage's
        //    task queues are FIFO and `Stop` is enqueued last.
        let mut all_stats = Vec::with_capacity(self.stages.len());
        let stages = std::mem::take(&mut self.stages);
        let num_stages = self.submitted.len();
        for (i, stage) in stages.into_iter().enumerate() {
            let submitted = &self.submitted[i];
            while stage.processed_count() < submitted.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(200));
            }
            // Normally we hold the last reference and can consume the
            // stage. If the caller kept a clone of the `executor(i)`
            // handle, degrade gracefully instead of panicking: halt the
            // tasks in place, wait for the downstream pump to catch up
            // (the retained handle keeps the output channel connected,
            // so the pump cannot observe a disconnect), and detach that
            // pump — it exits once the last foreign handle drops.
            let (stats, detach_next_pump) = match Arc::try_unwrap(stage) {
                Ok(stage) => (stage.shutdown(), false),
                Err(shared) => {
                    let stats = shared.halt_shared();
                    if i + 1 < num_stages {
                        // emitted ≥ submitted[i+1] always (the pump only
                        // picks up what was emitted); equality means the
                        // channel is empty and nothing is in the pump's
                        // hand.
                        while shared.emitted_count() > self.submitted[i + 1].load(Ordering::Acquire)
                        {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                    (stats, true)
                }
            };
            all_stats.push(StageStats {
                name: self.names[i].clone(),
                submitted: submitted.load(Ordering::Acquire),
                stats,
            });
            if let Some(pump) = pumps.next() {
                if detach_next_pump {
                    // Blocked on a channel the foreign handle keeps
                    // alive; it exits when that handle drops.
                    drop(pump);
                } else {
                    pump.join().expect("pump exits cleanly");
                }
            }
        }
        all_stats
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.names)
            .field("cores", &self.cores_per_stage())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use elasticutor_core::ids::Key;
    use elasticutor_state::StateHandle;

    fn passthrough() -> impl Operator {
        |r: &Record, _s: &StateHandle| vec![r.clone()]
    }

    #[test]
    fn records_flow_through_three_stages() {
        let pipe = Pipeline::builder()
            .stage("a", ExecutorConfig::default(), passthrough())
            .stage("b", ExecutorConfig::default(), passthrough())
            .stage(
                "sink",
                ExecutorConfig::default(),
                |r: &Record, _s: &StateHandle| vec![r.clone()],
            )
            .build();
        for i in 0..1_000u64 {
            pipe.submit(Record::new(Key(i % 17), Bytes::new()).with_seq(i));
        }
        pipe.drain();
        let out: Vec<Record> = pipe.outputs().try_iter().flatten().collect();
        assert_eq!(out.len(), 1_000);
        let stats = pipe.shutdown();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.stats.processed == 1_000));
    }

    #[test]
    fn operators_can_fan_volume_and_filter() {
        // Stage a duplicates; stage b drops odd keys.
        let pipe = Pipeline::builder()
            .stage(
                "dup",
                ExecutorConfig::default(),
                |r: &Record, _s: &StateHandle| vec![r.clone(), r.clone()],
            )
            .stage(
                "filter",
                ExecutorConfig::default(),
                |r: &Record, _s: &StateHandle| {
                    if r.key.value().is_multiple_of(2) {
                        vec![r.clone()]
                    } else {
                        Vec::new()
                    }
                },
            )
            .build();
        for i in 0..100u64 {
            pipe.submit(Record::new(Key(i), Bytes::new()));
        }
        pipe.drain();
        assert_eq!(pipe.outputs().try_iter().flatten().count(), 100); // 50 even keys × 2
        pipe.shutdown();
    }

    #[test]
    fn backpressure_bounds_in_flight_records() {
        // A deliberately slow sink with a tiny capacity: the submitter
        // must never get more than capacity + channel ahead.
        let pipe = Pipeline::builder()
            .stage(
                "slow",
                ExecutorConfig {
                    num_shards: 4,
                    initial_tasks: 1,
                    ..ExecutorConfig::default()
                },
                |r: &Record, _s: &StateHandle| {
                    std::thread::sleep(Duration::from_micros(300));
                    vec![r.clone()]
                },
            )
            .stage_capacity(8)
            .max_batch(8)
            .build();
        for i in 0..200u64 {
            pipe.submit(Record::new(Key(i), Bytes::new()));
            let in_flight = i + 1 - pipe.executor(0).processed_count().min(i + 1);
            // capacity (8) + ingress channel (8 one-record batches) +
            // the pump's hand (up to max_batch = 8 drained records).
            assert!(in_flight <= 24, "in-flight {in_flight} exceeds the bound");
        }
        pipe.drain();
        pipe.shutdown();
    }

    #[test]
    fn backpressure_propagates_upstream_across_stages() {
        // Fast stage feeding a slow sink: the stall must reach the
        // submitter through BOTH hops — the fast stage's bounded output
        // channel blocks its task threads once the slow stage's pump
        // stops reading, so records pile up nowhere unbounded.
        let cap = 8u64;
        let pipe = Pipeline::builder()
            .stage(
                "fast",
                ExecutorConfig {
                    num_shards: 4,
                    initial_tasks: 1,
                    ..ExecutorConfig::default()
                },
                passthrough(),
            )
            .stage(
                "slow",
                ExecutorConfig {
                    num_shards: 4,
                    initial_tasks: 1,
                    ..ExecutorConfig::default()
                },
                |r: &Record, _s: &StateHandle| {
                    std::thread::sleep(Duration::from_micros(400));
                    vec![r.clone()]
                },
            )
            .stage_capacity(cap as usize)
            .max_batch(8)
            .build();
        // Per hop a record can sit in: the ingress channel (cap
        // one-record batches), a pump's hand (< max_batch + an emitted
        // batch), a stage's in-flight budget (cap), or the inter-stage
        // channel (cap batches × up to max_batch records each, since
        // tasks emit per processed batch). Two stages, max_batch = 8.
        let b = 8u64;
        let bound = cap + 2 * (2 * b) + 2 * cap + cap * b;
        for i in 0..400u64 {
            pipe.submit(Record::new(Key(i), Bytes::new()));
            let done = pipe.executor(1).processed_count();
            let in_flight = (i + 1).saturating_sub(done);
            assert!(
                in_flight <= bound,
                "accepted-but-unprocessed {in_flight} exceeds the two-hop bound {bound}: \
                 backpressure did not propagate"
            );
        }
        pipe.drain();
        assert_eq!(pipe.outputs().try_iter().flatten().count(), 400);
        pipe.shutdown();
    }

    #[test]
    fn shutdown_completes_with_bounded_outputs_and_no_consumer() {
        // A standalone executor with a bounded output channel nobody
        // reads: shutdown must drop the unread outputs, not deadlock on
        // a task blocked mid-send.
        let exec = crate::executor::ElasticExecutor::start(
            ExecutorConfig {
                num_shards: 4,
                initial_tasks: 1,
                output_capacity: Some(2),
                ..ExecutorConfig::default()
            },
            |r: &Record, _s: &StateHandle| vec![r.clone()],
        );
        for i in 0..50u64 {
            exec.submit(Record::new(Key(i), Bytes::new()));
        }
        let stats = exec.shutdown();
        // Everything processed up to the moment the channel filled was
        // at most 2 + in-flight; the rest was dropped — but shutdown
        // returned, which is the property under test.
        assert!(stats.processed <= 50);
    }

    #[test]
    fn shutdown_survives_retained_executor_handle() {
        let pipe = Pipeline::builder()
            .stage("a", ExecutorConfig::default(), passthrough())
            .stage("b", ExecutorConfig::default(), passthrough())
            .build();
        for i in 0..500u64 {
            pipe.submit(Record::new(Key(i % 7), Bytes::new()));
        }
        pipe.drain();
        // A clone of stage 0's handle outlives the pipeline — shutdown
        // must degrade gracefully, not panic.
        let retained = Arc::clone(pipe.executor(0));
        let stats = pipe.shutdown();
        assert_eq!(stats[0].stats.processed, 500);
        assert_eq!(stats[1].stats.processed, 500);
        assert_eq!(retained.tasks().len(), 0, "tasks were halted in place");
        drop(retained); // lets the detached pump exit
    }

    #[test]
    fn manual_scaling_mid_stream_keeps_all_records() {
        let pipe = Pipeline::builder()
            .stage(
                "grow",
                ExecutorConfig {
                    num_shards: 32,
                    initial_tasks: 1,
                    ..ExecutorConfig::default()
                },
                passthrough(),
            )
            .build();
        for i in 0..20_000u64 {
            pipe.submit(Record::new(Key(i % 100), Bytes::new()));
            if i == 5_000 {
                pipe.executor(0).add_task().expect("grow");
                pipe.executor(0).rebalance();
            }
            if i == 10_000 {
                let victim = pipe.executor(0).tasks()[0];
                pipe.executor(0).remove_task(victim).expect("shrink");
            }
        }
        pipe.drain();
        assert_eq!(pipe.outputs().try_iter().flatten().count(), 20_000);
        let stats = pipe.shutdown();
        assert_eq!(stats[0].stats.processed, 20_000);
    }
}
