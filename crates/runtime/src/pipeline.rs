//! A live multi-operator elastic pipeline — the chain-shaped
//! convenience API.
//!
//! [`Pipeline`] wires N [`ElasticExecutor`]s into a chain (source →
//! operators → sink) with **bounded-queue backpressure** between
//! stages: each stage admits at most `capacity` in-flight records
//! (ingested but not yet processed); the pump feeding it blocks until
//! the stage drains, and the stall propagates upstream hop by hop until
//! the pipeline's blocking [`Ingest`] entry itself stalls — the live
//! analog of the simulated engine's high/low-watermark source pausing.
//!
//! Since the DAG generalization, `Pipeline` is a thin wrapper over
//! [`LiveDag`]: [`PipelineBuilder::build`]
//! constructs a trivial chain-shaped
//! [`Topology`](elasticutor_core::topology::Topology) (stage 0 a
//! source, each later stage a transform fed by a key-grouped edge) and
//! hands it to the DAG layer. A chain's wiring is *identical* to the
//! original dedicated implementation — one pump per stage reading the
//! previous stage's output channel directly, no forwarder threads — so
//! the buffering bounds below are unchanged; the chain is simply the
//! one-in/one-out special case of the DAG's pump layer. Need fan-out,
//! fan-in, shuffle, or broadcast edges? Use
//! [`LiveDag`] directly.
//!
//! Per-key FIFO order holds end to end: within a stage the two-tier
//! routing table serializes a key's records through one task at a time
//! (the §3.3 protocol preserves order across shard moves), task threads
//! emit outputs in processing order, and a single pump thread per hop
//! preserves channel order between stages.
//!
//! Channels carry [`RecordBatch`]es, not single records: task threads
//! emit each processed batch's outputs as one send, and every pump
//! drains up to [`PipelineBuilder::max_batch`] records per wakeup before
//! handing them to the next stage through one amortized routed batch.
//! Batching never reorders — batches preserve arrival order and per-key
//! order is per-shard order, which batch grouping respects.

use std::collections::BTreeSet;
use std::sync::Arc;

use crossbeam::channel::Receiver;
use elasticutor_core::ids::OperatorId;

use crate::controller::{ControllerConfig, ControllerEvent};
use crate::dag::{LiveDag, LiveDagBuilder, SourcePort};
use crate::executor::{ElasticExecutor, ExecutorConfig, ExecutorStats};
use crate::group::ExecutorGroup;
use crate::ingest::{spawn_sink, Ingest, Sink, SinkHandle};
use crate::record::{Operator, Record, RecordBatch};

/// A type-erased operator, letting one pipeline mix operator types.
pub type BoxedOperator = Box<dyn Operator>;

/// One stage awaiting construction.
struct StageSpec {
    name: String,
    config: ExecutorConfig,
    operator: BoxedOperator,
}

/// Builder for [`Pipeline`].
pub struct PipelineBuilder {
    stages: Vec<StageSpec>,
    capacity: usize,
    max_batch: usize,
    controller: Option<ControllerConfig>,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineBuilder {
    /// Starts an empty builder with the default per-stage capacity.
    pub fn new() -> Self {
        Self {
            stages: Vec::new(),
            capacity: 4096,
            max_batch: 64,
            controller: None,
        }
    }

    /// Appends a stage (order of calls = order in the chain).
    pub fn stage(
        mut self,
        name: impl Into<String>,
        config: ExecutorConfig,
        operator: impl Operator,
    ) -> Self {
        self.stages.push(StageSpec {
            name: name.into(),
            config,
            operator: Box::new(operator),
        });
        self
    }

    /// Sets the bounded in-flight budget per stage: each stage admits at
    /// most this many ingested-but-unprocessed **records** (enforced by
    /// its pump). The ingress and inter-stage channels are bounded to
    /// the same number of **batch slots**; ingress slots and pump
    /// submissions hold at most [`Self::max_batch`] records each, and a
    /// task emits one output batch per input batch, so the records
    /// buffered per hop are bounded by `capacity × max_batch × fanout`
    /// (fanout = the operator's output amplification, 1 for
    /// filters/maps) and the stall still propagates to the pipeline's
    /// blocking [`Ingest`] entry.
    ///
    /// One knob family across the three builders: this `capacity` and
    /// [`LiveDagBuilder::capacity`] are the same per-operator budget
    /// (the DAG adds per-edge [`LiveDagBuilder::edge_capacity`]
    /// overrides), while `ExecutorConfig::ring_capacity` sizes the
    /// per-task SPSC rings *inside* one executor.
    pub fn capacity(mut self, records: usize) -> Self {
        self.capacity = records.max(1);
        self
    }

    /// Renamed: use [`Self::capacity`].
    #[doc(hidden)]
    #[deprecated(note = "renamed to `capacity`")]
    pub fn stage_capacity(self, capacity: usize) -> Self {
        self.capacity(capacity)
    }

    /// Sets the batch amortization window: the record count at which a
    /// pump stops coalescing inbound batches per wakeup, and the cap on
    /// each ingress slot and per-pump stage submission. Since
    /// coalescing stops only after crossing the threshold, a pump's
    /// hand can transiently hold up to `max_batch − 1` records plus one
    /// inbound batch (itself up to `max_batch × fanout` records when
    /// the upstream operator amplifies volume). Larger windows amortize
    /// channel and clock costs further but let a pump hold more in hand
    /// while backpressured; 1 disables pump-side batching.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Attaches a [`LiveController`](crate::controller::LiveController)
    /// that reallocates task threads across stages while the pipeline
    /// runs.
    pub fn controller(mut self, config: ControllerConfig) -> Self {
        self.controller = Some(config);
        self
    }

    /// Starts every stage, the pump threads, and (if configured) the
    /// controller, by building the equivalent chain-shaped [`LiveDag`].
    ///
    /// # Panics
    ///
    /// Panics if no stage was added.
    pub fn build(self) -> Pipeline {
        assert!(!self.stages.is_empty(), "pipeline needs at least one stage");
        let mut dag = LiveDagBuilder::new();
        dag.capacity(self.capacity);
        dag.max_batch(self.max_batch);
        if let Some(config) = self.controller {
            dag.controller(config);
        }
        // Topology names must be unique; the pipeline API never required
        // that of stage names, so disambiguate quietly (stage_stats and
        // stage_names still report the caller's names).
        let mut names = Vec::with_capacity(self.stages.len());
        let mut used: BTreeSet<String> = BTreeSet::new();
        let mut prev: Option<OperatorId> = None;
        for (i, spec) in self.stages.into_iter().enumerate() {
            let mut dag_name = spec.name.clone();
            while used.contains(&dag_name) {
                dag_name = format!("{dag_name}#{i}");
            }
            used.insert(dag_name.clone());
            let id = match prev {
                None => dag.source(dag_name, spec.config, spec.operator),
                Some(prev) => {
                    let id = dag.operator(dag_name, spec.config, spec.operator);
                    dag.key_edge(prev, id);
                    id
                }
            };
            names.push(spec.name);
            prev = Some(id);
        }
        let sink = prev.expect("at least one stage");
        let dag = dag.build().expect("a chain topology is always valid");
        Pipeline {
            dag,
            names,
            source: OperatorId(0),
            sink,
        }
    }
}

/// Per-stage snapshot returned by [`Pipeline::stage_stats`].
#[derive(Clone, Debug)]
pub struct StageStats {
    /// Stage name (from the builder).
    pub name: String,
    /// Records handed to the stage by its pump.
    pub submitted: u64,
    /// Executor statistics.
    pub stats: ExecutorStats,
}

/// A running multi-operator elastic pipeline. See the module docs.
pub struct Pipeline {
    dag: LiveDag,
    names: Vec<String>,
    source: OperatorId,
    sink: OperatorId,
}

impl Pipeline {
    /// Starts building a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::new()
    }

    /// The first stage's [`SourcePort`] — a cloneable, `'static`
    /// [`Ingest`] handle external feeders (TCP readers, replay pumps)
    /// hold without owning the pipeline. Records ingested after
    /// [`Self::shutdown`] are dropped silently.
    pub fn port(&self) -> SourcePort {
        self.dag.port(self.source)
    }

    /// Renamed: use [`Ingest::ingest`].
    #[doc(hidden)]
    #[deprecated(note = "use `Ingest::ingest`")]
    pub fn submit(&self, record: Record) {
        self.ingest(record);
    }

    /// Renamed: use [`Ingest::ingest_batch`].
    #[doc(hidden)]
    #[deprecated(note = "use `Ingest::ingest_batch`")]
    pub fn submit_batch(&self, batch: RecordBatch) {
        self.ingest_batch(batch);
    }

    /// The output stream of the last stage, in batches (flatten for a
    /// per-record view; batch order is processing order).
    pub fn outputs(&self) -> &Receiver<RecordBatch> {
        self.dag.outputs(self.sink).expect("last stage is the sink")
    }

    /// Attaches a [`Sink`] consumer to the pipeline's output stream on
    /// a dedicated pump thread (see [`spawn_sink`]). The returned
    /// handle joins after [`Self::shutdown`] drains the channel.
    /// Multiple attached sinks **split** the output batches between
    /// them (the channel is MPMC), so attach one sink per pipeline
    /// unless splitting is the intent.
    pub fn attach_sink<S: Sink>(&self, name: &str, sink: S) -> SinkHandle<S> {
        spawn_sink(name, self.outputs().clone(), sink)
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.names.len()
    }

    /// Stage names, in chain order.
    pub fn stage_names(&self) -> &[String] {
        &self.names
    }

    /// Direct handle to stage `i`'s executor (manual elasticity:
    /// `add_task`, `remove_task`, `rebalance`, `reassign_shard`).
    ///
    /// Cloning the `Arc` is fine for driving elasticity from other
    /// threads, but a clone still alive when [`Self::shutdown`] runs
    /// degrades that stage's teardown: its tasks are halted in place
    /// and the dependent pump threads are detached rather than joined
    /// (they exit when the last clone drops).
    pub fn executor(&self, i: usize) -> &Arc<ElasticExecutor<BoxedOperator>> {
        self.dag.executor(OperatorId::from_index(i))
    }

    /// The executor group running stage `i`: per-instance handles, the
    /// shard→instance router, and live rescaling
    /// ([`ExecutorGroup::scale_out`]/[`ExecutorGroup::scale_in`]).
    pub fn group(&self, i: usize) -> &Arc<ExecutorGroup> {
        self.dag.group(OperatorId::from_index(i))
    }

    /// Live task-thread count per stage (the "core" allocation).
    pub fn cores_per_stage(&self) -> Vec<usize> {
        self.dag.cores_per_operator()
    }

    /// Per-stage statistics snapshots.
    pub fn stage_stats(&self) -> Vec<StageStats> {
        self.dag
            .operator_stats()
            .into_iter()
            .zip(&self.names)
            .map(|(op, name)| StageStats {
                name: name.clone(),
                submitted: op.submitted,
                stats: op.stats,
            })
            .collect()
    }

    /// Events logged by the attached controller (empty when none).
    pub fn controller_log(&self) -> Vec<ControllerEvent> {
        self.dag.controller_log()
    }

    /// Whether every submitted record has been processed through every
    /// stage and no record sits in any inter-stage channel.
    ///
    /// Uses monotonic counters only, so a `true` from a single call is
    /// trustworthy provided no concurrent ingest is racing it:
    /// ingress-accepted = stage-0 submitted = stage-0 processed, and for
    /// each hop, stage i's emitted = stage i+1's submitted = processed.
    pub fn is_quiescent(&self) -> bool {
        self.dag.is_quiescent()
    }

    /// Blocks until the pipeline is quiescent (all submitted records
    /// fully processed end to end).
    pub fn drain(&self) {
        self.dag.drain();
    }

    /// Stops the controller, drains every stage in order, shuts the
    /// executors down, and returns final per-stage statistics.
    pub fn shutdown(self) -> Vec<StageStats> {
        self.dag
            .shutdown()
            .into_iter()
            .zip(self.names)
            .map(|(op, name)| StageStats {
                name,
                submitted: op.submitted,
                stats: op.stats,
            })
            .collect()
    }
}

/// The unified entry surface (see [`crate::ingest`]), feeding the
/// first stage. The blocking forms stall while the pipeline is
/// backpressured (first stage at capacity and ingress channel full);
/// [`Ingest::try_ingest_batch`] instead hands the overflow back —
/// see [`SourcePort`] for the exact admission semantics. Single records
/// cost a one-record batch allocation; high-rate sources should
/// accumulate and use [`Ingest::ingest_batch`], which amortizes both
/// the allocation and the channel synchronization (batches are split so
/// one ingress slot never exceeds the builder's
/// [`max_batch`](PipelineBuilder::max_batch), keeping the
/// [`capacity`](PipelineBuilder::capacity) buffering bound honest).
impl Ingest for Pipeline {
    fn ingest_batch(&self, batch: RecordBatch) {
        self.dag.port(self.source).ingest_batch(batch);
    }

    fn try_ingest_batch(&self, batch: RecordBatch) -> Result<(), RecordBatch> {
        self.dag.port(self.source).try_ingest_batch(batch)
    }

    fn accepted(&self) -> u64 {
        self.dag.port(self.source).accepted()
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.names)
            .field("cores", &self.cores_per_stage())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use elasticutor_core::ids::Key;
    use elasticutor_state::StateHandle;
    use std::time::Duration;

    fn passthrough() -> impl Operator {
        |r: &Record, _s: &StateHandle| vec![r.clone()]
    }

    #[test]
    fn records_flow_through_three_stages() {
        let pipe = Pipeline::builder()
            .stage("a", ExecutorConfig::default(), passthrough())
            .stage("b", ExecutorConfig::default(), passthrough())
            .stage(
                "sink",
                ExecutorConfig::default(),
                |r: &Record, _s: &StateHandle| vec![r.clone()],
            )
            .build();
        for i in 0..1_000u64 {
            pipe.ingest(Record::new(Key(i % 17), Bytes::new()).with_seq(i));
        }
        pipe.drain();
        let out: Vec<Record> = pipe.outputs().try_iter().flatten().collect();
        assert_eq!(out.len(), 1_000);
        let stats = pipe.shutdown();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.stats.processed == 1_000));
    }

    #[test]
    fn operators_can_fan_volume_and_filter() {
        // Stage a duplicates; stage b drops odd keys.
        let pipe = Pipeline::builder()
            .stage(
                "dup",
                ExecutorConfig::default(),
                |r: &Record, _s: &StateHandle| vec![r.clone(), r.clone()],
            )
            .stage(
                "filter",
                ExecutorConfig::default(),
                |r: &Record, _s: &StateHandle| {
                    if r.key.value().is_multiple_of(2) {
                        vec![r.clone()]
                    } else {
                        Vec::new()
                    }
                },
            )
            .build();
        for i in 0..100u64 {
            pipe.ingest(Record::new(Key(i), Bytes::new()));
        }
        pipe.drain();
        assert_eq!(pipe.outputs().try_iter().flatten().count(), 100); // 50 even keys × 2
        pipe.shutdown();
    }

    #[test]
    fn duplicate_stage_names_are_tolerated() {
        // The pipeline API never required unique names; the chain
        // topology underneath does, so the wrapper disambiguates.
        let pipe = Pipeline::builder()
            .stage("same", ExecutorConfig::default(), passthrough())
            .stage("same", ExecutorConfig::default(), passthrough())
            .build();
        for i in 0..50u64 {
            pipe.ingest(Record::new(Key(i), Bytes::new()));
        }
        pipe.drain();
        let stats = pipe.shutdown();
        assert_eq!(stats[0].name, "same");
        assert_eq!(stats[1].name, "same");
        assert_eq!(stats[1].stats.processed, 50);
    }

    #[test]
    fn backpressure_bounds_in_flight_records() {
        // A deliberately slow sink with a tiny capacity: the submitter
        // must never get more than capacity + channel ahead.
        let pipe = Pipeline::builder()
            .stage(
                "slow",
                ExecutorConfig {
                    num_shards: 4,
                    initial_tasks: 1,
                    ..ExecutorConfig::default()
                },
                |r: &Record, _s: &StateHandle| {
                    std::thread::sleep(Duration::from_micros(300));
                    vec![r.clone()]
                },
            )
            .capacity(8)
            .max_batch(8)
            .build();
        for i in 0..200u64 {
            pipe.ingest(Record::new(Key(i), Bytes::new()));
            let in_flight = i + 1 - pipe.group(0).processed_count().min(i + 1);
            // capacity (8) + ingress channel (8 one-record batches) +
            // the pump's hand (up to max_batch = 8 drained records).
            assert!(in_flight <= 24, "in-flight {in_flight} exceeds the bound");
        }
        pipe.drain();
        pipe.shutdown();
    }

    #[test]
    fn backpressure_propagates_upstream_across_stages() {
        // Fast stage feeding a slow sink: the stall must reach the
        // submitter through BOTH hops — the fast stage's bounded output
        // channel blocks its task threads once the slow stage's pump
        // stops reading, so records pile up nowhere unbounded.
        let cap = 8u64;
        let pipe = Pipeline::builder()
            .stage(
                "fast",
                ExecutorConfig {
                    num_shards: 4,
                    initial_tasks: 1,
                    ..ExecutorConfig::default()
                },
                passthrough(),
            )
            .stage(
                "slow",
                ExecutorConfig {
                    num_shards: 4,
                    initial_tasks: 1,
                    ..ExecutorConfig::default()
                },
                |r: &Record, _s: &StateHandle| {
                    std::thread::sleep(Duration::from_micros(400));
                    vec![r.clone()]
                },
            )
            .capacity(cap as usize)
            .max_batch(8)
            .build();
        // Per hop a record can sit in: the ingress channel (cap
        // one-record batches), a pump's hand (< max_batch + an emitted
        // batch), a stage's in-flight budget (cap), or the inter-stage
        // channel (cap batches × up to max_batch records each, since
        // tasks emit per processed batch). Two stages, max_batch = 8.
        let b = 8u64;
        let bound = cap + 2 * (2 * b) + 2 * cap + cap * b;
        for i in 0..400u64 {
            pipe.ingest(Record::new(Key(i), Bytes::new()));
            let done = pipe.group(1).processed_count();
            let in_flight = (i + 1).saturating_sub(done);
            assert!(
                in_flight <= bound,
                "accepted-but-unprocessed {in_flight} exceeds the two-hop bound {bound}: \
                 backpressure did not propagate"
            );
        }
        pipe.drain();
        assert_eq!(pipe.outputs().try_iter().flatten().count(), 400);
        pipe.shutdown();
    }

    #[test]
    fn shutdown_completes_with_bounded_outputs_and_no_consumer() {
        // A standalone executor with a bounded output channel nobody
        // reads: shutdown must drop the unread outputs, not deadlock on
        // a task blocked mid-send.
        let exec = crate::executor::ElasticExecutor::start(
            ExecutorConfig {
                num_shards: 4,
                initial_tasks: 1,
                output_capacity: Some(2),
                ..ExecutorConfig::default()
            },
            |r: &Record, _s: &StateHandle| vec![r.clone()],
        );
        for i in 0..50u64 {
            exec.ingest(Record::new(Key(i), Bytes::new()));
        }
        let stats = exec.shutdown();
        // Everything processed up to the moment the channel filled was
        // at most 2 + in-flight; the rest was dropped — but shutdown
        // returned, which is the property under test.
        assert!(stats.processed <= 50);
    }

    #[test]
    fn shutdown_survives_retained_executor_handle() {
        let pipe = Pipeline::builder()
            .stage("a", ExecutorConfig::default(), passthrough())
            .stage("b", ExecutorConfig::default(), passthrough())
            .build();
        for i in 0..500u64 {
            pipe.ingest(Record::new(Key(i % 7), Bytes::new()));
        }
        pipe.drain();
        // A clone of stage 0's handle outlives the pipeline — shutdown
        // must degrade gracefully, not panic.
        let retained = Arc::clone(pipe.executor(0));
        let stats = pipe.shutdown();
        assert_eq!(stats[0].stats.processed, 500);
        assert_eq!(stats[1].stats.processed, 500);
        assert_eq!(retained.tasks().len(), 0, "tasks were halted in place");
        drop(retained); // lets the detached pump exit
    }

    #[test]
    fn manual_scaling_mid_stream_keeps_all_records() {
        let pipe = Pipeline::builder()
            .stage(
                "grow",
                ExecutorConfig {
                    num_shards: 32,
                    initial_tasks: 1,
                    ..ExecutorConfig::default()
                },
                passthrough(),
            )
            .build();
        for i in 0..20_000u64 {
            pipe.ingest(Record::new(Key(i % 100), Bytes::new()));
            if i == 5_000 {
                pipe.executor(0).add_task().expect("grow");
                pipe.executor(0).rebalance();
            }
            if i == 10_000 {
                let victim = pipe.executor(0).tasks()[0];
                pipe.executor(0).remove_task(victim).expect("shrink");
            }
        }
        pipe.drain();
        assert_eq!(pipe.outputs().try_iter().flatten().count(), 20_000);
        let stats = pipe.shutdown();
        assert_eq!(stats[0].stats.processed, 20_000);
    }
}
