//! The live elastic executor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use elasticutor_core::balance::LoadBalancer;
use elasticutor_core::error::{Error, Result};
use elasticutor_core::ids::{ShardId, TaskId};
use elasticutor_core::reassign::ReassignmentTracker;
use elasticutor_core::routing::{RouteDecision, RoutingTable};
use elasticutor_metrics::LatencyHistogram;
use elasticutor_state::StateStore;
use parking_lot::Mutex;

use crate::record::{monotonic_ns, Operator, Record};

/// Configuration of a live elastic executor.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// `z` — number of shards (paper default 256).
    pub num_shards: u32,
    /// Task threads to start with (cores initially granted).
    pub initial_tasks: u32,
    /// `θ` — imbalance threshold for [`ElasticExecutor::rebalance`].
    pub imbalance_threshold: f64,
    /// Upper bound on shard moves per rebalance pass.
    pub max_moves_per_rebalance: usize,
    /// Capacity of the output channel. `None` (default) is unbounded —
    /// right for a standalone executor whose consumer drains at its own
    /// pace. A pipeline bounds intermediate stages so that a stalled
    /// consumer blocks the emitting task threads, propagating
    /// backpressure upstream hop by hop.
    pub output_capacity: Option<usize>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            num_shards: 256,
            initial_tasks: 1,
            imbalance_threshold: 1.2,
            max_moves_per_rebalance: 64,
            output_capacity: None,
        }
    }
}

/// Work delivered to task threads.
enum TaskMsg {
    Record(Record, ShardId),
    /// The labeling tuple of the §3.3 protocol: when the source task
    /// dequeues it, every pending record of the shard has been processed
    /// and the reassignment can complete.
    Label(u64),
    Stop,
}

/// Control state shared by the public handle and the task threads.
struct Inner<O: Operator> {
    /// Two-tier routing (shard → task) with pause buffers, plus the task
    /// channel registry — one lock because every update touches both.
    routing: Mutex<RoutingState>,
    /// The §3.3 state machine: in-flight reassignments by label, with
    /// exactly-once completion (shared with the simulated engine via
    /// `elasticutor_core::reassign`).
    reassigns: Mutex<ReassignmentTracker<()>>,
    state: Arc<StateStore>,
    operator: O,
    outputs: Sender<Record>,
    /// Per-shard record counters for the balancer (reset on rebalance).
    shard_counts: Vec<AtomicU64>,
    /// Records accepted by `submit` (λ numerator for live controllers).
    arrivals: AtomicU64,
    processed: AtomicU64,
    /// Records emitted downstream (lets a pipeline detect quiescence of
    /// the inter-stage channel with monotonic counters alone).
    emitted: AtomicU64,
    /// Nanoseconds task threads spent inside `Operator::process` (μ
    /// denominator for live controllers).
    busy_ns: AtomicU64,
    /// Records whose `Operator::process` panicked (counted under
    /// `processed` as well — they were consumed).
    operator_panics: AtomicU64,
    latency: Mutex<LatencyHistogram>,
    /// Completed reassignments: (sync_ns, total_ns).
    reassignment_log: Mutex<Vec<(u64, u64)>>,
}

struct RoutingState {
    table: RoutingTable<Record>,
    senders: std::collections::BTreeMap<TaskId, Sender<TaskMsg>>,
    /// Tasks currently being drained by `remove_task`: they reject new
    /// inbound shard moves, closing the race where a move begun after
    /// the drain check lands a shard on a task about to stop.
    draining: std::collections::BTreeSet<TaskId>,
    next_task: u32,
}

/// Cumulative load counters sampled by live controllers (see
/// [`ElasticExecutor::load_sample`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadSample {
    /// Records accepted by `submit` since start.
    pub arrivals: u64,
    /// Records fully processed since start.
    pub processed: u64,
    /// Nanoseconds task threads spent inside the operator since start.
    pub busy_ns: u64,
    /// Bytes of state currently held.
    pub state_bytes: u64,
}

/// Runtime statistics snapshot.
#[derive(Clone, Debug)]
pub struct ExecutorStats {
    /// Records fully processed.
    pub processed: u64,
    /// Records whose operator invocation panicked. The record is dropped
    /// but the task thread, routing state, and shard state all survive —
    /// a poison record cannot take the executor down.
    pub operator_panics: u64,
    /// Live task count.
    pub tasks: usize,
    /// Latency distribution (submit → processed).
    pub latency: LatencyHistogram,
    /// Completed reassignments as (sync_ns, total_ns) pairs.
    pub reassignments: Vec<(u64, u64)>,
    /// Total state bytes currently held.
    pub state_bytes: u64,
}

/// A live elastic executor: a pool of task threads behind a two-tier
/// routing table, sharing one in-process state store.
pub struct ElasticExecutor<O: Operator> {
    inner: Arc<Inner<O>>,
    threads: Mutex<Vec<(TaskId, JoinHandle<()>)>>,
    output_rx: Receiver<Record>,
    config: ExecutorConfig,
}

impl<O: Operator> ElasticExecutor<O> {
    /// Starts the executor with `config.initial_tasks` task threads.
    pub fn start(config: ExecutorConfig, operator: O) -> Self {
        assert!(config.num_shards > 0, "need at least one shard");
        assert!(config.initial_tasks > 0, "need at least one task");
        let (out_tx, out_rx) = match config.output_capacity {
            Some(cap) => bounded(cap),
            None => unbounded(),
        };
        let inner = Arc::new(Inner {
            routing: Mutex::new(RoutingState {
                table: RoutingTable::new(config.num_shards, TaskId(0)),
                senders: std::collections::BTreeMap::new(),
                draining: std::collections::BTreeSet::new(),
                next_task: 0,
            }),
            reassigns: Mutex::new(ReassignmentTracker::new()),
            state: Arc::new(StateStore::with_shards(config.num_shards)),
            operator,
            outputs: out_tx,
            shard_counts: (0..config.num_shards).map(|_| AtomicU64::new(0)).collect(),
            arrivals: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            operator_panics: AtomicU64::new(0),
            latency: Mutex::new(LatencyHistogram::new()),
            reassignment_log: Mutex::new(Vec::new()),
        });
        let executor = Self {
            inner,
            threads: Mutex::new(Vec::new()),
            output_rx: out_rx,
            config,
        };
        for _ in 0..executor.config.initial_tasks {
            executor.add_task().expect("initial task");
        }
        // Spread shards across the initial tasks.
        {
            let mut rs = executor.inner.routing.lock();
            let tasks: Vec<TaskId> = rs.senders.keys().copied().collect();
            for s in 0..executor.config.num_shards {
                let t = tasks[s as usize % tasks.len()];
                rs.table.set_task(ShardId(s), t).expect("fresh shard");
            }
        }
        executor
    }

    /// Submits a record for processing. Routing is synchronous (the
    /// caller acts as the receiver daemon); processing is asynchronous on
    /// whichever task owns the record's shard.
    pub fn submit(&self, record: Record) {
        self.inner.arrivals.fetch_add(1, Ordering::Relaxed);
        let mut rs = self.inner.routing.lock();
        let shard = rs.table.shard_for(record.key);
        self.inner.shard_counts[shard.index()].fetch_add(1, Ordering::Relaxed);
        match rs.table.route_shard(shard, record) {
            RouteDecision::Buffered(_) => {} // parked until the move completes
            RouteDecision::Deliver(task, record) => {
                // A missing sender means the executor was halted in
                // place (`halt_shared`); drop the record rather than
                // panic the submitter.
                if let Some(sender) = rs.senders.get(&task) {
                    sender
                        .send(TaskMsg::Record(record, shard))
                        .expect("task channel open");
                }
            }
        }
    }

    /// Adds a task thread (a core was granted). Returns its id.
    pub fn add_task(&self) -> Result<TaskId> {
        let (tx, rx) = unbounded();
        let id = {
            let mut rs = self.inner.routing.lock();
            let id = TaskId(rs.next_task);
            rs.next_task += 1;
            rs.senders.insert(id, tx);
            id
        };
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name(format!("elastic-task-{}", id.0))
            .spawn(move || task_loop(inner, id, rx))
            .expect("spawn task thread");
        self.threads.lock().push((id, handle));
        Ok(id)
    }

    /// Removes a task thread (its core was revoked): drains its shards to
    /// the survivors via the reassignment protocol, then stops it.
    pub fn remove_task(&self, task: TaskId) -> Result<()> {
        let (loads, assignment, survivors) = {
            let mut rs = self.inner.routing.lock();
            if !rs.senders.contains_key(&task) {
                return Err(Error::UnknownTask(task));
            }
            if rs.senders.len().saturating_sub(rs.draining.len()) <= 1
                || rs.draining.contains(&task)
            {
                return Err(Error::LastTask(task));
            }
            // From here on no new reassignment may target this task
            // (`reassign_shard` checks the flag under the same lock), so
            // once the drain loop below observes "owns nothing, nothing
            // in flight toward it", that stays true.
            rs.draining.insert(task);
            let loads: Vec<f64> = self
                .inner
                .shard_counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed) as f64)
                .collect();
            let assignment = rs.table.assignment().to_vec();
            let survivors: Vec<TaskId> = rs
                .senders
                .keys()
                .copied()
                .filter(|t| *t != task && !rs.draining.contains(t))
                .collect();
            (loads, assignment, survivors)
        };
        let balancer = LoadBalancer {
            imbalance_threshold: self.config.imbalance_threshold,
            max_moves: usize::MAX,
        };
        let moves = balancer.plan_task_removal(&loads, &assignment, task, &survivors);
        for m in &moves {
            let _ = self.reassign_shard(m.shard, m.to);
        }
        // Drain until the task owns nothing and no in-flight reassignment
        // still targets it. The planned moves above are not enough on
        // their own: a reassignment that was already in flight when we
        // snapshotted the assignment can land a *new* shard on this task
        // afterwards, and paused shards reject new moves until their own
        // protocol completes — so keep re-planning stragglers each pass.
        let mut spread = 0usize;
        loop {
            // Read ownership and in-flight state under BOTH locks
            // (routing before reassigns, the global order): the label
            // handler takes the same two locks to complete a move, so a
            // pre-drain move targeting this task cannot land a shard
            // here between the two reads. Once both reads are clean
            // while the `draining` flag blocks new inbound moves, the
            // task stays empty.
            let (owned, pending_to_task) = {
                let rs = self.inner.routing.lock();
                let tracker = self.inner.reassigns.lock();
                (rs.table.shards_of(task), tracker.targets_task(task))
            };
            if owned.is_empty() && !pending_to_task {
                break;
            }
            for (shard, to) in
                elasticutor_core::reassign::spread_round_robin(&owned, &survivors, spread)
            {
                // Failures (shard paused mid-protocol, concurrent owner
                // change) resolve themselves; retry next pass.
                let _ = self.reassign_shard(shard, to);
            }
            spread = spread.wrapping_add(owned.len());
            std::thread::yield_now();
        }
        // Stop the thread and unregister it.
        let sender = {
            let mut rs = self.inner.routing.lock();
            rs.draining.remove(&task);
            rs.senders.remove(&task).expect("checked present")
        };
        sender.send(TaskMsg::Stop).expect("task channel open");
        let mut threads = self.threads.lock();
        if let Some(pos) = threads.iter().position(|(id, _)| *id == task) {
            let (_, handle) = threads.remove(pos);
            drop(threads);
            handle.join().expect("task thread exits cleanly");
        }
        Ok(())
    }

    /// Starts the §3.3 consistent reassignment of `shard` to task `to`.
    /// Returns once the protocol is *initiated*; completion is
    /// asynchronous (when the labeling tuple drains). Errors if the shard
    /// is already in flight, the move is a no-op, or `to` is unknown.
    pub fn reassign_shard(&self, shard: ShardId, to: TaskId) -> Result<()> {
        let mut rs = self.inner.routing.lock();
        if !rs.senders.contains_key(&to) || rs.draining.contains(&to) {
            return Err(Error::UnknownTask(to));
        }
        let from = rs.table.task_of(shard)?;
        if from == to {
            return Err(Error::ReassignmentNoop(shard, to));
        }
        rs.table.pause(shard)?;
        let label = self
            .inner
            .reassigns
            .lock()
            .begin(shard, from, to, monotonic_ns(), ());
        rs.senders[&from]
            .send(TaskMsg::Label(label))
            .expect("task channel open");
        Ok(())
    }

    /// Plans and executes one intra-executor rebalancing pass (paper
    /// §3.1), returning the number of shard moves initiated.
    pub fn rebalance(&self) -> usize {
        let (loads, assignment, tasks) = {
            let rs = self.inner.routing.lock();
            let loads: Vec<f64> = self
                .inner
                .shard_counts
                .iter()
                .map(|c| c.swap(0, Ordering::Relaxed) as f64)
                .collect();
            (
                loads,
                rs.table.assignment().to_vec(),
                rs.senders
                    .keys()
                    .copied()
                    .filter(|t| !rs.draining.contains(t))
                    .collect::<Vec<TaskId>>(),
            )
        };
        let balancer = LoadBalancer {
            imbalance_threshold: self.config.imbalance_threshold,
            max_moves: self.config.max_moves_per_rebalance,
        };
        let plan = balancer.plan(&loads, &assignment, &tasks);
        let mut initiated = 0;
        for m in plan.moves {
            if self.reassign_shard(m.shard, m.to).is_ok() {
                initiated += 1;
            }
        }
        initiated
    }

    /// The output stream of records emitted by the operator.
    pub fn outputs(&self) -> &Receiver<Record> {
        &self.output_rx
    }

    /// Blocks until at least `n` records have been fully processed.
    pub fn wait_for_processed(&self, n: u64) {
        while self.inner.processed.load(Ordering::Acquire) < n {
            std::thread::yield_now();
        }
    }

    /// Records fully processed so far (cheap atomic read; `stats` clones
    /// histograms and takes locks, this does not).
    pub fn processed_count(&self) -> u64 {
        self.inner.processed.load(Ordering::Acquire)
    }

    /// Records emitted downstream so far (cheap atomic read).
    pub fn emitted_count(&self) -> u64 {
        self.inner.emitted.load(Ordering::Acquire)
    }

    /// A cheap cumulative load sample for live controllers: consecutive
    /// samples differenced over a wall-clock window give λ (arrival
    /// rate), μ (per-core service rate = processed / busy seconds), and
    /// the standing backlog (arrivals − processed).
    pub fn load_sample(&self) -> LoadSample {
        LoadSample {
            arrivals: self.inner.arrivals.load(Ordering::Relaxed),
            processed: self.inner.processed.load(Ordering::Acquire),
            busy_ns: self.inner.busy_ns.load(Ordering::Relaxed),
            state_bytes: self.inner.state.total_bytes(),
        }
    }

    /// A snapshot of runtime statistics.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            processed: self.inner.processed.load(Ordering::Acquire),
            operator_panics: self.inner.operator_panics.load(Ordering::Relaxed),
            tasks: self.inner.routing.lock().senders.len(),
            latency: self.inner.latency.lock().clone(),
            reassignments: self.inner.reassignment_log.lock().clone(),
            state_bytes: self.inner.state.total_bytes(),
        }
    }

    /// Current shard→task assignment (snapshot).
    pub fn assignment(&self) -> Vec<TaskId> {
        self.inner.routing.lock().table.assignment().to_vec()
    }

    /// Live task ids (snapshot).
    pub fn tasks(&self) -> Vec<TaskId> {
        self.inner.routing.lock().senders.keys().copied().collect()
    }

    /// Direct read access to the shared state store.
    pub fn state(&self) -> &Arc<StateStore> {
        &self.inner.state
    }

    /// Stops all task threads and returns final statistics. Buffered or
    /// queued records that were not yet processed are dropped, as are
    /// unread outputs.
    pub fn shutdown(self) -> ExecutorStats {
        let Self {
            inner,
            threads,
            output_rx,
            config: _,
        } = self;
        // Drop this handle's output receiver *before* joining: with a
        // bounded output channel and no external consumer, a task thread
        // can be blocked mid-send, and the `Stop` behind it would never
        // be dequeued. Disconnecting the only receiver turns that send
        // into an error the task loop handles (the record is dropped,
        // matching the documented semantics). Pipelines hold their own
        // receiver clones, so their channels stay open here.
        drop(output_rx);
        halt(&inner, &threads)
    }
}

/// Stops every task thread of the executor behind `inner` and returns
/// final statistics. Idempotent: a second call finds no live senders or
/// join handles and just rebuilds the stats.
fn halt<O: Operator>(
    inner: &Arc<Inner<O>>,
    threads: &Mutex<Vec<(TaskId, JoinHandle<()>)>>,
) -> ExecutorStats {
    {
        let rs = inner.routing.lock();
        for sender in rs.senders.values() {
            let _ = sender.send(TaskMsg::Stop);
        }
    }
    let mut threads = threads.lock();
    for (_, handle) in threads.drain(..) {
        let _ = handle.join();
    }
    drop(threads);
    // Unregister the stopped tasks so the executor reports itself as
    // halted (`tasks()` empty) and late `submit`s drop records instead
    // of feeding channels nobody drains.
    inner.routing.lock().senders.clear();
    ExecutorStats {
        processed: inner.processed.load(Ordering::Acquire),
        operator_panics: inner.operator_panics.load(Ordering::Relaxed),
        tasks: 0,
        latency: inner.latency.lock().clone(),
        reassignments: inner.reassignment_log.lock().clone(),
        state_bytes: inner.state.total_bytes(),
    }
}

impl<O: Operator> ElasticExecutor<O> {
    /// Stops all task threads without consuming the executor — the
    /// fallback a [`Pipeline`](crate::pipeline::Pipeline) uses at
    /// shutdown when the caller still holds a clone of the stage handle
    /// and the consuming [`Self::shutdown`] is unavailable. The output
    /// channel stays connected (the retained handle keeps it alive), so
    /// callers must ensure no task thread is blocked on a full bounded
    /// output channel before halting.
    pub(crate) fn halt_shared(&self) -> ExecutorStats {
        halt(&self.inner, &self.threads)
    }
}

/// The body of one task thread.
fn task_loop<O: Operator>(inner: Arc<Inner<O>>, _id: TaskId, rx: Receiver<TaskMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            TaskMsg::Stop => return,
            TaskMsg::Record(record, shard) => {
                let handle = inner.state.handle(shard);
                let service_start = monotonic_ns();
                // Failure isolation: a panicking operator must not take
                // the task thread (and with it every shard it owns) down.
                // The record is dropped, the panic counted; state holds
                // whatever the operator committed before unwinding.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    inner.operator.process(&record, &handle)
                }));
                inner.busy_ns.fetch_add(
                    monotonic_ns().saturating_sub(service_start),
                    Ordering::Relaxed,
                );
                match outcome {
                    Ok(outputs) => {
                        for out in outputs {
                            // Count *before* sending: quiescence checks
                            // compare `emitted` against the downstream
                            // consumer's counter, so a record must never
                            // be in the channel while uncounted.
                            inner.emitted.fetch_add(1, Ordering::AcqRel);
                            // Emitter: forward to the output stream.
                            // (Receiver may have hung up if the executor
                            // handle dropped.)
                            if inner.outputs.send(out).is_err() {
                                break;
                            }
                        }
                    }
                    Err(_) => {
                        inner.operator_panics.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let latency = monotonic_ns().saturating_sub(record.created_ns);
                inner.latency.lock().record(latency);
                inner.processed.fetch_add(1, Ordering::AcqRel);
            }
            TaskMsg::Label(label) => {
                // All pending records of the shard are done: complete the
                // reassignment via the shared §3.3 state machine.
                // Intra-process state sharing means no state movement —
                // the new task reads the same store.
                let now = monotonic_ns();
                // Lock order: routing before reassigns, matching
                // `reassign_shard` (which begins moves while holding the
                // routing lock).
                let mut rs = inner.routing.lock();
                let mut tracker = inner.reassigns.lock();
                tracker
                    .mark_label_reached(label, now)
                    .expect("label has a pending entry");
                let to = tracker.get(label).expect("just marked").to;
                if rs.senders.contains_key(&to) {
                    let completion = tracker
                        .complete(label, monotonic_ns())
                        .expect("completes exactly once");
                    drop(tracker);
                    let buffered = rs
                        .table
                        .finish_reassignment(completion.shard, completion.to)
                        .expect("shard was paused");
                    for record in buffered {
                        rs.senders[&completion.to]
                            .send(TaskMsg::Record(record, completion.shard))
                            .expect("task channel open");
                    }
                    drop(rs);
                    let total_ns = monotonic_ns().saturating_sub(completion.started_ns);
                    inner
                        .reassignment_log
                        .lock()
                        .push((completion.sync_ns, total_ns));
                } else {
                    // Destination was removed while the label was in
                    // flight: abort — routing resumes to the old owner,
                    // and buffered records go there.
                    let aborted = tracker.abort(label).expect("aborts exactly once");
                    drop(tracker);
                    let from = rs.table.task_of(aborted.shard).expect("shard exists");
                    let buffered = rs
                        .table
                        .abort_reassignment(aborted.shard)
                        .expect("shard was paused");
                    for record in buffered {
                        rs.senders[&from]
                            .send(TaskMsg::Record(record, aborted.shard))
                            .expect("task channel open");
                    }
                }
            }
        }
    }
}

impl<O: Operator> std::fmt::Debug for ElasticExecutor<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticExecutor")
            .field("tasks", &self.tasks())
            .field("num_shards", &self.config.num_shards)
            .finish()
    }
}
