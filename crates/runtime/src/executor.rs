//! The live elastic executor.
//!
//! # The lock-free data plane
//!
//! Steady-state record flow (`ingest` → route → process → emit) acquires
//! **no global lock**. The two-tier routing table is split in two:
//!
//! * a dense [`AtomicShardTable`] — one `AtomicU64` per shard packing
//!   `slot | epoch | paused | in-flight` — read wait-free by `ingest`
//!   (one `fetch_add`, no retry loop), resolving to a task **slot**: an
//!   index into a fixed array of cache-line-padded sender cells;
//! * the original `Mutex<RoutingState>` survives only as the slow path
//!   taken during reassignments (paused shards buffer there) and by the
//!   control plane (add/remove task, rebalance), which keeps both tiers
//!   coherent under its lock.
//!
//! The §3.3 ordering guarantee rides on a pause handshake instead of
//! mutual exclusion: `pause` sets the shard's paused bit and then waits
//! for the in-flight count to drain, so every fast-path delivery that
//! read the pre-pause owner is enqueued *before* the labeling tuple,
//! and every later ingest observes the bit and diverts to the buffer.
//! Per-key FIFO therefore holds exactly as in the locked design.
//!
//! Metrics are sharded the same way: each task slot owns a cache-line
//! padded latency cell ([`ShardedHistogram`]), locked once per batch by
//! its own thread only and merged on [`ElasticExecutor::stats`]. Records
//! travel the task channels in batches, so channel synchronization and
//! clock reads amortize across the batch (`1 + n` `monotonic_ns` calls
//! per n-record batch — each record's post-process read serves both its
//! latency measurement and the batch's busy accounting — down from four
//! per record).
//!
//! # The SPSC ring plane
//!
//! With [`ExecutorConfig::single_producer`] set (the mode every
//! [`LiveDag`](crate::dag::LiveDag) pump runs in), each task slot also
//! owns a bounded [`crossbeam::spsc`] ring, and the fast path pushes
//! `(shard, record)` items straight into the owner's ring — a slot
//! write and one release store, no mutex, no condvar, no per-batch
//! `Vec` — while the Mutex+Condvar channel survives as a *control lane*
//! for the slow path and the §3.3 protocol (labels, flush markers,
//! pause-buffer replays, stop).
//!
//! Ordering between the two lanes rides on **watermarks**: every
//! control message carries the destination ring's push cursor read at
//! send time, and the task thread processes its ring up to that mark
//! before handling the message. Combined with the pause handshake this
//! reproduces the single-queue order exactly: a label is sent only
//! after the pause drained every in-flight ring push (so the mark
//! covers all pre-pause records), and a pause-buffer replay is sent
//! before the shard's word reopens (so every later ring push lands
//! beyond the replay's mark).
//!
//! Setting [`ExecutorConfig::baseline_locked_routing`] restores the
//! pre-optimization data plane — every record through the global routing
//! mutex and a global latency-histogram lock — and exists solely as the
//! `--baseline` arm of the throughput harness.
//!
//! # Remote egress
//!
//! A shard hosted by a peer process (see [`crate::migrate`]) is marked
//! `remote` in the atomic shard word. The fast path resolves it without
//! the routing lock: the word names the shard remote, a per-shard
//! forwarder mirror supplies the egress closure, and the closure
//! enqueues onto the migration link's lock-free MPSC queue — so
//! steady-state forwarding to a remote shard is wait-free end to end.
//! The route guard spans the enqueue, which lets a migration taking the
//! shard back pause the word and know every in-flight forward already
//! reached the link queue (and therefore precedes its `COMMIT_ACK`).

use std::path::PathBuf;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use crossbeam::utils::CachePadded;
use elasticutor_core::balance::LoadBalancer;
use elasticutor_core::error::{Error, Result};
use elasticutor_core::ids::{ShardId, TaskId};
use elasticutor_core::reassign::ReassignmentTracker;
use elasticutor_core::routing::{AtomicShardTable, FastRoute, RouteDecision, RoutingTable};
use elasticutor_metrics::{LatencyHistogram, ShardedHistogram};
use elasticutor_state::{DurableOptions, ShardSnapshot, StateStore};
use parking_lot::{Mutex, RwLock};

use crate::record::{monotonic_ns, Operator, Record, RecordBatch};

/// Configuration of a live elastic executor.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// `z` — number of shards (paper default 256).
    pub num_shards: u32,
    /// Task threads to start with (cores initially granted).
    pub initial_tasks: u32,
    /// `θ` — imbalance threshold for [`ElasticExecutor::rebalance`].
    pub imbalance_threshold: f64,
    /// Upper bound on shard moves per rebalance pass.
    pub max_moves_per_rebalance: usize,
    /// Capacity of the output channel **in batches**. `None` (default)
    /// is unbounded — right for a standalone executor whose consumer
    /// drains at its own pace. A pipeline bounds intermediate stages so
    /// that a stalled consumer blocks the emitting task threads,
    /// propagating backpressure upstream hop by hop.
    pub output_capacity: Option<usize>,
    /// Maximum *concurrent* task threads (slot-table size; slots are
    /// reused after [`ElasticExecutor::remove_task`]). Sized well above
    /// any machine's core count; raising it costs one padded sender
    /// cell and one latency cell per slot.
    pub max_task_slots: u32,
    /// Benchmark-only: route every record through the global routing
    /// mutex and a global latency-histogram lock, reproducing the
    /// pre-optimization data plane for `--baseline` comparisons.
    ///
    /// Defaults to `false`, unless the environment variable
    /// `ELASTICUTOR_BASELINE=1` is set — the switch CI uses to run the
    /// whole workspace test suite against the retained mutex plane, so
    /// the baseline path cannot silently rot. Explicit assignments of
    /// the field always win over the environment.
    pub baseline_locked_routing: bool,
    /// Declares that a **single thread** performs all submissions
    /// (`ingest`/`ingest_routed`/`ingest_batch*`), enabling the per-task
    /// SPSC ring fast path: records go straight into the owner task's
    /// bounded ring instead of its Mutex+Condvar channel. The
    /// [`LiveDag`](crate::dag::LiveDag) builder turns this on for every
    /// operator it constructs (each executor is fed by exactly one pump
    /// thread). Submitting from several threads anyway is safe — a
    /// producer guard serializes them — but forfeits the point; leave
    /// this `false` (the default) for multi-submitter ingress, which
    /// keeps the MPMC channel. Ignored in baseline mode.
    pub single_producer: bool,
    /// Capacity, in records, of each task's SPSC ring (rounded up to a
    /// power of two). `None` — the default — sizes the ring to
    /// [`DEFAULT_RING_CAPACITY`]; the DAG/pipeline builders derive it
    /// from their `max_batch` instead. Validated by
    /// [`ElasticExecutor::start`]: a value below 2 or above 2²⁴ panics.
    /// Meaningful only with [`Self::single_producer`]; a full ring makes
    /// the submitter back off and retry, so this knob bounds the
    /// records parked between the submitter and each task.
    pub ring_capacity: Option<usize>,
    /// Failure containment: once a shard accumulates this many operator
    /// panics, the executor flags it for quarantine. Task threads only
    /// *request* — [`ElasticExecutor::take_quarantine_requests`] hands
    /// the flagged shards to a supervisor (see
    /// [`ExecutorGroup::supervise`](crate::group::ExecutorGroup::supervise)),
    /// which parks them with [`ElasticExecutor::quarantine_shard`].
    /// `None` (the default) disables the per-shard panic counter.
    pub quarantine_after: Option<u32>,
    /// Root directory of the durable state backend. `Some(dir)` makes
    /// [`ElasticExecutor::start`] open (or crash-recover) the state
    /// store via [`StateStore::open_durable`]: every mutation is
    /// write-ahead logged, checkpoints spill immutable runs, and a
    /// restart from the same directory replays the WAL over the newest
    /// checkpoint to rebuild every hosted shard exactly. `None` (the
    /// default) keeps the pure in-memory store.
    ///
    /// The environment variable `ELASTICUTOR_DURABILITY` seeds the
    /// default: `tmpdir` picks a unique temporary directory per
    /// executor (the switch CI uses to run the whole workspace suite
    /// against the durable path), any other non-empty value is used as
    /// the directory itself. Explicit assignments win over the
    /// environment.
    pub durability: Option<PathBuf>,
}

/// Ring capacity used when [`ExecutorConfig::ring_capacity`] is `None`.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            num_shards: 256,
            initial_tasks: 1,
            imbalance_threshold: 1.2,
            max_moves_per_rebalance: 64,
            output_capacity: None,
            max_task_slots: 64,
            baseline_locked_routing: std::env::var("ELASTICUTOR_BASELINE").is_ok_and(|v| v == "1"),
            single_producer: false,
            ring_capacity: None,
            quarantine_after: None,
            durability: default_durability(),
        }
    }
}

/// Resolves [`ExecutorConfig::durability`]'s default from the
/// `ELASTICUTOR_DURABILITY` environment variable (see the field docs).
fn default_durability() -> Option<PathBuf> {
    static TMPDIR_SEQ: AtomicU64 = AtomicU64::new(0);
    match std::env::var("ELASTICUTOR_DURABILITY") {
        Ok(v) if v == "tmpdir" => Some(std::env::temp_dir().join(format!(
            "elasticutor-dur-{}-{}",
            std::process::id(),
            TMPDIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ))),
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// One item of a task's SPSC data ring: a routed record and its shard.
type RingItem = (ShardId, Record);

/// A control-lane message plus its ring watermark: the task thread
/// processes its data ring up to `mark` items before handling `msg`,
/// which serializes the two lanes into the single-queue order the §3.3
/// protocol assumes. `mark` is zero (a no-op) for executors without
/// rings and for messages that must not wait (stop).
struct TaskEnvelope {
    mark: u64,
    msg: TaskMsg,
}

/// Work delivered to task threads.
enum TaskMsg {
    /// A single routed record (fast path of `ingest`, slow-path
    /// deliveries, and baseline mode).
    One(ShardId, Record),
    /// A routed batch: all records target this task, in arrival order.
    Batch(Vec<(ShardId, Record)>),
    /// The labeling tuple of the §3.3 protocol: when the source task
    /// dequeues it, every pending record of the shard has been processed
    /// and the reassignment can complete.
    Label(u64),
    /// The cross-process analogue of `Label`: when the source task
    /// dequeues it, every record enqueued before the pause has been
    /// processed and its state committed — the migration driver blocked
    /// on the channel may now extract the shard. Carries no label
    /// because the §3.3 bookkeeping for a cross-process move lives in
    /// the migration transport, not the local reassignment tracker.
    Flush(Sender<()>),
    Stop,
}

/// Forwards records of a shard that now lives in another process. Called
/// under the routing lock, so implementations must never block (the
/// migration transport enqueues an encoded frame on an unbounded
/// channel). A forwarder outliving its link may drop records, matching
/// the executor's shutdown semantics.
pub type RemoteForwarder = Arc<dyn Fn(ShardId, Record) + Send + Sync>;

/// A waiter-gated progress condvar: task threads call [`Self::notify`]
/// after each processed batch, and blocked producers (a DAG pump that
/// filled its in-flight window) park in [`Self::wait_until`] instead of
/// spin-polling.
///
/// The hot path pays one relaxed-ish atomic load when nobody is waiting —
/// the same waiter-gating idiom as the SPSC ring's consumer wakeup. The
/// handshake against lost wakeups is the classic Dekker pattern: the
/// waiter publishes its presence (`waiters` RMW + SeqCst fence) *before*
/// re-checking the predicate, and the notifier updates progress *before*
/// its fenced read of `waiters`, so at least one side always observes the
/// other. Waits additionally take a timeout, so even a misuse (predicate
/// never satisfied) degrades to bounded-latency polling, never a hang.
///
/// One notifier may be shared by several executors — an executor group
/// passes the same `Arc` to every instance so a pump waiting on the
/// *sum* of processed counts wakes on progress at any instance.
#[derive(Debug, Default)]
pub struct ProgressNotifier {
    waiters: AtomicU32,
    lock: std::sync::Mutex<()>,
    cv: std::sync::Condvar,
}

impl ProgressNotifier {
    /// Creates an idle notifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes every parked waiter. Cheap when none are parked.
    #[inline]
    pub fn notify(&self) {
        fence(Ordering::SeqCst);
        if self.waiters.load(Ordering::Relaxed) > 0 {
            let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }

    /// Parks until `done()` returns true or `timeout` elapses; returns
    /// the final predicate value. The predicate is evaluated with the
    /// waiter flag published, so a concurrent [`Self::notify`] cannot be
    /// missed.
    pub fn wait_until(&self, timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
        if done() {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.waiters.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let satisfied = loop {
            if done() {
                break true;
            }
            let now = Instant::now();
            if now >= deadline {
                break done();
            }
            let (g, _) = self
                .cv
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        };
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
        satisfied
    }
}

/// One entry of the slot table: the delivery ends of the task thread
/// currently occupying the slot. Padded so submitters routing to
/// different tasks never share a cache line; the `RwLock` reads/writes
/// on the hot path are single uncontended atomics (contended only when
/// a task starts or stops — or when a caller violates the
/// single-producer contract, which then degrades to serialization
/// instead of unsoundness).
struct TaskSlot {
    /// The control-lane channel (and, without rings, the data lane).
    sender: RwLock<Option<Sender<TaskEnvelope>>>,
    /// The data ring's producer end (single-producer mode only). Pushes
    /// need `&mut`, hence a write lock — uncontended, one CAS.
    ring: RwLock<Option<crossbeam::spsc::Producer<RingItem>>>,
}

/// A task's delivery handles as the control plane sees them: the
/// control-lane sender plus (in ring mode) the ring's watermark/wakeup
/// handle.
#[derive(Clone)]
struct TaskLink {
    tx: Sender<TaskEnvelope>,
    ring: Option<crossbeam::spsc::RingHandle<RingItem>>,
}

impl TaskLink {
    /// Sends a control message ordered after every ring item pushed so
    /// far: the watermark read here tells the consumer how deep to
    /// drain its ring first. Callers needing the §3.3 guarantees must
    /// have completed the pause handshake before sending, so the
    /// relevant pushes are already in the cursor.
    fn send(
        &self,
        msg: TaskMsg,
    ) -> std::result::Result<(), crossbeam::channel::SendError<TaskEnvelope>> {
        let mark = self
            .ring
            .as_ref()
            .map_or(0, crossbeam::spsc::RingHandle::tail);
        let res = self.tx.send(TaskEnvelope { mark, msg });
        if let Some(ring) = &self.ring {
            ring.wake_consumer();
        }
        res
    }

    /// Sends a control message that jumps the data ring (watermark 0) —
    /// only for `Stop`, whose semantics are "drop whatever is queued".
    fn send_now(
        &self,
        msg: TaskMsg,
    ) -> std::result::Result<(), crossbeam::channel::SendError<TaskEnvelope>> {
        let res = self.tx.send(TaskEnvelope { mark: 0, msg });
        if let Some(ring) = &self.ring {
            ring.wake_consumer();
        }
        res
    }
}

/// Control state shared by the public handle and the task threads.
struct Inner<O: Operator> {
    /// Slow-path/two-tier routing (shard → task) with pause buffers,
    /// plus the task registry — one lock because every control-plane
    /// update touches both. **Not** taken by steady-state submits.
    routing: Mutex<RoutingState>,
    /// The wait-free fast mirror of tier 2, indexed by shard, resolving
    /// to slot indices. Kept coherent with `routing` by the control
    /// plane under that lock.
    shard_table: AtomicShardTable,
    /// Slot → task channel. Slot indices are what `shard_table` words
    /// carry; the pause handshake guarantees a slot read under a route
    /// guard stays occupied until the guard drops.
    slots: Box<[CachePadded<TaskSlot>]>,
    /// Per-slot latency cells, written by each task thread into its own
    /// padded cell (one lock per batch), merged on `stats`.
    latency: ShardedHistogram,
    /// Latency history of retired task slots — and, in baseline mode,
    /// the single global histogram every record locks.
    retired_latency: Mutex<LatencyHistogram>,
    /// The §3.3 state machine: in-flight reassignments by label, with
    /// exactly-once completion (shared with the simulated engine via
    /// `elasticutor_core::reassign`).
    reassigns: Mutex<ReassignmentTracker<()>>,
    state: Arc<StateStore>,
    operator: O,
    outputs: Sender<RecordBatch>,
    /// Per-shard record counters for the balancer (reset on rebalance).
    shard_counts: Vec<AtomicU64>,
    /// Records accepted by `ingest` (λ numerator for live controllers).
    arrivals: AtomicU64,
    processed: AtomicU64,
    /// Records emitted downstream (lets a pipeline detect quiescence of
    /// the inter-stage channel with monotonic counters alone).
    emitted: AtomicU64,
    /// Nanoseconds task threads spent inside `Operator::process` (μ
    /// denominator for live controllers).
    busy_ns: AtomicU64,
    /// Records whose `Operator::process` panicked (counted under
    /// `processed` as well — they were consumed).
    operator_panics: AtomicU64,
    /// Per-shard cumulative operator panic counts — touched only on the
    /// (already slow) panic path, reset when a quarantined shard is
    /// released. Allocated regardless, consulted only when
    /// `quarantine_after` is set.
    panic_counts: Box<[AtomicU32]>,
    /// See [`ExecutorConfig::quarantine_after`].
    quarantine_after: Option<u32>,
    /// Shards whose panic count crossed the threshold. Task threads
    /// only *flag* shards here — parking one blocks on the owner task's
    /// flush marker, so a supervisor thread must run the actual
    /// [`ElasticExecutor::quarantine_shard`].
    quarantine_req: Mutex<Vec<ShardId>>,
    /// Quarantined shards, parked with their extracted state until
    /// [`ElasticExecutor::release_quarantined`].
    parked: Mutex<std::collections::BTreeMap<ShardId, ShardSnapshot>>,
    /// Records dropped because their shard was quarantined.
    quarantine_dropped: AtomicU64,
    /// Completed reassignments: (sync_ns, total_ns).
    reassignment_log: Mutex<Vec<(u64, u64)>>,
    /// See [`ExecutorConfig::baseline_locked_routing`].
    baseline: bool,
    /// Per-task SPSC rings are live (`single_producer` and not
    /// baseline); the fast path pushes rings, the channel is control.
    use_rings: bool,
    /// Wait-free mirror of `RoutingState::remote`, indexed by shard:
    /// the fast path reads it (one uncontended `RwLock` read) when the
    /// shard word says remote, without touching the routing lock. Kept
    /// coherent by the control plane: set *before* the word flips to
    /// remote, cleared *after* the word is paused back.
    remote_fast: Box<[RwLock<Option<RemoteForwarder>>]>,
    /// Signalled after every processed batch so blocked producers can
    /// park instead of spin-polling `processed`. Shared across all
    /// instances of an executor group.
    progress: Arc<ProgressNotifier>,
}

struct RoutingState {
    table: RoutingTable<Record>,
    /// Shards hosted by a remote process: records route to the peer's
    /// forwarder instead of a local task. A remote shard's atomic word
    /// stays paused permanently, so every fast-path submit diverts here.
    remote: std::collections::BTreeMap<ShardId, RemoteForwarder>,
    senders: std::collections::BTreeMap<TaskId, TaskLink>,
    /// Task → occupied slot index.
    task_slots: std::collections::BTreeMap<TaskId, usize>,
    /// Slot indices available for new tasks.
    free_slots: Vec<usize>,
    /// Tasks currently being drained by `remove_task`: they reject new
    /// inbound shard moves, closing the race where a move begun after
    /// the drain check lands a shard on a task about to stop.
    draining: std::collections::BTreeSet<TaskId>,
    next_task: u32,
}

/// Cumulative load counters sampled by live controllers (see
/// [`ElasticExecutor::load_sample`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadSample {
    /// Records accepted by `ingest` since start.
    pub arrivals: u64,
    /// Records fully processed since start.
    pub processed: u64,
    /// Nanoseconds task threads spent inside the operator since start.
    pub busy_ns: u64,
    /// Bytes of state currently held.
    pub state_bytes: u64,
}

/// Runtime statistics snapshot.
#[derive(Clone, Debug)]
pub struct ExecutorStats {
    /// Records fully processed.
    pub processed: u64,
    /// Records whose operator invocation panicked. The record is dropped
    /// but the task thread, routing state, and shard state all survive —
    /// a poison record cannot take the executor down.
    pub operator_panics: u64,
    /// Live task count.
    pub tasks: usize,
    /// Latency distribution (ingest → processed), merged across task
    /// slots (live and retired).
    pub latency: LatencyHistogram,
    /// Completed reassignments as (sync_ns, total_ns) pairs.
    pub reassignments: Vec<(u64, u64)>,
    /// Total state bytes currently held.
    pub state_bytes: u64,
}

/// A live elastic executor: a pool of task threads behind a two-tier
/// routing table, sharing one in-process state store.
pub struct ElasticExecutor<O: Operator> {
    inner: Arc<Inner<O>>,
    threads: Mutex<Vec<(TaskId, JoinHandle<()>)>>,
    output_rx: Receiver<RecordBatch>,
    config: ExecutorConfig,
}

impl<O: Operator> ElasticExecutor<O> {
    /// Starts the executor with `config.initial_tasks` task threads.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration: zero shards or tasks,
    /// `initial_tasks > max_task_slots`, or a `ring_capacity` outside
    /// `2..=2^24`.
    pub fn start(config: ExecutorConfig, operator: O) -> Self {
        let (out_tx, out_rx) = match config.output_capacity {
            Some(cap) => bounded(cap),
            None => unbounded(),
        };
        Self::start_with_output(config, operator, out_tx, out_rx, Arc::default())
    }

    /// Starts the executor emitting into a **caller-supplied** output
    /// channel, with a caller-supplied progress notifier. This is how an
    /// executor group wires all its instances to one merged output
    /// stream (every instance holds a clone of the same `Sender`, so
    /// downstream consumers see a single channel regardless of the
    /// group's size) and one shared [`ProgressNotifier`] (so a producer
    /// waiting on the group's summed `processed` count wakes on progress
    /// at any instance). `config.output_capacity` is ignored — the
    /// caller already chose the channel's bound.
    ///
    /// # Panics
    ///
    /// Same validation as [`Self::start`].
    pub fn start_with_output(
        config: ExecutorConfig,
        operator: O,
        out_tx: Sender<RecordBatch>,
        out_rx: Receiver<RecordBatch>,
        progress: Arc<ProgressNotifier>,
    ) -> Self {
        assert!(config.num_shards > 0, "need at least one shard");
        assert!(config.initial_tasks > 0, "need at least one task");
        assert!(
            config.initial_tasks <= config.max_task_slots,
            "initial_tasks exceeds max_task_slots"
        );
        if let Some(capacity) = config.ring_capacity {
            assert!(
                (2..=1 << 24).contains(&capacity),
                "ring_capacity {capacity} outside the supported 2..=2^24 range"
            );
        }
        let max_slots = config.max_task_slots as usize;
        let inner = Arc::new(Inner {
            routing: Mutex::new(RoutingState {
                table: RoutingTable::new(config.num_shards, TaskId(0)),
                remote: std::collections::BTreeMap::new(),
                senders: std::collections::BTreeMap::new(),
                task_slots: std::collections::BTreeMap::new(),
                free_slots: (0..max_slots).rev().collect(),
                draining: std::collections::BTreeSet::new(),
                next_task: 0,
            }),
            shard_table: AtomicShardTable::new(config.num_shards, 0),
            slots: (0..max_slots)
                .map(|_| {
                    CachePadded::new(TaskSlot {
                        sender: RwLock::new(None),
                        ring: RwLock::new(None),
                    })
                })
                .collect(),
            latency: ShardedHistogram::new(max_slots),
            retired_latency: Mutex::new(LatencyHistogram::new()),
            reassigns: Mutex::new(ReassignmentTracker::new()),
            state: match &config.durability {
                // Open-or-recover: a fresh directory starts all dense
                // shards hosted empty (same shape as `with_shards`); a
                // reused one replays its WAL over the newest checkpoint.
                Some(dir) => {
                    StateStore::open_durable(config.num_shards, DurableOptions::new(dir.clone()))
                        .unwrap_or_else(|e| panic!("open durable state at {}: {e}", dir.display()))
                }
                None => Arc::new(StateStore::with_shards(config.num_shards)),
            },
            operator,
            outputs: out_tx,
            shard_counts: (0..config.num_shards).map(|_| AtomicU64::new(0)).collect(),
            arrivals: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            operator_panics: AtomicU64::new(0),
            panic_counts: (0..config.num_shards).map(|_| AtomicU32::new(0)).collect(),
            quarantine_after: config.quarantine_after,
            quarantine_req: Mutex::new(Vec::new()),
            parked: Mutex::new(std::collections::BTreeMap::new()),
            quarantine_dropped: AtomicU64::new(0),
            reassignment_log: Mutex::new(Vec::new()),
            baseline: config.baseline_locked_routing,
            use_rings: config.single_producer && !config.baseline_locked_routing,
            remote_fast: (0..config.num_shards).map(|_| RwLock::new(None)).collect(),
            progress,
        });
        let executor = Self {
            inner,
            threads: Mutex::new(Vec::new()),
            output_rx: out_rx,
            config,
        };
        for _ in 0..executor.config.initial_tasks {
            executor.add_task().expect("initial task");
        }
        // Spread shards across the initial tasks (both tiers, under the
        // routing lock, before any record can arrive).
        {
            let mut rs = executor.inner.routing.lock();
            let tasks: Vec<TaskId> = rs.senders.keys().copied().collect();
            for s in 0..executor.config.num_shards {
                let t = tasks[s as usize % tasks.len()];
                rs.table.set_task(ShardId(s), t).expect("fresh shard");
                let slot = rs.task_slots[&t] as u32;
                executor.inner.shard_table.set_slot(ShardId(s), slot);
            }
        }
        executor
    }

    /// Tier-1 hash — no lock, no shared state.
    #[inline]
    fn shard_of(&self, record: &Record) -> ShardId {
        ShardId(elasticutor_core::hash::key_to_shard(
            record.key.value(),
            self.config.num_shards,
        ))
    }

    /// Submits a record to an explicitly chosen shard, bypassing the
    /// key → shard hash — the delivery primitive behind shuffle and
    /// broadcast edges of a [`LiveDag`](crate::dag::LiveDag), whose
    /// shard is picked by the edge's grouping rather than the key. Same
    /// wait-free routing and ordering guarantees as
    /// [`Ingest::ingest`](crate::ingest::Ingest::ingest), but
    /// per-*shard* FIFO instead of per-key (per-key FIFO follows only
    /// when the caller routes each key consistently, as the key hash
    /// does).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is outside `0..num_shards`.
    pub fn ingest_routed(&self, shard: ShardId, record: Record) {
        self.inner.arrivals.fetch_add(1, Ordering::Relaxed);
        self.inner.shard_counts[shard.index()].fetch_add(1, Ordering::Relaxed);
        if self.inner.baseline {
            self.submit_slow(shard, record);
            return;
        }
        let mut record = record;
        loop {
            match self.inner.shard_table.begin_route(shard) {
                FastRoute::Deliver(guard) if self.inner.use_rings => {
                    // Ring mode: push the item into the owner's SPSC
                    // ring. The guard spans the push (a pending pause
                    // waits for it), but never a *blocked* push: on a
                    // full ring we drop the guard, back off, and
                    // re-route — the shard may have been paused or
                    // reassigned while the ring was full.
                    let mut cell = self.inner.slots[guard.slot() as usize].ring.write();
                    match cell.as_mut() {
                        Some(producer) => match producer.try_push((shard, record)) {
                            Ok(()) => return,
                            Err((_, r)) => {
                                record = r;
                                drop(cell);
                                drop(guard);
                                ring_full_backoff();
                            }
                        },
                        // Empty slot: the executor was halted in place.
                        None => {
                            drop(cell);
                            drop(guard);
                            return self.submit_slow(shard, record);
                        }
                    }
                }
                FastRoute::Deliver(guard) => {
                    let cell = self.inner.slots[guard.slot() as usize].sender.read();
                    match cell.as_ref() {
                        // The in-flight guard is held across the send: a
                        // concurrent pause of this shard enqueues its label
                        // only after we finish, so the record lands ahead of
                        // the label in the owner's FIFO queue. A send error
                        // means the executor is halting; the record is
                        // dropped, matching shutdown semantics.
                        Some(sender) => {
                            let _ = sender.send(TaskEnvelope {
                                mark: 0,
                                msg: TaskMsg::One(shard, record),
                            });
                        }
                        // Empty slot: the executor was halted in place
                        // (`halt_shared`). Resolve under the lock (which
                        // will drop the record — no senders remain).
                        None => {
                            drop(cell);
                            drop(guard);
                            self.submit_slow(shard, record);
                        }
                    }
                    return;
                }
                FastRoute::Remote(guard) => {
                    // Wait-free remote egress: the forwarder mirror is
                    // read without the routing lock, and the enqueue it
                    // performs is a lock-free MPSC push. The guard spans
                    // the call so a migration taking the shard back can
                    // drain in-flight forwards.
                    let cell = self.inner.remote_fast[shard.index()].read();
                    match cell.as_ref() {
                        Some(forward) => forward(shard, record),
                        None => {
                            drop(cell);
                            drop(guard);
                            self.submit_slow(shard, record);
                        }
                    }
                    return;
                }
                FastRoute::Paused => return self.submit_slow(shard, record),
            }
        }
    }

    /// Submits a batch of `(shard, record)` pairs with the shard chosen
    /// by the caller — the batched form of [`Self::ingest_routed`],
    /// amortizing channel synchronization: records are routed
    /// individually (wait-free) but grouped per destination task into
    /// one channel send each. Per-key FIFO holds when the caller routes
    /// each key consistently — records of one key share a shard, a
    /// shard's owner cannot change mid-wave (the route guards pin it),
    /// waves preserve submission order, and a shard observed paused
    /// diverts for the rest of the call so no later record can overtake
    /// through the fast path.
    ///
    /// The input iterator is consumed in bounded waves of 256 records:
    /// route guards are held only across one wave's grouping and sends —
    /// never while pulling from the caller's iterator — so a slow or
    /// unbounded iterator cannot stall a concurrent reassignment's pause
    /// handshake, and the number of guards alive per call stays far
    /// below the shard word's in-flight capacity.
    ///
    /// # Panics
    ///
    /// Panics if any shard is outside `0..num_shards`.
    pub fn ingest_batch_routed(&self, records: impl IntoIterator<Item = (ShardId, Record)>) {
        /// Records routed (and guards held) per wave.
        const ROUTE_WAVE: usize = 256;
        if self.inner.baseline {
            for (shard, record) in records {
                self.ingest_routed(shard, record);
            }
            return;
        }
        let mut iter = records.into_iter();
        let mut wave: Vec<(ShardId, Record)> = Vec::new();
        // Shards observed paused during this call: every later record
        // of the same shard must divert too, or it could overtake the
        // diverted one through the fast path once the pause completes.
        let mut diverted: Vec<ShardId> = Vec::new();
        let mut slow: Vec<(ShardId, Record)> = Vec::new();
        loop {
            // Pull the next wave with no guards held.
            wave.extend(iter.by_ref().take(ROUTE_WAVE));
            if wave.is_empty() {
                break;
            }
            self.inner
                .arrivals
                .fetch_add(wave.len() as u64, Ordering::Relaxed);
            for (shard, _) in &wave {
                self.inner.shard_counts[shard.index()].fetch_add(1, Ordering::Relaxed);
            }
            self.route_wave(&mut wave, &mut diverted, &mut slow);
        }
        if !slow.is_empty() {
            let mut rs = self.inner.routing.lock();
            for (shard, record) in slow {
                Self::route_locked(&mut rs, shard, record);
            }
        }
    }

    /// Routes one wave of pre-counted records, leaving `wave` empty:
    /// guards pin every routed shard while per-slot groups are
    /// delivered (ring pushes in ring mode, one channel batch per slot
    /// otherwise). Records a full ring rejects are retried — with all
    /// guards dropped in between, so a pending pause can complete and
    /// the retry re-reads the (possibly changed) routing.
    fn route_wave(
        &self,
        wave: &mut Vec<(ShardId, Record)>,
        diverted: &mut Vec<ShardId>,
        slow: &mut Vec<(ShardId, Record)>,
    ) {
        let mut retry: Vec<(ShardId, Record)> = Vec::new();
        loop {
            {
                // Per-slot groups plus the guards pinning every routed
                // shard.
                let mut groups: Vec<(usize, Vec<(ShardId, Record)>)> = Vec::new();
                let mut guards = Vec::new();
                for (shard, record) in wave.drain(..) {
                    if !diverted.is_empty() && diverted.contains(&shard) {
                        slow.push((shard, record));
                        continue;
                    }
                    match self.inner.shard_table.begin_route(shard) {
                        FastRoute::Deliver(guard) => {
                            let slot = guard.slot() as usize;
                            match groups.iter_mut().find(|(s, _)| *s == slot) {
                                Some((_, group)) => group.push((shard, record)),
                                None => groups.push((slot, vec![(shard, record)])),
                            }
                            guards.push(guard);
                        }
                        FastRoute::Remote(guard) => {
                            let cell = self.inner.remote_fast[shard.index()].read();
                            match cell.as_ref() {
                                Some(forward) => forward(shard, record),
                                None => slow.push((shard, record)),
                            }
                            drop(cell);
                            drop(guard);
                        }
                        FastRoute::Paused => {
                            diverted.push(shard);
                            slow.push((shard, record));
                        }
                    }
                }
                for (slot, group) in groups {
                    if self.inner.use_rings {
                        let mut cell = self.inner.slots[slot].ring.write();
                        match cell.as_mut() {
                            Some(producer) => {
                                let mut queue: std::collections::VecDeque<(ShardId, Record)> =
                                    group.into();
                                producer.try_push_batch(&mut queue);
                                // A full ring keeps the suffix; records
                                // of one shard all share this group, so
                                // retrying the suffix preserves their
                                // order.
                                retry.extend(queue);
                            }
                            None => {
                                drop(cell);
                                slow.extend(group);
                            }
                        }
                    } else {
                        let cell = self.inner.slots[slot].sender.read();
                        match cell.as_ref() {
                            Some(sender) => {
                                let _ = sender.send(TaskEnvelope {
                                    mark: 0,
                                    msg: TaskMsg::Batch(group),
                                });
                            }
                            None => {
                                drop(cell);
                                slow.extend(group);
                            }
                        }
                    }
                }
                // Only now may pending pauses of this wave's shards
                // complete.
                drop(guards);
            }
            if retry.is_empty() {
                return;
            }
            ring_full_backoff();
            std::mem::swap(wave, &mut retry);
        }
    }

    /// Slow path: route one record under the routing lock (paused shards
    /// buffer; records for a halted executor drop).
    fn submit_slow(&self, shard: ShardId, record: Record) {
        let mut rs = self.inner.routing.lock();
        Self::route_locked(&mut rs, shard, record);
    }

    fn route_locked(rs: &mut RoutingState, shard: ShardId, record: Record) {
        // Remote shards forward to their peer before the local table is
        // consulted (the stale local mapping is kept only so the table's
        // shard arithmetic stays dense).
        if let Some(forward) = rs.remote.get(&shard) {
            forward(shard, record);
            return;
        }
        match rs.table.route_shard(shard, record) {
            RouteDecision::Buffered(_) => {} // parked until the move completes
            RouteDecision::Deliver(task, record) => {
                // A missing sender means the executor was halted in
                // place (`halt_shared`); drop the record rather than
                // panic the submitter. The watermarked send orders this
                // record behind every ring item already pushed — in
                // particular behind any earlier fast-path record of the
                // same shard.
                if let Some(link) = rs.senders.get(&task) {
                    let _ = link.send(TaskMsg::One(shard, record));
                }
            }
        }
    }

    /// Adds a task thread (a core was granted). Returns its id. Errors
    /// with [`Error::CapacityExceeded`] once
    /// [`ExecutorConfig::max_task_slots`] threads are live.
    pub fn add_task(&self) -> Result<TaskId> {
        let (tx, rx) = unbounded();
        let ring = self.inner.use_rings.then(|| {
            crossbeam::spsc::ring::<RingItem>(
                self.config.ring_capacity.unwrap_or(DEFAULT_RING_CAPACITY),
            )
        });
        let (producer, consumer) = match ring {
            Some((p, c)) => (Some(p), Some(c)),
            None => (None, None),
        };
        let link = TaskLink {
            tx: tx.clone(),
            ring: producer.as_ref().map(crossbeam::spsc::Producer::handle),
        };
        let (id, slot) = {
            let mut rs = self.inner.routing.lock();
            let slot = rs.free_slots.pop().ok_or(Error::CapacityExceeded {
                requested: self.inner.slots.len() + 1,
                available: self.inner.slots.len(),
            })?;
            let id = TaskId(rs.next_task);
            rs.next_task += 1;
            rs.senders.insert(id, link);
            rs.task_slots.insert(id, slot);
            *self.inner.slots[slot].sender.write() = Some(tx);
            *self.inner.slots[slot].ring.write() = producer;
            (id, slot)
        };
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name(format!("elastic-task-{}", id.0))
            .spawn(move || match consumer {
                Some(ring) => task_loop_ring(inner, id, slot, rx, ring),
                None => task_loop(inner, id, slot, rx),
            })
            .expect("spawn task thread");
        self.threads.lock().push((id, handle));
        Ok(id)
    }

    /// Removes a task thread (its core was revoked): drains its shards to
    /// the survivors via the reassignment protocol, then stops it.
    pub fn remove_task(&self, task: TaskId) -> Result<()> {
        let (loads, assignment, survivors) = {
            let mut rs = self.inner.routing.lock();
            if !rs.senders.contains_key(&task) {
                return Err(Error::UnknownTask(task));
            }
            if rs.senders.len().saturating_sub(rs.draining.len()) <= 1
                || rs.draining.contains(&task)
            {
                return Err(Error::LastTask(task));
            }
            // From here on no new reassignment may target this task
            // (`reassign_shard` checks the flag under the same lock), so
            // once the drain loop below observes "owns nothing, nothing
            // in flight toward it", that stays true.
            rs.draining.insert(task);
            let loads: Vec<f64> = self
                .inner
                .shard_counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed) as f64)
                .collect();
            let assignment = rs.table.assignment().to_vec();
            let survivors: Vec<TaskId> = rs
                .senders
                .keys()
                .copied()
                .filter(|t| *t != task && !rs.draining.contains(t))
                .collect();
            (loads, assignment, survivors)
        };
        let balancer = LoadBalancer {
            imbalance_threshold: self.config.imbalance_threshold,
            max_moves: usize::MAX,
        };
        let moves = balancer.plan_task_removal(&loads, &assignment, task, &survivors);
        for m in &moves {
            let _ = self.reassign_shard(m.shard, m.to);
        }
        // Drain until the task owns nothing and no in-flight reassignment
        // still targets it. The planned moves above are not enough on
        // their own: a reassignment that was already in flight when we
        // snapshotted the assignment can land a *new* shard on this task
        // afterwards, and paused shards reject new moves until their own
        // protocol completes — so keep re-planning stragglers each pass.
        let mut spread = 0usize;
        loop {
            // Read ownership and in-flight state under BOTH locks
            // (routing before reassigns, the global order): the label
            // handler takes the same two locks to complete a move, so a
            // pre-drain move targeting this task cannot land a shard
            // here between the two reads. Once both reads are clean
            // while the `draining` flag blocks new inbound moves, the
            // task stays empty.
            let (owned, pending_to_task) = {
                let rs = self.inner.routing.lock();
                let tracker = self.inner.reassigns.lock();
                // Remote shards keep a stale local mapping; they are not
                // owned by anyone here and must not block the drain.
                let owned: Vec<ShardId> = rs
                    .table
                    .shards_of(task)
                    .into_iter()
                    .filter(|s| !rs.remote.contains_key(s))
                    .collect();
                (owned, tracker.targets_task(task))
            };
            if owned.is_empty() && !pending_to_task {
                break;
            }
            for (shard, to) in
                elasticutor_core::reassign::spread_round_robin(&owned, &survivors, spread)
            {
                // Failures (shard paused mid-protocol, concurrent owner
                // change) resolve themselves; retry next pass.
                let _ = self.reassign_shard(shard, to);
            }
            spread = spread.wrapping_add(owned.len());
            std::thread::yield_now();
        }
        // Stop the thread and unregister it. The task owns no shards, so
        // no shard word references its slot and no fast-path submitter
        // can reach the sender cell we are about to clear.
        let (link, slot) = {
            let mut rs = self.inner.routing.lock();
            rs.draining.remove(&task);
            let link = rs.senders.remove(&task).expect("checked present");
            let slot = rs.task_slots.remove(&task).expect("slot registered");
            *self.inner.slots[slot].sender.write() = None;
            // Dropping the producer closes the ring; it is empty — the
            // drain above moved every shard off this task, and each
            // move's watermark forced the pre-move items through.
            *self.inner.slots[slot].ring.write() = None;
            (link, slot)
        };
        link.send_now(TaskMsg::Stop).expect("task channel open");
        let mut threads = self.threads.lock();
        if let Some(pos) = threads.iter().position(|(id, _)| *id == task) {
            let (_, handle) = threads.remove(pos);
            drop(threads);
            handle.join().expect("task thread exits cleanly");
        }
        // Retire the slot's latency history and free the slot — under
        // the routing lock so `stats` never sees the cell twice.
        {
            let mut rs = self.inner.routing.lock();
            let hist = self.inner.latency.take_cell(slot);
            self.inner.retired_latency.lock().merge(&hist);
            rs.free_slots.push(slot);
        }
        Ok(())
    }

    /// Starts the §3.3 consistent reassignment of `shard` to task `to`.
    /// Returns once the protocol is *initiated*; completion is
    /// asynchronous (when the labeling tuple drains). Errors if the shard
    /// is already in flight, the move is a no-op, or `to` is unknown.
    pub fn reassign_shard(&self, shard: ShardId, to: TaskId) -> Result<()> {
        let mut rs = self.inner.routing.lock();
        if !rs.senders.contains_key(&to) || rs.draining.contains(&to) {
            return Err(Error::UnknownTask(to));
        }
        if rs.remote.contains_key(&shard) {
            return Err(Error::ShardNotLocal(shard));
        }
        let from = rs.table.task_of(shard)?;
        if from == to {
            return Err(Error::ReassignmentNoop(shard, to));
        }
        rs.table.pause(shard)?;
        // The wait-free handshake: set the paused bit, wait out every
        // fast-path route that read the old owner. After this, all of
        // them are enqueued at `from` — the label below lands behind
        // them, and no later record can reach `from` outside the buffer.
        self.inner.shard_table.pause(shard);
        let label = self
            .inner
            .reassigns
            .lock()
            .begin(shard, from, to, monotonic_ns(), ());
        rs.senders[&from]
            .send(TaskMsg::Label(label))
            .expect("task channel open");
        Ok(())
    }

    /// Plans and executes one intra-executor rebalancing pass (paper
    /// §3.1), returning the number of shard moves initiated.
    pub fn rebalance(&self) -> usize {
        let (loads, assignment, tasks) = {
            let rs = self.inner.routing.lock();
            let loads: Vec<f64> = self
                .inner
                .shard_counts
                .iter()
                .map(|c| c.swap(0, Ordering::Relaxed) as f64)
                .collect();
            (
                loads,
                rs.table.assignment().to_vec(),
                rs.senders
                    .keys()
                    .copied()
                    .filter(|t| !rs.draining.contains(t))
                    .collect::<Vec<TaskId>>(),
            )
        };
        let balancer = LoadBalancer {
            imbalance_threshold: self.config.imbalance_threshold,
            max_moves: self.config.max_moves_per_rebalance,
        };
        let plan = balancer.plan(&loads, &assignment, &tasks);
        let mut initiated = 0;
        for m in plan.moves {
            if self.reassign_shard(m.shard, m.to).is_ok() {
                initiated += 1;
            }
        }
        initiated
    }

    /// The output stream of record batches emitted by the operator. Each
    /// batch preserves processing order; flatten for a per-record view.
    pub fn outputs(&self) -> &Receiver<RecordBatch> {
        &self.output_rx
    }

    /// Blocks until at least `n` records have been fully processed.
    pub fn wait_for_processed(&self, n: u64) {
        while !self
            .inner
            .progress
            .wait_until(Duration::from_millis(50), || {
                self.inner.processed.load(Ordering::Acquire) >= n
            })
        {}
    }

    /// The progress notifier task threads signal after each processed
    /// batch — the handle producers park on instead of spin-polling
    /// [`Self::processed_count`].
    pub fn progress_notifier(&self) -> &Arc<ProgressNotifier> {
        &self.inner.progress
    }

    /// Records fully processed so far (cheap atomic read; `stats` clones
    /// histograms and takes locks, this does not).
    pub fn processed_count(&self) -> u64 {
        self.inner.processed.load(Ordering::Acquire)
    }

    /// Records emitted downstream so far (cheap atomic read).
    pub fn emitted_count(&self) -> u64 {
        self.inner.emitted.load(Ordering::Acquire)
    }

    /// A cheap cumulative load sample for live controllers: consecutive
    /// samples differenced over a wall-clock window give λ (arrival
    /// rate), μ (per-core service rate = processed / busy seconds), and
    /// the standing backlog (arrivals − processed).
    pub fn load_sample(&self) -> LoadSample {
        LoadSample {
            arrivals: self.inner.arrivals.load(Ordering::Relaxed),
            processed: self.inner.processed.load(Ordering::Acquire),
            busy_ns: self.inner.busy_ns.load(Ordering::Relaxed),
            state_bytes: self.inner.state.total_bytes(),
        }
    }

    /// A snapshot of runtime statistics.
    pub fn stats(&self) -> ExecutorStats {
        let rs = self.inner.routing.lock();
        let mut latency = self.inner.retired_latency.lock().clone();
        for &slot in rs.task_slots.values() {
            latency.merge(&self.inner.latency.cell(slot));
        }
        ExecutorStats {
            processed: self.inner.processed.load(Ordering::Acquire),
            operator_panics: self.inner.operator_panics.load(Ordering::Relaxed),
            tasks: rs.senders.len(),
            latency,
            reassignments: self.inner.reassignment_log.lock().clone(),
            state_bytes: self.inner.state.total_bytes(),
        }
    }

    /// Current shard→task assignment (snapshot).
    pub fn assignment(&self) -> Vec<TaskId> {
        self.inner.routing.lock().table.assignment().to_vec()
    }

    /// Live task ids (snapshot).
    pub fn tasks(&self) -> Vec<TaskId> {
        self.inner.routing.lock().senders.keys().copied().collect()
    }

    /// Direct read access to the shared state store.
    pub fn state(&self) -> &Arc<StateStore> {
        &self.inner.state
    }

    /// Stops all task threads and returns final statistics. Buffered or
    /// queued records that were not yet processed are dropped, as are
    /// unread outputs.
    pub fn shutdown(self) -> ExecutorStats {
        let Self {
            inner,
            threads,
            output_rx,
            config: _,
        } = self;
        // Drop this handle's output receiver *before* joining: with a
        // bounded output channel and no external consumer, a task thread
        // can be blocked mid-send, and the `Stop` behind it would never
        // be dequeued. Disconnecting the only receiver turns that send
        // into an error the task loop handles (the batch is dropped,
        // matching the documented semantics). Pipelines hold their own
        // receiver clones, so their channels stay open here.
        drop(output_rx);
        halt(&inner, &threads)
    }
}

/// Stops every task thread of the executor behind `inner` and returns
/// final statistics. Idempotent: a second call finds no live senders or
/// join handles and just rebuilds the stats.
fn halt<O: Operator>(
    inner: &Arc<Inner<O>>,
    threads: &Mutex<Vec<(TaskId, JoinHandle<()>)>>,
) -> ExecutorStats {
    {
        let rs = inner.routing.lock();
        for link in rs.senders.values() {
            let _ = link.send_now(TaskMsg::Stop);
        }
    }
    let mut threads = threads.lock();
    for (_, handle) in threads.drain(..) {
        let _ = handle.join();
    }
    drop(threads);
    // Unregister the stopped tasks so the executor reports itself as
    // halted (`tasks()` empty) and late `ingest`s drop records instead
    // of feeding channels nobody drains: both the registry and the
    // fast-path sender cells are cleared, and slot latency history is
    // folded into the retired aggregate.
    {
        let mut rs = inner.routing.lock();
        rs.senders.clear();
        let slots: Vec<usize> = rs.task_slots.values().copied().collect();
        rs.task_slots.clear();
        for slot in slots {
            *inner.slots[slot].sender.write() = None;
            *inner.slots[slot].ring.write() = None;
            let hist = inner.latency.take_cell(slot);
            inner.retired_latency.lock().merge(&hist);
            rs.free_slots.push(slot);
        }
    }
    ExecutorStats {
        processed: inner.processed.load(Ordering::Acquire),
        operator_panics: inner.operator_panics.load(Ordering::Relaxed),
        tasks: 0,
        latency: inner.retired_latency.lock().clone(),
        reassignments: inner.reassignment_log.lock().clone(),
        state_bytes: inner.state.total_bytes(),
    }
}

/// The unified entry surface (see [`crate::ingest`]): key-hash routing
/// over the same wait-free fast path the routed primitives use.
impl<O: Operator> crate::ingest::Ingest for ElasticExecutor<O> {
    /// Routing is synchronous (the caller acts as the receiver daemon)
    /// and, in steady state, wait-free: one atomic RMW on the shard word
    /// plus an uncontended sender-cell read. Processing is asynchronous
    /// on whichever task owns the record's shard.
    fn ingest(&self, record: Record) {
        let shard = self.shard_of(&record);
        self.ingest_routed(shard, record);
    }

    fn ingest_batch(&self, batch: RecordBatch) {
        self.ingest_batch_routed(batch.into_iter().map(|r| (self.shard_of(&r), r)));
    }

    /// The executor has no bounded ingress queue — admission is the
    /// wait-free route itself (a full SPSC ring is absorbed by a bounded
    /// backoff-and-reroute, not a park) — so this never rejects.
    fn try_ingest_batch(&self, batch: RecordBatch) -> std::result::Result<(), RecordBatch> {
        crate::ingest::Ingest::ingest_batch(self, batch);
        Ok(())
    }

    fn accepted(&self) -> u64 {
        self.inner.arrivals.load(Ordering::Acquire)
    }
}

/// Deprecated pre-[`Ingest`](crate::ingest::Ingest) entry points, kept
/// as thin forwarders for one release.
impl<O: Operator> ElasticExecutor<O> {
    /// Renamed: use [`Ingest::ingest`](crate::ingest::Ingest::ingest).
    #[doc(hidden)]
    #[deprecated(note = "use `Ingest::ingest`")]
    pub fn submit(&self, record: Record) {
        crate::ingest::Ingest::ingest(self, record);
    }

    /// Renamed: use [`Self::ingest_routed`].
    #[doc(hidden)]
    #[deprecated(note = "renamed to `ingest_routed`")]
    pub fn submit_routed(&self, shard: ShardId, record: Record) {
        self.ingest_routed(shard, record);
    }

    /// Renamed: use
    /// [`Ingest::ingest_batch`](crate::ingest::Ingest::ingest_batch).
    #[doc(hidden)]
    #[deprecated(note = "use `Ingest::ingest_batch`")]
    pub fn submit_batch(&self, records: impl IntoIterator<Item = Record>) {
        self.ingest_batch_routed(records.into_iter().map(|r| (self.shard_of(&r), r)));
    }

    /// Renamed: use [`Self::ingest_batch_routed`].
    #[doc(hidden)]
    #[deprecated(note = "renamed to `ingest_batch_routed`")]
    pub fn submit_batch_routed(&self, records: impl IntoIterator<Item = (ShardId, Record)>) {
        self.ingest_batch_routed(records);
    }
}

// ---------------------------------------------------------------------------
// Cross-process migration hooks.
//
// These methods are the executor half of the migration transport in
// `crate::migrate`: the §3.3 pause handshake stretched across a process
// boundary. The transport sequences them; each method is individually
// atomic under the routing lock, and every failure path restores a
// consistent local state (the shard is either fully here or fully
// remote — never silently dropped).
// ---------------------------------------------------------------------------
impl<O: Operator> ElasticExecutor<O> {
    /// Starts migrating `shard` out of this process: pauses both routing
    /// tiers, waits for every in-flight fast-path route *and* every
    /// already-enqueued record of the shard to finish processing (the
    /// flush marker plays the labeling tuple's role through the owner's
    /// FIFO queue), then extracts the shard's state.
    ///
    /// On success the shard is **detached**: new records buffer in the
    /// pause buffer until the caller either ships the snapshot and calls
    /// [`Self::complete_migration`], or gives up and calls
    /// [`Self::abort_migration`] with the returned snapshot. Blocks for
    /// the drain; must not be called from a task thread.
    pub fn begin_migration(&self, shard: ShardId) -> Result<ShardSnapshot> {
        elasticutor_core::fault::fail_point("executor.pause")
            .map_err(|e| Error::Infeasible(e.to_string()))?;
        let (flushed, from) = self.pause_and_flush(shard)?;
        if flushed.recv().is_err() {
            // The owner task stopped (executor halting) before it
            // reached the marker: unwind the pause, surface a typed
            // error instead of wedging the transport.
            self.unwind_pause(shard);
            return Err(Error::UnknownTask(from));
        }
        Ok(self
            .inner
            .state
            .extract_shard(shard)
            .unwrap_or_else(|| ShardSnapshot::empty(shard)))
    }

    /// [`Self::begin_migration`] with a staging step between the drain
    /// and the extraction: once the shard is paused and fully drained,
    /// `stage` runs on a **copy** of its state while the store still
    /// hosts it. The durable migration path journals the snapshot there,
    /// so a crash between the journal write and the WAL's `Drop` record
    /// (which `extract_shard` logs) can never leave both sides empty —
    /// whichever write survived carries the same bytes. If `stage`
    /// errors, the pause unwinds and the shard resumes locally.
    pub fn begin_migration_staged<F>(&self, shard: ShardId, stage: F) -> Result<ShardSnapshot>
    where
        F: FnOnce(&ShardSnapshot) -> Result<()>,
    {
        elasticutor_core::fault::fail_point("executor.pause")
            .map_err(|e| Error::Infeasible(e.to_string()))?;
        let (flushed, from) = self.pause_and_flush(shard)?;
        if flushed.recv().is_err() {
            self.unwind_pause(shard);
            return Err(Error::UnknownTask(from));
        }
        let snapshot = self
            .inner
            .state
            .snapshot_shard(shard)
            .unwrap_or_else(|| ShardSnapshot::empty(shard));
        if let Err(e) = stage(&snapshot) {
            self.unwind_pause(shard);
            return Err(e);
        }
        self.inner.state.extract_shard(shard);
        Ok(snapshot)
    }

    /// Pauses both routing tiers of `shard` and enqueues a flush marker
    /// at its owner task. On success the returned channel fires once
    /// every record enqueued before the pause has been processed; the
    /// owner task id rides along for error reporting.
    fn pause_and_flush(&self, shard: ShardId) -> Result<(Receiver<()>, TaskId)> {
        let mut rs = self.inner.routing.lock();
        if rs.remote.contains_key(&shard) {
            return Err(Error::ShardNotLocal(shard));
        }
        let from = rs.table.task_of(shard)?;
        // A halted executor keeps its table but has no senders.
        let sender = rs
            .senders
            .get(&from)
            .cloned()
            .ok_or(Error::UnknownTask(from))?;
        rs.table.pause(shard)?;
        // Same wait-free handshake as `reassign_shard`: after this,
        // every delivery that read the pre-pause owner is enqueued
        // at `from`, and later submits divert to the pause buffer.
        self.inner.shard_table.pause(shard);
        let (tx, rx) = bounded(1);
        if sender.send(TaskMsg::Flush(tx)).is_err() {
            // The task channel closed under us (halt in progress):
            // unwind both pauses under this same lock hold.
            let _ = rs.table.abort_reassignment(shard);
            self.inner.shard_table.abort(shard);
            return Err(Error::UnknownTask(from));
        }
        Ok((rx, from))
    }

    /// Reverts a [`Self::pause_and_flush`] whose drain could not
    /// complete: releases the pause buffer back to the owner (dropped
    /// if the executor halted) and resumes the fast path.
    fn unwind_pause(&self, shard: ShardId) {
        let mut rs = self.inner.routing.lock();
        if let Ok(buffered) = rs.table.abort_reassignment(shard) {
            if !buffered.is_empty() {
                if let Some(sender) = rs
                    .table
                    .task_of(shard)
                    .ok()
                    .and_then(|t| rs.senders.get(&t))
                {
                    let batch: Vec<(ShardId, Record)> =
                        buffered.into_iter().map(|r| (shard, r)).collect();
                    let _ = sender.send(TaskMsg::Batch(batch));
                }
            }
            self.inner.shard_table.abort(shard);
        }
    }

    /// Completes an outbound migration after the peer acknowledged the
    /// installed state: replays the pause buffer through `forward` (in
    /// arrival order), invokes `flush_mark` (the transport enqueues its
    /// DONE marker here, behind the replayed records and ahead of every
    /// future forward), and flips the shard to remote routing — all
    /// atomically under the routing lock, so no record can slip between
    /// the replay and the flip. The shard's atomic word flips to
    /// `remote`: fast-path submits resolve the forwarder from a
    /// per-shard mirror and enqueue on the link's lock-free egress
    /// queue without ever taking this lock.
    pub fn complete_migration(
        &self,
        shard: ShardId,
        forward: RemoteForwarder,
        flush_mark: impl FnOnce(),
    ) -> Result<()> {
        let mut rs = self.inner.routing.lock();
        let buffered = rs.table.abort_reassignment(shard)?;
        for record in buffered {
            forward(shard, record);
        }
        flush_mark();
        *self.inner.remote_fast[shard.index()].write() = Some(Arc::clone(&forward));
        rs.remote.insert(shard, forward);
        // Flip the word paused → remote: fast-path submits now enqueue
        // on the egress wait-free instead of diverting to this lock.
        // The replayed records above happen-before the flip, so every
        // later fast-path forward lands behind them on the link queue.
        self.inner.shard_table.set_remote(shard);
        Ok(())
    }

    /// Aborts an outbound migration (peer rejected, aborted, or
    /// disconnected): reinstalls the snapshot, releases the pause buffer
    /// back to the local owner, and resumes both routing tiers. After
    /// this the shard is exactly as local as it was before
    /// [`Self::begin_migration`] — no record and no state entry is lost.
    pub fn abort_migration(&self, snapshot: ShardSnapshot) -> Result<()> {
        let shard = snapshot.shard;
        // Reinstall before resuming routing: the first record delivered
        // after the resume must see the state again. No task touches the
        // store for a paused shard, so the install cannot race.
        self.inner.state.install_shard(snapshot);
        let mut rs = self.inner.routing.lock();
        let buffered = rs.table.abort_reassignment(shard)?;
        let from = rs.table.task_of(shard)?;
        if !buffered.is_empty() {
            // A missing sender means the executor was halted mid-abort;
            // dropping the buffer matches shutdown semantics.
            if let Some(sender) = rs.senders.get(&from) {
                let batch: Vec<(ShardId, Record)> =
                    buffered.into_iter().map(|r| (shard, r)).collect();
                let _ = sender.send(TaskMsg::Batch(batch));
            }
        }
        self.inner.shard_table.abort(shard);
        Ok(())
    }

    /// Marks `shard` as hosted by a remote peer without a migration —
    /// initial ownership partitioning before any record flows. Discards
    /// the local (empty) copy of the shard's state, flips the shard's
    /// word to remote, and routes future records through `forward`
    /// (wait-free on the fast path). Errors if the shard has local
    /// state, is mid-reassignment, or is already remote.
    pub fn mark_remote(&self, shard: ShardId, forward: RemoteForwarder) -> Result<()> {
        let mut rs = self.inner.routing.lock();
        if rs.remote.contains_key(&shard) {
            return Err(Error::ShardNotLocal(shard));
        }
        if rs.table.is_paused(shard) {
            return Err(Error::ReassignmentInProgress(shard));
        }
        rs.table.task_of(shard)?; // validates the shard id
        if self.inner.state.shard_keys(shard) > 0 {
            return Err(Error::ShardStateConflict(shard));
        }
        self.inner.state.extract_shard(shard); // discard the empty copy
                                               // Pause (draining in-flight local deliveries), publish the
                                               // forwarder mirror, then flip the word to remote.
        self.inner.shard_table.pause(shard);
        *self.inner.remote_fast[shard.index()].write() = Some(Arc::clone(&forward));
        rs.remote.insert(shard, forward);
        self.inner.shard_table.set_remote(shard);
        Ok(())
    }

    /// Checks whether an inbound migration offer for `shard` can be
    /// honored: the shard must not be mid-reassignment or -migration
    /// here, and must not have live local state (two processes must
    /// never both own a shard).
    pub fn can_adopt(&self, shard: ShardId) -> Result<()> {
        let rs = self.inner.routing.lock();
        rs.table.task_of(shard)?;
        if rs.table.is_paused(shard) {
            return Err(Error::ReassignmentInProgress(shard));
        }
        if !rs.remote.contains_key(&shard) && self.inner.state.shard_keys(shard) > 0 {
            return Err(Error::ShardStateConflict(shard));
        }
        Ok(())
    }

    /// Installs an inbound migrated shard (transport `COMMIT`): evicts
    /// the local empty copy if one exists, installs the snapshot, maps
    /// the shard to a local task, and holds routing **closed** — the
    /// atomic word paused and the table buffering — so local submits
    /// queue up behind the peer's replayed records until
    /// [`Self::adopt_finish`]. Replayed records arriving between the
    /// two calls are delivered with [`Self::deliver_to_owner`].
    pub fn adopt_install(&self, snapshot: ShardSnapshot) -> Result<()> {
        let shard = snapshot.shard;
        // Phase 1: close the shard's routing. A remote shard's fast
        // path is already paused and nothing local can touch its state.
        // A shard that is still local (an empty copy) needs the full
        // pause + flush drain first — otherwise a record already queued
        // at its owner task could create state between the emptiness
        // check and the install, and `install_shard` would panic.
        let was_remote = {
            let rs = self.inner.routing.lock();
            if rs.table.is_paused(shard) {
                return Err(Error::ReassignmentInProgress(shard));
            }
            rs.table.task_of(shard)?;
            rs.remote.contains_key(&shard)
        };
        if !was_remote {
            let (flushed, from) = self.pause_and_flush(shard)?;
            if flushed.recv().is_err() {
                self.unwind_pause(shard);
                return Err(Error::UnknownTask(from));
            }
        }
        // Phase 2: install and map. The shard is paused on both tiers
        // either way, so no task thread can race the store mutation and
        // every control-plane operation refuses it until adopt_finish.
        let mut rs = self.inner.routing.lock();
        let state = &self.inner.state;
        if state.hosts(shard) && state.shard_keys(shard) > 0 {
            // Drained records created state after `can_adopt`'s check:
            // a genuine conflict — restore routing and refuse.
            drop(rs);
            if !was_remote {
                self.unwind_pause(shard);
            }
            return Err(Error::ShardStateConflict(shard));
        }
        if was_remote {
            // Map the shard before touching state so a failure leaves
            // nothing half-done. A local shard keeps its current owner
            // (any task works — state is process-shared); a rebalance
            // can move it later.
            let task = rs
                .senders
                .keys()
                .copied()
                .find(|t| !rs.draining.contains(t))
                .ok_or_else(|| Error::Infeasible(format!("no live task to adopt {shard}")))?;
            rs.table.set_task(shard, task)?;
            rs.table.pause(shard)?; // buffer local submits until adopt_finish
            rs.remote.remove(&shard);
            // Close the fast path: pause the word — draining in-flight
            // wait-free forwards, so every pre-install forward is in
            // the egress queue and therefore precedes the COMMIT_ACK
            // sent after this returns — then retire the mirror. The
            // word stays paused (adopt_finish's `finish` reopens it and
            // clears the remote mark).
            self.inner.shard_table.pause(shard);
            *self.inner.remote_fast[shard.index()].write() = None;
        }
        if state.hosts(shard) {
            state.extract_shard(shard); // evict the empty local copy
        }
        state.install_shard(snapshot);
        Ok(())
    }

    /// Finishes an inbound migration (transport `DONE`): flushes local
    /// records buffered during adoption to the shard's new owner task —
    /// behind every replayed record — and reopens the fast path.
    pub fn adopt_finish(&self, shard: ShardId) -> Result<()> {
        let mut rs = self.inner.routing.lock();
        let task = rs.table.task_of(shard)?;
        let buffered = rs.table.finish_reassignment(shard, task)?;
        if !buffered.is_empty() {
            // A missing sender means the executor halted mid-adoption;
            // dropping the buffer matches shutdown semantics.
            if let Some(sender) = rs.senders.get(&task) {
                let batch: Vec<(ShardId, Record)> =
                    buffered.into_iter().map(|r| (shard, r)).collect();
                let _ = sender.send(TaskMsg::Batch(batch));
            }
        }
        match rs.task_slots.get(&task) {
            Some(&slot) => self.inner.shard_table.finish(shard, slot as u32),
            // Halted: no slot to point at. Resume the word to its stale
            // slot — all sender cells are empty, so fast-path submits
            // fall through to the slow path and drop, matching halted
            // semantics.
            None => self.inner.shard_table.abort(shard),
        }
        Ok(())
    }

    /// Delivers a record straight to the task currently mapped to
    /// `shard`, bypassing pause buffering — the transport uses this for
    /// the peer's replayed records during the `COMMIT`→`DONE` window,
    /// which must land *ahead of* the locally buffered ones.
    pub fn deliver_to_owner(&self, shard: ShardId, record: Record) -> Result<()> {
        self.inner.arrivals.fetch_add(1, Ordering::Relaxed);
        self.inner.shard_counts[shard.index()].fetch_add(1, Ordering::Relaxed);
        let rs = self.inner.routing.lock();
        let task = rs.table.task_of(shard)?;
        let sender = rs.senders.get(&task).ok_or(Error::UnknownTask(task))?;
        let _ = sender.send(TaskMsg::One(shard, record));
        Ok(())
    }

    /// Accepts a record arriving from a remote peer (transport `DATA`):
    /// routed like a local submit — delivered to the owning task,
    /// buffered if the shard is paused, or forwarded onward if the
    /// shard has since moved again.
    pub fn receive_remote(&self, shard: ShardId, record: Record) {
        self.inner.arrivals.fetch_add(1, Ordering::Relaxed);
        self.inner.shard_counts[shard.index()].fetch_add(1, Ordering::Relaxed);
        let mut rs = self.inner.routing.lock();
        Self::route_locked(&mut rs, shard, record);
    }

    /// Shards currently routed to a remote peer, ascending.
    pub fn remote_shards(&self) -> Vec<ShardId> {
        self.inner.routing.lock().remote.keys().copied().collect()
    }

    /// Whether `shard`'s routing is paused — mid-reassignment, or
    /// parked by a migration that died before resolving. Crash
    /// recovery uses this to tell a surviving sender (shard parked,
    /// snapshot extracted) from a freshly restarted process (shard
    /// plain local and empty).
    pub fn is_shard_paused(&self, shard: ShardId) -> bool {
        self.inner.routing.lock().table.is_paused(shard)
    }

    /// Whether this executor currently owns `shard`: mapped to a local
    /// task, not remote, not paused. The peer-side answer to a crash
    /// recovery ownership query.
    pub fn owns_shard(&self, shard: ShardId) -> bool {
        let rs = self.inner.routing.lock();
        !rs.remote.contains_key(&shard)
            && !rs.table.is_paused(shard)
            && rs.table.task_of(shard).is_ok()
    }

    /// Replaces the forwarder of an already-remote shard — a
    /// re-established link rebinds its delegated shards to the new
    /// connection instead of re-marking them remote. Errors if the
    /// shard is not currently remote.
    pub fn rebind_remote(&self, shard: ShardId, forward: RemoteForwarder) -> Result<()> {
        let mut rs = self.inner.routing.lock();
        if !rs.remote.contains_key(&shard) {
            return Err(Error::Infeasible(format!("{shard} is not remote")));
        }
        *self.inner.remote_fast[shard.index()].write() = Some(Arc::clone(&forward));
        rs.remote.insert(shard, forward);
        Ok(())
    }

    /// Drains the pending quarantine requests — shards whose cumulative
    /// operator panic count crossed
    /// [`ExecutorConfig::quarantine_after`]. Task threads only flag
    /// shards; the caller (typically a group supervisor) parks them
    /// with [`Self::quarantine_shard`], which must run off the task
    /// threads.
    pub fn take_quarantine_requests(&self) -> Vec<ShardId> {
        std::mem::take(&mut *self.inner.quarantine_req.lock())
    }

    /// Parks `shard`: pauses and flushes it like an outbound migration,
    /// extracts its state, and installs a black-hole forwarder that
    /// counts (and drops) every record routed to it — isolating keys
    /// that keep panicking the operator without taking the task thread,
    /// or the healthy shards it hosts, down with them. The extracted
    /// snapshot stays parked until [`Self::release_quarantined`]. Must
    /// not be called from a task thread (it blocks on that thread's
    /// flush marker).
    pub fn quarantine_shard(&self, shard: ShardId) -> Result<()> {
        let snapshot = self.begin_migration(shard)?;
        let counter = Arc::clone(&self.inner);
        let forward: RemoteForwarder = Arc::new(move |_, _| {
            counter.quarantine_dropped.fetch_add(1, Ordering::Relaxed);
        });
        match self.complete_migration(shard, forward, || {}) {
            Ok(()) => {
                self.inner.parked.lock().insert(shard, snapshot);
                Ok(())
            }
            Err(e) => {
                self.abort_migration(snapshot)
                    .expect("paused shard restores");
                Err(e)
            }
        }
    }

    /// Restores a quarantined shard: reinstalls its parked snapshot,
    /// reopens local routing, and resets its panic counter. Records
    /// dropped while parked stay dropped (see
    /// [`Self::quarantine_dropped`]).
    pub fn release_quarantined(&self, shard: ShardId) -> Result<()> {
        // Clone rather than remove: if the install fails the snapshot
        // must stay parked. (Rare control-plane path; the copy is the
        // price of not losing state on a failed release.)
        let snapshot = self
            .inner
            .parked
            .lock()
            .get(&shard)
            .cloned()
            .ok_or(Error::UnknownShard(shard))?;
        self.adopt_install(snapshot)?;
        self.adopt_finish(shard)?;
        self.inner.parked.lock().remove(&shard);
        self.inner.panic_counts[shard.index()].store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Shards currently parked by [`Self::quarantine_shard`].
    pub fn quarantined_shards(&self) -> Vec<ShardId> {
        self.inner.parked.lock().keys().copied().collect()
    }

    /// Total records dropped on quarantined shards since start.
    pub fn quarantine_dropped(&self) -> u64 {
        self.inner.quarantine_dropped.load(Ordering::Relaxed)
    }

    /// Reaps task threads that died — a panic escaping the per-record
    /// containment (unwinding inside a destructor, an OOM abort short
    /// of killing the process) takes the whole thread with it — and
    /// re-homes their shards onto survivors, spawning a fresh task
    /// first if none survive. Records queued at a dead task are lost
    /// with it (crash semantics); per-key FIFO is preserved because a
    /// re-homed shard only resumes after the takeover flips the table,
    /// so no stale delivery can trail the re-homed ones. Returns the
    /// number of dead tasks reaped.
    pub fn respawn_dead_tasks(&self) -> usize {
        // Reap finished threads first, outside the routing lock.
        let dead: Vec<(TaskId, JoinHandle<()>)> = {
            let mut threads = self.threads.lock();
            let mut dead = Vec::new();
            let mut i = 0;
            while i < threads.len() {
                if threads[i].1.is_finished() {
                    dead.push(threads.remove(i));
                } else {
                    i += 1;
                }
            }
            dead
        };
        if dead.is_empty() {
            return 0;
        }
        let dead_ids: Vec<TaskId> = dead.iter().map(|(id, _)| *id).collect();
        for (_, handle) in dead {
            let _ = handle.join(); // collect the panic payload, drop it
        }
        // Unregister the corpses: close their slots, retire latency.
        {
            let mut rs = self.inner.routing.lock();
            for &task in &dead_ids {
                rs.draining.remove(&task);
                rs.senders.remove(&task);
                if let Some(slot) = rs.task_slots.remove(&task) {
                    *self.inner.slots[slot].sender.write() = None;
                    *self.inner.slots[slot].ring.write() = None;
                    let hist = self.inner.latency.take_cell(slot);
                    self.inner.retired_latency.lock().merge(&hist);
                    rs.free_slots.push(slot);
                }
            }
        }
        // At least one live task must remain to adopt the orphans.
        if self.inner.routing.lock().senders.is_empty() {
            self.add_task().expect("respawn replacement task");
        }
        self.rehome_orphans(&dead_ids);
        dead_ids.len()
    }

    /// Re-homes every shard stranded by the dead tasks in `dead`:
    /// reassignments whose *source* died lost their labeling tuple with
    /// the source's queue and are taken over directly; shards plainly
    /// mapped to a dead task are paused and taken over the same way.
    /// Labels whose *target* died are left alone — the live source
    /// still processes the tuple and `handle_label` aborts them itself.
    fn rehome_orphans(&self, dead: &[TaskId]) {
        // Lock order: routing before reassigns (the global order).
        let mut rs = self.inner.routing.lock();
        let mut tracker = self.inner.reassigns.lock();
        let survivors: Vec<TaskId> = rs
            .senders
            .keys()
            .copied()
            .filter(|t| !rs.draining.contains(t))
            .collect();
        let mut next = 0usize;
        let mut takeover = |rs: &mut RoutingState, shard: ShardId| {
            let target = survivors[next % survivors.len()];
            next += 1;
            let buffered = rs
                .table
                .finish_reassignment(shard, target)
                .expect("orphan shard is paused");
            // Same order as `handle_label`: buffered records reach the
            // new owner before the word flips, so fast-path deliveries
            // queue behind them.
            if !buffered.is_empty() {
                let batch: Vec<(ShardId, Record)> =
                    buffered.into_iter().map(|r| (shard, r)).collect();
                let _ = rs.senders[&target].send(TaskMsg::Batch(batch));
            }
            let slot = rs.task_slots[&target] as u32;
            self.inner.shard_table.finish(shard, slot);
        };
        let stranded: Vec<u64> = tracker
            .pending_labels()
            .into_iter()
            .filter(|l| tracker.get(*l).is_some_and(|m| dead.contains(&m.from)))
            .collect();
        for label in stranded {
            let inflight = tracker.abort(label).expect("label is pending");
            takeover(&mut rs, inflight.shard);
        }
        // Plainly-owned orphans. Paused shards without a stranded label
        // are mid-migration (or awaiting a live source's label) — their
        // own protocol resolves them; remote shards keep a stale local
        // mapping by design and route past it.
        let orphans: Vec<ShardId> = rs
            .table
            .assignment()
            .iter()
            .enumerate()
            .filter(|(_, t)| dead.contains(t))
            .map(|(s, _)| ShardId(s as u32))
            .filter(|s| !rs.remote.contains_key(s) && !rs.table.is_paused(*s))
            .collect();
        for shard in orphans {
            rs.table.pause(shard).expect("orphan shard is idle");
            // The wait-free handshake: no in-flight fast-path route can
            // still reference the dead slot after this returns.
            self.inner.shard_table.pause(shard);
            takeover(&mut rs, shard);
        }
    }

    /// Stops all task threads without consuming the executor — the
    /// fallback a [`Pipeline`](crate::pipeline::Pipeline) uses at
    /// shutdown when the caller still holds a clone of the stage handle
    /// and the consuming [`Self::shutdown`] is unavailable. The output
    /// channel stays connected (the retained handle keeps it alive), so
    /// callers must ensure no task thread is blocked on a full bounded
    /// output channel before halting.
    pub(crate) fn halt_shared(&self) -> ExecutorStats {
        halt(&self.inner, &self.threads)
    }
}

/// Processes a routed batch (possibly of one): run the operator on each
/// record, emit all outputs as one batch, account once per batch. Each
/// record's single post-process clock read serves both its latency
/// measurement and — via the last one — the batch's busy-time
/// accounting (`1 + n` reads per batch, down from four per record),
/// and latency stays accurate per record even when the operator is slow
/// enough that batch-end stamping would inflate early records.
fn process_items<O: Operator>(inner: &Inner<O>, slot: usize, items: &[(ShardId, Record)]) {
    let service_start = monotonic_ns();
    let mut done = service_start;
    let mut outputs: RecordBatch = Vec::new();
    let mut latencies: Vec<u64> = Vec::with_capacity(items.len());
    let mut panics = 0u64;
    for (shard, record) in items {
        let handle = inner.state.handle(*shard);
        // Failure isolation: a panicking operator must not take the task
        // thread (and with it every shard it owns) down. The record is
        // dropped, the panic counted; state holds whatever the operator
        // committed before unwinding.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inner.operator.process(record, &handle)
        }));
        done = monotonic_ns();
        latencies.push(done.saturating_sub(record.created_ns));
        match outcome {
            Ok(outs) => outputs.extend(outs),
            Err(_) => {
                panics += 1;
                // Escalate a repeatedly poisonous shard to a quarantine
                // request exactly once, when it crosses the threshold.
                if let Some(limit) = inner.quarantine_after {
                    let prev = inner.panic_counts[shard.index()].fetch_add(1, Ordering::Relaxed);
                    if prev + 1 == limit {
                        inner.quarantine_req.lock().push(*shard);
                    }
                }
            }
        }
    }
    inner
        .busy_ns
        .fetch_add(done.saturating_sub(service_start), Ordering::Relaxed);
    if panics > 0 {
        inner.operator_panics.fetch_add(panics, Ordering::Relaxed);
    }
    if !outputs.is_empty() {
        // Count *before* sending: quiescence checks compare `emitted`
        // against the downstream consumer's counter, so a record must
        // never be in the channel while uncounted. (Receiver may have
        // hung up if the executor handle dropped; the batch is dropped.)
        inner
            .emitted
            .fetch_add(outputs.len() as u64, Ordering::AcqRel);
        let _ = inner.outputs.send(outputs);
    }
    if inner.baseline {
        // The pre-optimization global histogram lock, once per record.
        for latency in latencies {
            inner.retired_latency.lock().record(latency);
        }
    } else {
        // One uncontended lock on this slot's padded cell per batch.
        let mut cell = inner.latency.cell(slot);
        for latency in latencies {
            cell.record(latency);
        }
    }
    inner
        .processed
        .fetch_add(items.len() as u64, Ordering::AcqRel);
    // After the counter is visible: wake any producer parked on progress
    // (one fenced load when nobody waits).
    inner.progress.notify();
}

/// Completes (or aborts) the reassignment named by a labeling tuple —
/// shared by both task-loop flavors.
fn handle_label<O: Operator>(inner: &Inner<O>, label: u64) {
    // All pending records of the shard are done: complete the
    // reassignment via the shared §3.3 state machine. Intra-process
    // state sharing means no state movement — the new task reads the
    // same store.
    let now = monotonic_ns();
    // Lock order: routing before reassigns, matching `reassign_shard`
    // (which begins moves while holding the routing lock).
    let mut rs = inner.routing.lock();
    let mut tracker = inner.reassigns.lock();
    tracker
        .mark_label_reached(label, now)
        .expect("label has a pending entry");
    let to = tracker.get(label).expect("just marked").to;
    if rs.senders.contains_key(&to) {
        let completion = tracker
            .complete(label, monotonic_ns())
            .expect("completes exactly once");
        drop(tracker);
        let shard = completion.shard;
        let buffered = rs
            .table
            .finish_reassignment(shard, completion.to)
            .expect("shard was paused");
        // Flush the pause buffer to the new owner *before* resuming the
        // fast path: once the word flips, new fast-path records reach
        // the same task and must queue behind the buffered ones — the
        // channel order directly, or (ring mode) via the flush's
        // watermark, which every post-flip ring push lands beyond.
        if !buffered.is_empty() {
            let batch: Vec<(ShardId, Record)> = buffered.into_iter().map(|r| (shard, r)).collect();
            let _ = rs.senders[&completion.to].send(TaskMsg::Batch(batch));
        }
        let new_slot = rs.task_slots[&completion.to] as u32;
        inner.shard_table.finish(shard, new_slot);
        drop(rs);
        let total_ns = monotonic_ns().saturating_sub(completion.started_ns);
        inner
            .reassignment_log
            .lock()
            .push((completion.sync_ns, total_ns));
    } else {
        // Destination was removed while the label was in flight: abort
        // — routing resumes to the old owner, and buffered records go
        // there.
        let aborted = tracker.abort(label).expect("aborts exactly once");
        drop(tracker);
        let shard = aborted.shard;
        let from = rs.table.task_of(shard).expect("shard exists");
        let buffered = rs
            .table
            .abort_reassignment(shard)
            .expect("shard was paused");
        if !buffered.is_empty() {
            let batch: Vec<(ShardId, Record)> = buffered.into_iter().map(|r| (shard, r)).collect();
            let _ = rs.senders[&from].send(TaskMsg::Batch(batch));
        }
        inner.shard_table.abort(shard);
    }
}

/// The body of one task thread (channel mode: the MPMC channel carries
/// data and control alike, watermarks are zero and ignored).
fn task_loop<O: Operator>(
    inner: Arc<Inner<O>>,
    _id: TaskId,
    slot: usize,
    rx: Receiver<TaskEnvelope>,
) {
    while let Ok(env) = rx.recv() {
        match env.msg {
            TaskMsg::Stop => return,
            TaskMsg::One(shard, record) => {
                process_items(&inner, slot, &[(shard, record)]);
            }
            TaskMsg::Batch(items) => {
                process_items(&inner, slot, &items);
            }
            TaskMsg::Flush(done) => {
                // Cross-process migration drain: everything enqueued
                // before this marker has been processed and its state
                // committed (messages are handled serially). A closed
                // receiver means the migration was given up; ignore.
                let _ = done.send(());
            }
            TaskMsg::Label(label) => handle_label(&inner, label),
        }
    }
}

/// Items popped from the ring (and processed) per `process_items` call
/// in the ring task loop.
const RING_CHUNK: usize = 256;
/// Fallback park interval of an idle ring task loop. Wakeups normally
/// arrive through the ring's empty-edge notify or a control-lane kick;
/// the timeout only bounds the damage if one is lost.
const RING_IDLE_PARK: std::time::Duration = std::time::Duration::from_millis(10);
/// A submitter that finds a task's ring full backs off by yielding:
/// the consumer is saturated (this is backpressure), and on a loaded or
/// single-core box a yield hands it the CPU immediately where a timed
/// sleep would round-trip the scheduler's timer wheel.
fn ring_full_backoff() {
    std::thread::yield_now();
}

/// The ring consumer's in-hand chunk: items are popped straight into
/// `items` (one move per record) and processed as slices; `done` marks
/// the processed prefix, so a watermark drain can stop mid-chunk
/// without shuffling records around.
#[derive(Default)]
struct RingChunk {
    items: Vec<RingItem>,
    done: usize,
}

impl RingChunk {
    fn unprocessed(&self) -> usize {
        self.items.len() - self.done
    }

    /// Refills from the ring if fully processed; returns items popped.
    fn refill(&mut self, ring: &mut crossbeam::spsc::Consumer<RingItem>) -> usize {
        if self.done == self.items.len() {
            self.items.clear();
            self.done = 0;
            ring.pop_batch(&mut self.items, RING_CHUNK)
        } else {
            0
        }
    }

    /// Processes up to `max` unprocessed items in place.
    fn process<O: Operator>(&mut self, inner: &Inner<O>, slot: usize, max: usize) -> u64 {
        let n = self.unprocessed().min(max);
        if n > 0 {
            process_items(inner, slot, &self.items[self.done..self.done + n]);
            self.done += n;
        }
        n as u64
    }
}

/// Processes ring items until `consumed` reaches `mark` — the prefix of
/// the ring that a control message is ordered after. The items are
/// guaranteed present: marks are read from the push cursor, after the
/// pushes they cover completed.
fn drain_ring_to<O: Operator>(
    inner: &Inner<O>,
    slot: usize,
    ring: &mut crossbeam::spsc::Consumer<RingItem>,
    chunk: &mut RingChunk,
    consumed: &mut u64,
    mark: u64,
) {
    while *consumed < mark {
        if chunk.unprocessed() == 0 && chunk.refill(ring) == 0 {
            // The push completed before the mark was read; the item is
            // instants away from being visible.
            std::hint::spin_loop();
            continue;
        }
        *consumed += chunk.process(inner, slot, (mark - *consumed) as usize);
    }
}

/// The body of one task thread in ring mode: data arrives on the SPSC
/// ring, control (and slow-path deliveries) on the channel, serialized
/// by watermarks.
///
/// Each iteration pops ring items **first** and checks the channel
/// **second**: any control message ordered before a popped item (its
/// watermark ≤ the item's position) was sent before the item was
/// pushed, so popping first guarantees the message is already visible
/// when the channel is checked — it is then handled, in order, before
/// the item is processed.
fn task_loop_ring<O: Operator>(
    inner: Arc<Inner<O>>,
    _id: TaskId,
    slot: usize,
    rx: Receiver<TaskEnvelope>,
    mut ring: crossbeam::spsc::Consumer<RingItem>,
) {
    use crossbeam::channel::TryRecvError;
    let mut chunk = RingChunk::default();
    // Ring items fully processed (the watermark domain).
    let mut consumed: u64 = 0;
    loop {
        // Phase 1: pop a chunk of data items.
        let popped = chunk.refill(&mut ring);
        // Phase 2: the control lane, each message behind its watermark.
        loop {
            match rx.try_recv() {
                Ok(env) => {
                    drain_ring_to(&inner, slot, &mut ring, &mut chunk, &mut consumed, env.mark);
                    match env.msg {
                        TaskMsg::Stop => return,
                        TaskMsg::One(shard, record) => {
                            process_items(&inner, slot, &[(shard, record)]);
                        }
                        TaskMsg::Batch(items) => process_items(&inner, slot, &items),
                        TaskMsg::Flush(done) => {
                            let _ = done.send(());
                        }
                        TaskMsg::Label(label) => handle_label(&inner, label),
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        // Phase 3: process the data in hand.
        while chunk.unprocessed() > 0 {
            consumed += chunk.process(&inner, slot, RING_CHUNK);
        }
        // Phase 4: idle — park until a push, a control kick, or close.
        // (A closed ring returns immediately; the executor sends Stop
        // before closing, so the residual spin is bounded.)
        if popped == 0 {
            ring.wait(RING_IDLE_PARK);
        }
    }
}

impl<O: Operator> std::fmt::Debug for ElasticExecutor<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticExecutor")
            .field("tasks", &self.tasks())
            .field("num_shards", &self.config.num_shards)
            .finish()
    }
}
