//! The live controller: coarse-grained CPU scheduling over the
//! operators of a running [`LiveDag`](crate::dag::LiveDag) (and
//! therefore over the stages of a [`Pipeline`](crate::pipeline::Pipeline),
//! which is a chain-shaped DAG).
//!
//! A background thread samples each operator's cumulative load counters
//! ([`ExecutorGroup::load_sample`], summed over the group's instances)
//! every `interval`, differences them into the paper's per-executor
//! measurements (λ from arrivals + standing backlog, μ from processed
//! records over busy nanoseconds), and feeds them to the model-based
//! [`DynamicScheduler`] (§4) against a single-node [`ClusterSpec`]
//! whose core count is the graph's task budget. The decision's core
//! deltas are applied **live**: grants call [`ExecutorGroup::add_task`]
//! (placed on the least-loaded instance), revocations call
//! [`ExecutorGroup::remove_task_newest`] (which drains the victim's
//! shards through the §3.3 reassignment protocol while records keep
//! flowing). After reallocation each operator gets an intra-executor
//! rebalance pass (§3.1). The graph's shape never enters the decision —
//! the scheduler sees one λ/μ pair per operator group — so a load spike
//! on one branch of a diamond pulls cores from the idle branch exactly
//! as it would from an upstream stage in a chain.
//!
//! With [`ControllerConfig::auto_instances`] the same λ/μ model also
//! drives the **instance count**: when an operator's core target
//! exceeds `max_tasks_per_instance × live instances`, the controller
//! scales the group out (a live shard migration); when the target fits
//! comfortably in one fewer instance for `instance_patience`
//! consecutive ticks, it scales back in. Core grants within the group
//! always go to the least-loaded instance, so the two levers compose.
//!
//! This is the live counterpart of the simulated engine's `SchedTick`
//! handler — same scheduler crate, same measurement definitions, real
//! threads instead of simulated cores.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use elasticutor_core::ids::NodeId;
use elasticutor_scheduler::assignment::{Assignment, ClusterSpec};
use elasticutor_scheduler::scheduler::{
    DynamicScheduler, ExecutorMeasurement, SchedulerConfig, SchedulerPolicy,
};
use parking_lot::Mutex;

use crate::executor::LoadSample;
use crate::group::ExecutorGroup;

/// A cumulative arrival-count probe for one stage: returns the number
/// of records accepted *upstream* of the stage's executors (e.g. at a
/// [`SourcePort`](crate::dag::SourcePort), before the ingress channel).
/// When present, the controller differentiates this count instead of
/// the executor's own arrival counter, so records parked in an ingress
/// channel — the system-edge backlog an external feeder builds up —
/// inflate the stage's λ and draw cores to it (paper §4's demand model
/// measured at the true edge of the system).
pub type LambdaProbe = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Configuration of the [`LiveController`].
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    /// Scheduling interval (the measurement window).
    pub interval: Duration,
    /// Total task threads the pipeline may use across all stages (the
    /// single simulated node's core count).
    pub total_cores: u32,
    /// Latency target `T_max` handed to the queueing model, seconds.
    pub latency_target: f64,
    /// Fallback per-core service rate (records/s) used until a stage has
    /// processed enough records for a measured μ.
    pub default_mu: f64,
    /// Minimum records processed in a window for μ to be trusted.
    pub min_mu_samples: u64,
    /// Core-placement policy (the paper's optimized Algorithm 1 or the
    /// naive-EC ablation; placement is trivial on one node, but the
    /// policy also controls allocation hysteresis).
    pub policy: SchedulerPolicy,
    /// Trim surplus task threads back to the free pool when a stage has
    /// held more cores than its target for [`Self::reclaim_patience`]
    /// consecutive ticks. Algorithm 1 itself only revokes a core when
    /// another executor claims it (constraint `X_j ≥ k_j`) — correct for
    /// cluster core *ownership*, but live task threads on one box cost
    /// OS-scheduler overhead even when idle, so the live controller
    /// returns them. One thread per stage per tick, never below one.
    pub reclaim_surplus: bool,
    /// Consecutive over-target ticks before surplus reclamation starts.
    pub reclaim_patience: u32,
    /// Let the controller resize operator **instance counts** too: when
    /// an operator's core target exceeds
    /// [`Self::max_tasks_per_instance`] × its live instances, the group
    /// scales out (one instance per tick, a live §3.3 shard migration);
    /// when the target fits in one fewer instance for
    /// [`Self::instance_patience`] consecutive ticks, it scales back
    /// in. Off by default — instance counts then stay wherever the
    /// builder/user put them.
    pub auto_instances: bool,
    /// Task threads one executor instance is allowed to hold before the
    /// controller prefers adding an instance over piling on more
    /// threads (the paper's executor-as-scaling-unit boundary).
    pub max_tasks_per_instance: u32,
    /// Consecutive ticks an operator's target must fit in fewer
    /// instances before the controller scales the group in.
    pub instance_patience: u32,
    /// Log each decision to stderr.
    pub verbose: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(200),
            total_cores: 8,
            latency_target: 0.05,
            default_mu: 10_000.0,
            min_mu_samples: 50,
            policy: SchedulerPolicy::Optimized,
            reclaim_surplus: true,
            reclaim_patience: 3,
            auto_instances: false,
            max_tasks_per_instance: 4,
            instance_patience: 3,
            verbose: false,
        }
    }
}

/// One controller decision, recorded for inspection.
#[derive(Clone, Debug)]
pub struct ControllerEvent {
    /// Milliseconds since the controller started.
    pub at_ms: u64,
    /// Measured arrival rate per stage (records/s, backlog-inflated).
    pub lambda: Vec<f64>,
    /// Measured (or fallback) per-core service rate per stage.
    pub mu: Vec<f64>,
    /// Core targets the scheduler requested per stage.
    pub targets: Vec<u32>,
    /// Live task counts per stage after applying the decision.
    pub cores: Vec<u32>,
    /// Live executor-instance counts per stage after applying the
    /// decision (constant unless `auto_instances` or a manual rescale
    /// changes them).
    pub instances: Vec<u32>,
    /// Shard moves initiated by the post-decision rebalance passes.
    pub rebalance_moves: usize,
    /// Whether the queueing model declared the cluster saturated.
    pub saturated: bool,
}

/// Join handle + shared state of a running controller.
pub struct ControllerHandle {
    stop: Arc<AtomicBool>,
    log: Arc<Mutex<Vec<ControllerEvent>>>,
    thread: Option<JoinHandle<()>>,
}

impl ControllerHandle {
    /// Snapshot of the decisions taken so far.
    pub fn log(&self) -> Vec<ControllerEvent> {
        self.log.lock().clone()
    }

    /// Stops the controller thread and waits for it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            thread.join().expect("controller exits cleanly");
        }
    }
}

impl Drop for ControllerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The live scheduling loop. Constructed by
/// [`PipelineBuilder::controller`](crate::pipeline::PipelineBuilder::controller).
pub struct LiveController {
    config: ControllerConfig,
    stages: Vec<Arc<ExecutorGroup>>,
    names: Vec<String>,
    scheduler: DynamicScheduler,
    cluster: ClusterSpec,
    prev: Vec<LoadSample>,
    /// Per-stage arrival probes; `None` falls back to the stage's own
    /// arrival counter.
    probes: Vec<Option<LambdaProbe>>,
    mu_estimate: Vec<f64>,
    /// Consecutive ticks each stage has sat above its target.
    surplus_ticks: Vec<u32>,
    /// Consecutive ticks each stage's target has fit in one fewer
    /// instance (the `auto_instances` scale-in hysteresis).
    shrink_ticks: Vec<u32>,
    started: Instant,
    log: Arc<Mutex<Vec<ControllerEvent>>>,
}

impl LiveController {
    /// Spawns the controller thread over the pipeline's stages.
    /// `probes` supplies an optional [`LambdaProbe`] per stage (same
    /// order as `stages`).
    pub(crate) fn spawn(
        config: ControllerConfig,
        stages: Vec<Arc<ExecutorGroup>>,
        names: Vec<String>,
        probes: Vec<Option<LambdaProbe>>,
    ) -> ControllerHandle {
        assert_eq!(probes.len(), stages.len(), "one probe slot per stage");
        let stop = Arc::new(AtomicBool::new(false));
        let log = Arc::new(Mutex::new(Vec::new()));
        let initial_tasks: u32 = stages.iter().map(|s| s.total_tasks() as u32).sum();
        assert!(
            initial_tasks <= config.total_cores,
            "pipeline starts {initial_tasks} task threads but the controller budget is {} cores",
            config.total_cores
        );
        let mut controller = LiveController {
            scheduler: DynamicScheduler::new(SchedulerConfig {
                latency_target: config.latency_target,
                policy: config.policy,
                ..SchedulerConfig::default()
            }),
            cluster: ClusterSpec::uniform(1, config.total_cores),
            prev: Self::sample_stages(&stages, &probes),
            probes,
            mu_estimate: vec![config.default_mu; stages.len()],
            surplus_ticks: vec![0; stages.len()],
            shrink_ticks: vec![0; stages.len()],
            started: Instant::now(),
            log: Arc::clone(&log),
            config,
            stages,
            names,
        };
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("live-controller".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    std::thread::sleep(controller.config.interval);
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    controller.tick();
                }
            })
            .expect("spawn controller thread");
        ControllerHandle {
            stop,
            log,
            thread: Some(thread),
        }
    }

    /// Samples every stage, substituting each probed stage's arrival
    /// count with its [`LambdaProbe`] reading (taken *after* the
    /// executor sample, so `arrivals >= processed` still holds — a
    /// record is probe-counted before it can ever be processed).
    fn sample_stages(
        stages: &[Arc<ExecutorGroup>],
        probes: &[Option<LambdaProbe>],
    ) -> Vec<LoadSample> {
        stages
            .iter()
            .zip(probes)
            .map(|(stage, probe)| {
                let mut sample = stage.load_sample();
                if let Some(probe) = probe {
                    sample.arrivals = probe();
                }
                sample
            })
            .collect()
    }

    /// One scheduling round: measure → model → reallocate → rebalance.
    fn tick(&mut self) {
        let window_s = self.config.interval.as_secs_f64();
        let samples: Vec<LoadSample> = Self::sample_stages(&self.stages, &self.probes);

        let mut lambda = Vec::with_capacity(samples.len());
        let mut mu = Vec::with_capacity(samples.len());
        for (j, (cur, prev)) in samples.iter().zip(&self.prev).enumerate() {
            let d_arrivals = cur.arrivals.saturating_sub(prev.arrivals) as f64;
            let d_processed = cur.processed.saturating_sub(prev.processed);
            let d_busy_s = cur.busy_ns.saturating_sub(prev.busy_ns) as f64 / 1e9;
            // Demand = admitted arrivals + standing backlog (a censored,
            // backlog-blind rate would freeze a saturated stage at its
            // current size — same reasoning as the simulated engine).
            let backlog = cur.arrivals.saturating_sub(cur.processed) as f64;
            lambda.push(d_arrivals / window_s + backlog / window_s);
            if d_processed >= self.config.min_mu_samples && d_busy_s > 0.0 {
                self.mu_estimate[j] = d_processed as f64 / d_busy_s;
            }
            mu.push(self.mu_estimate[j].max(1.0));
        }
        // Consume the window now, whatever happens below: an infeasible
        // round must not leave `prev` stale, or the next tick would
        // difference two windows of counters over one window of time and
        // overstate λ roughly 2×.
        self.prev = samples.clone();

        // The scheduler sees the *actual* task layout (self-healing: if
        // a previous revocation was skipped to keep a stage alive, the
        // assignment reflects reality, not the plan).
        let current = Assignment::from_matrix(
            self.stages
                .iter()
                .map(|s| vec![s.total_tasks() as u32])
                .collect(),
        );
        let measurements: Vec<ExecutorMeasurement> = samples
            .iter()
            .zip(lambda.iter().zip(&mu))
            .map(|(sample, (&l, &m))| ExecutorMeasurement {
                lambda: l,
                mu: m,
                state_bytes: sample.state_bytes as f64,
                // One node: data intensity cannot force remote placement.
                data_rate: 0.0,
                local_node: NodeId(0),
            })
            .collect();
        let lambda0 = lambda.first().copied().unwrap_or(0.0).max(1.0);

        let decision =
            match self
                .scheduler
                .schedule(&self.cluster, &current, &measurements, lambda0)
            {
                Ok(decision) => decision,
                Err(_) => return, // infeasible round: keep the current layout
            };

        // Clamp the plan to what the live layout can actually do: a
        // group can never drop below one task per live instance, so a
        // target under that floor leaves threads the plan thought it
        // freed — reality would drift above the budget and the next
        // tick's `current` would be infeasible. Raise each target to
        // its group's floor, then shave the slackest stages until the
        // sum fits the budget again.
        let floors: Vec<u32> = self.stages.iter().map(|s| s.num_live() as u32).collect();
        let mut targets: Vec<u32> = decision
            .targets
            .iter()
            .zip(&floors)
            .map(|(&t, &f)| t.max(f).max(1))
            .collect();
        while targets.iter().sum::<u32>() > self.config.total_cores {
            let Some(j) = (0..targets.len())
                .filter(|&j| targets[j] > floors[j].max(1))
                .max_by_key(|&j| targets[j] - floors[j].max(1))
            else {
                break; // the floors alone exceed the budget
            };
            targets[j] -= 1;
        }

        // Apply: grants first so revoked shards can drain onto the new
        // threads directly; never drop a stage below one task per live
        // instance. Grants land on the group's least-loaded live
        // instance, revocations retire the newest thread of its
        // most-loaded one (cheapest shard drain: it has had the least
        // time to accumulate ownership).
        let totals: Vec<u32> = self.stages.iter().map(|s| s.total_tasks() as u32).collect();
        for (j, stage) in self.stages.iter().enumerate() {
            for _ in totals[j]..targets[j] {
                let _ = stage.add_task();
            }
        }
        for (j, stage) in self.stages.iter().enumerate() {
            for _ in targets[j]..totals[j] {
                if !stage.remove_task_newest() {
                    break;
                }
            }
        }

        // Surplus reclamation (live-runtime extension; see
        // `ControllerConfig::reclaim_surplus`).
        if self.config.reclaim_surplus {
            for (j, stage) in self.stages.iter().enumerate() {
                let target = targets[j];
                if (stage.total_tasks() as u32) > target {
                    self.surplus_ticks[j] += 1;
                    if self.surplus_ticks[j] >= self.config.reclaim_patience {
                        stage.remove_task_newest();
                    }
                } else {
                    self.surplus_ticks[j] = 0;
                }
            }
        }

        // Instance-count decisions (the tentpole lever): the same core
        // target, divided by the per-instance task ceiling, says how
        // many executor instances the operator needs. Scale out
        // eagerly (the spike is live *now*), scale in patiently (a
        // migration costs a pause — don't thrash on a noisy λ). One
        // rescale per stage per tick.
        if self.config.auto_instances {
            let per = self.config.max_tasks_per_instance.max(1);
            for (j, stage) in self.stages.iter().enumerate() {
                let target = decision.targets[j].max(1);
                let desired = target.div_ceil(per).max(1);
                let live = stage.num_live() as u32;
                if desired > live {
                    self.shrink_ticks[j] = 0;
                    let _ = stage.scale_out();
                } else if desired < live {
                    self.shrink_ticks[j] += 1;
                    if self.shrink_ticks[j] >= self.config.instance_patience {
                        let _ = stage.scale_in();
                        self.shrink_ticks[j] = 0;
                    }
                } else {
                    self.shrink_ticks[j] = 0;
                }
            }
        }

        // Intra-executor balancing pass per stage (§3.1).
        let rebalance_moves: usize = self.stages.iter().map(|s| s.rebalance()).sum();

        let cores: Vec<u32> = self.stages.iter().map(|s| s.total_tasks() as u32).collect();
        let instances: Vec<u32> = self.stages.iter().map(|s| s.num_live() as u32).collect();
        let event = ControllerEvent {
            at_ms: self.started.elapsed().as_millis() as u64,
            lambda,
            mu,
            targets: decision.targets.clone(),
            cores,
            instances,
            rebalance_moves,
            saturated: decision.saturated,
        };
        if self.config.verbose {
            eprintln!(
                "[controller t={:>6}ms] cores={:?} targets={:?} lambda={:?} saturated={}",
                event.at_ms,
                event
                    .cores
                    .iter()
                    .zip(&self.names)
                    .map(|(c, n)| format!("{n}:{c}"))
                    .collect::<Vec<_>>(),
                event.targets,
                event.lambda.iter().map(|l| *l as u64).collect::<Vec<_>>(),
                event.saturated,
            );
        }
        self.log.lock().push(event);
    }
}
